//! Crash recovery end to end: run a write workload, cut power at an
//! arbitrary instant, and watch Trail's three-stage recovery restore every
//! acknowledged write.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::Rng;
use trail::prelude::*;

fn main() -> Result<(), TrailError> {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::seagate_st41601n());
    let data: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("data{i}"), profiles::wd_caviar_10gb()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default())?;
    let (trail, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default())?;

    // A bursty random write workload; remember what was acknowledged.
    // Each write targets a distinct block so that "acknowledged implies
    // recovered exactly" can be asserted byte for byte.
    let acked: Rc<RefCell<HashMap<(usize, u64), u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let mut rng = trail_sim::rng(2002);
    let start = sim.now();
    for i in 0..400u64 {
        let dev = rng.gen_range(0..2usize);
        let lba = 10_000 + i;
        let tag = (i % 251 + 1) as u8;
        let acked = Rc::clone(&acked);
        let trail2 = trail.clone();
        sim.schedule_at(start + SimDuration::from_micros(i * 500), move |sim| {
            let done = sim.completion(move |_, del: Delivered<IoDone>| {
                if del.is_ok() {
                    acked.borrow_mut().insert((dev, lba), tag);
                }
            });
            trail2
                .write(sim, dev, lba, vec![tag; SECTOR_SIZE], done)
                .expect("write accepted");
        });
    }

    // Lights out mid-workload.
    sim.run_until(start + SimDuration::from_millis(120));
    println!(
        "power failure at {} with {} writes acknowledged, {} blocks still pending write-back",
        sim.now(),
        acked.borrow().len(),
        trail.pinned_blocks()
    );
    log.power_cut(sim.now());
    for d in &data {
        d.power_cut(sim.now());
    }
    drop(trail);

    // Reboot: TrailDriver::start sees the dirty flag and recovers.
    log.power_on();
    for d in &data {
        d.power_on();
    }
    let mut sim2 = Simulator::new();
    let (trail, boot) = TrailDriver::start(&mut sim2, log, data.clone(), TrailConfig::default())?;
    let report = boot.recovered.expect("dirty log disk triggers recovery");
    println!("\nrecovery report:");
    println!(
        "  locate youngest record: {} ({} track scans)",
        report.locate_time, report.tracks_scanned
    );
    println!(
        "  rebuild active records: {} ({} records)",
        report.rebuild_time, report.records_found
    );
    println!(
        "  write back to data disks: {} ({} sectors)",
        report.writeback_time, report.sectors_replayed
    );
    println!(
        "  torn in-flight records dropped: {}",
        report.torn_records_dropped
    );

    // Every acknowledged write must now be on its data disk.
    let mut verified = 0;
    for (&(dev, lba), &tag) in acked.borrow().iter() {
        let sector = data[dev].peek_sector(lba);
        assert_eq!(
            sector[1], tag,
            "acknowledged write to dev {dev} lba {lba} lost!"
        );
        verified += 1;
    }
    println!("\nverified {verified} acknowledged writes survived the crash");
    trail.shutdown(&mut sim2)?;
    Ok(())
}
