//! Crash recovery end to end: run a write workload, cut power at an
//! arbitrary instant through a declarative [`FaultPlan`], and watch
//! Trail's three-stage recovery restore every acknowledged write.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rand::Rng;
use trail::prelude::*;

/// Observer sink: records that the system-wide power cut fired so the
/// workload stops submitting. Returns `false` — the per-disk sinks own
/// the actual cut.
struct CrashFlag(Rc<Cell<bool>>);

impl FaultSink for CrashFlag {
    fn apply(&self, _sim: &mut Simulator, fault: &Fault) -> bool {
        if matches!(fault.kind, FaultKind::PowerCut) {
            self.0.set(true);
        }
        false
    }
}

fn main() -> Result<(), TrailError> {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::seagate_st41601n());
    let data: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("data{i}"), profiles::wd_caviar_10gb()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default())?;
    let (trail, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default())?;

    // The fault plane: every disk registers a sink on one clock, and a
    // declarative plan cuts the whole system 120 ms into the workload.
    let cut_after = SimDuration::from_millis(120);
    let clock = FaultClock::new();
    clock.register(log.fault_sink(DiskRole::Log(0)));
    for (i, d) in data.iter().enumerate() {
        clock.register(d.fault_sink(DiskRole::Data(i)));
    }
    let crashed = Rc::new(Cell::new(false));
    clock.register(Rc::new(CrashFlag(Rc::clone(&crashed))));
    let plan = FaultPlan::power_cut_at(cut_after);
    println!("armed fault plan: {}", plan.encode());
    clock.arm(&mut sim, &plan);

    // A bursty random write workload; remember what was acknowledged.
    // Each write targets a distinct block so that "acknowledged implies
    // recovered exactly" can be asserted byte for byte. After the cut
    // the arrival events keep firing but stop submitting.
    let acked: Rc<RefCell<HashMap<(usize, u64), u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let mut rng = trail_sim::rng(2002);
    let start = sim.now();
    for i in 0..400u64 {
        let dev = rng.gen_range(0..2usize);
        let lba = 10_000 + i;
        let tag = (i % 251 + 1) as u8;
        let acked = Rc::clone(&acked);
        let trail2 = trail.clone();
        let crashed2 = Rc::clone(&crashed);
        sim.schedule_at(start + SimDuration::from_micros(i * 500), move |sim| {
            if crashed2.get() {
                return;
            }
            let done = sim.completion(move |_, del: Delivered<IoDone>| {
                if del.is_ok() {
                    acked.borrow_mut().insert((dev, lba), tag);
                }
            });
            trail2
                .write(sim, dev, lba, vec![tag; SECTOR_SIZE], done)
                .expect("write accepted");
        });
    }

    // Lights out mid-workload; drain so every arrival has fired.
    sim.run();
    assert!(crashed.get(), "the armed power cut must have fired");
    println!(
        "power failed at {} with {} writes acknowledged, {} blocks still pending write-back",
        start + cut_after,
        acked.borrow().len(),
        trail.pinned_blocks()
    );
    drop(trail);

    // Reboot: TrailDriver::start sees the dirty flag and recovers.
    log.power_on();
    for d in &data {
        d.power_on();
    }
    let mut sim2 = Simulator::new();
    let (trail, boot) = TrailDriver::start(&mut sim2, log, data.clone(), TrailConfig::default())?;
    let report = boot.recovered.expect("dirty log disk triggers recovery");
    println!("\nrecovery report:");
    println!(
        "  locate youngest record: {} ({} track scans)",
        report.locate_time, report.tracks_scanned
    );
    println!(
        "  rebuild active records: {} ({} records, {} active log sectors, head span {})",
        report.rebuild_time, report.records_found, report.active_log_sectors, report.log_head_span
    );
    println!(
        "  write back to data disks: {} ({} sectors)",
        report.writeback_time, report.sectors_replayed
    );
    println!(
        "  torn in-flight records dropped: {}",
        report.torn_records_dropped
    );

    // Every acknowledged write must now be on its data disk.
    let mut verified = 0;
    for (&(dev, lba), &tag) in acked.borrow().iter() {
        let sector = data[dev].peek_sector(lba);
        assert_eq!(
            sector[1], tag,
            "acknowledged write to dev {dev} lba {lba} lost!"
        );
        verified += 1;
    }
    println!("\nverified {verified} acknowledged writes survived the crash");
    trail.shutdown(&mut sim2)?;
    Ok(())
}
