//! Database logging on Trail vs. the standard stack — the paper's §5.2
//! scenario in miniature: a transaction engine whose commits force a
//! write-ahead log synchronously.
//!
//! Run with: `cargo run --release --example database_logging`

use std::rc::Rc;

use trail::db::{Database, DbConfig, FlushPolicy, StandardStack, TrailStack};
use trail::prelude::*;
use trail::tpcc::{populate, run, ChainOn, CpuModel, RunConfig, Scale, Workload};

fn db_config(policy: FlushPolicy) -> DbConfig {
    DbConfig {
        cache_pages: 512,
        flush_policy: policy,
        log_dev: 0,
        log_region_start: 64,
        log_region_sectors: 500_000,
        flush_write_bytes: 8 * 1024,
        table_devices: vec![1, 2],
        dirty_high_watermark: usize::MAX / 2,
        flush_batch: 16,
        log_before_images: true,
        single_cpu: false,
    }
}

fn place_and_warm(db: &Database, disks: &[Disk], scale: &Scale) {
    let images = populate(db, scale);
    for (pid, bytes) in &images {
        let disk = &disks[pid.dev as usize];
        for (i, chunk) in bytes.chunks(SECTOR_SIZE).enumerate() {
            let mut sector = [0u8; SECTOR_SIZE];
            sector[..chunk.len()].copy_from_slice(chunk);
            disk.poke_sector(pid.first_lba() + i as u64, &sector);
        }
        db.warm(*pid, bytes);
    }
}

fn main() -> Result<(), TrailError> {
    let scale = Scale {
        warehouses: 1,
        districts: 4,
        customers_per_district: 300,
        items: 2_000,
        initial_orders_per_district: 50,
    };
    let txns = 500;

    println!("TPC-C slice: {txns} transactions, concurrency 1, three stacks\n");
    println!("| configuration | tpm | avg response | logging I/O | group commits |");
    println!("|---|---|---|---|---|");

    for (name, trail, policy, chain) in [
        (
            "Trail, force every commit   ",
            true,
            FlushPolicy::EveryCommit,
            ChainOn::Durable,
        ),
        (
            "standard, force every commit",
            false,
            FlushPolicy::EveryCommit,
            ChainOn::Durable,
        ),
        (
            "standard, group commit 50 KB",
            false,
            FlushPolicy::GroupCommit {
                buffer_bytes: 50 * 1024,
            },
            ChainOn::Control,
        ),
    ] {
        let mut sim = Simulator::new();
        let disks: Vec<Disk> = (0..3)
            .map(|i| Disk::new(format!("d{i}"), profiles::wd_caviar_10gb()))
            .collect();
        let db = if trail {
            let log = Disk::new("trail-log", profiles::seagate_st41601n());
            format_log_disk(&mut sim, &log, FormatOptions::default())?;
            let (drv, _) =
                TrailDriver::start(&mut sim, log, disks.clone(), TrailConfig::default())?;
            Database::new(Rc::new(TrailStack::new(drv, 3)), db_config(policy))
        } else {
            Database::new(
                Rc::new(StandardStack::new(disks.clone())),
                db_config(policy),
            )
        };
        place_and_warm(&db, &disks, &scale);
        let workload = Workload::new(scale, 7, CpuModel::default());
        let report = run(
            &mut sim,
            &db,
            workload,
            RunConfig {
                transactions: txns,
                concurrency: 1,
                chain_on: chain,
            },
        );
        println!(
            "| {name} | {:>6.0} | {:>8.1} ms | {:>7.2} s | {:>4} |",
            report.tpmc,
            report.response.mean().as_millis_f64(),
            report.logging_io_time.as_secs_f64(),
            report.group_commits,
        );
    }
    println!(
        "\n(The paper's Table 2 at full scale: cargo run --release -p trail-bench --bin table2)"
    );
    Ok(())
}
