//! Multiple log disks (paper §5.1's "final optimization"): hiding the
//! repositioning overhead by spreading blocks across Trail instances.
//!
//! Run with: `cargo run --release --example multi_log`

use std::cell::Cell;
use std::rc::Rc;

use rand::Rng;
use trail::core::MultiTrail;
use trail::prelude::*;

/// Chains `n` clustered one-sector writes to random blocks and returns the
/// elapsed virtual time in milliseconds.
fn clustered_run(n_logs: usize, writes: u32) -> Result<f64, TrailError> {
    let mut sim = Simulator::new();
    let logs: Vec<Disk> = (0..n_logs)
        .map(|i| Disk::new(format!("log{i}"), profiles::seagate_st41601n()))
        .collect();
    for l in &logs {
        format_log_disk(&mut sim, l, FormatOptions::default())?;
    }
    let data = vec![Disk::new("data0", profiles::wd_caviar_10gb())];
    // The every-write repositioning policy makes the overhead maximal, so
    // the hiding effect is easy to see.
    let config = TrailConfig {
        reposition_every_write: true,
        ..TrailConfig::default()
    };
    let (multi, _) = MultiTrail::start(&mut sim, logs, data, config)?;

    let start = sim.now();
    let done = Rc::new(Cell::new(0u32));
    fn next(
        sim: &mut Simulator,
        multi: MultiTrail,
        done: Rc<Cell<u32>>,
        seed: u64,
        remaining: u32,
    ) {
        if remaining == 0 {
            return;
        }
        let mut rng = trail_sim::rng(seed);
        let lba = rng.gen_range(0..1_000_000u64);
        let nseed = rng.gen();
        let m2 = multi.clone();
        let d2 = Rc::clone(&done);
        let token = sim.completion(move |sim: &mut Simulator, _: Delivered<IoDone>| {
            d2.set(d2.get() + 1);
            next(sim, m2, d2, nseed, remaining - 1);
        });
        multi
            .write(sim, 0, lba, vec![7u8; SECTOR_SIZE], token)
            .expect("write accepted");
    }
    next(&mut sim, multi.clone(), Rc::clone(&done), 42, writes);
    while done.get() < writes {
        assert!(sim.step(), "writes stalled");
    }
    let elapsed = sim.now().duration_since(start);
    multi.run_until_quiescent(&mut sim);
    multi.shutdown(&mut sim)?;
    Ok(elapsed.as_millis_f64())
}

fn main() -> Result<(), TrailError> {
    println!("clustered one-sector writes, reposition after every record:");
    println!("| log disks | elapsed for 200 writes (ms) | per write (ms) |");
    println!("|---|---|---|");
    let mut first = None;
    for n in 1..=4 {
        let ms = clustered_run(n, 200)?;
        println!("| {n} | {ms:>7.1} | {:>5.2} |", ms / 200.0);
        first.get_or_insert(ms);
    }
    let first = first.expect("ran at least once");
    let last = clustered_run(4, 200)?;
    println!(
        "\n4 log disks hide {:.0}% of the single-disk stream time,",
        100.0 * (1.0 - last / first)
    );
    println!("approaching the paper's 'completely hide the re-positioning overhead'.");
    Ok(())
}
