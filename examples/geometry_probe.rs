//! Disk-timing calibration walkthrough (paper §3.1): measure the rotation
//! period, verify the track skew, and run the δ-calibration experiment
//! whose cliff shows why head prediction needs an overhead compensation.
//!
//! Run with: `cargo run --release --example geometry_probe`

use trail::prelude::*;
use trail::probe::{
    calibrate_delta, estimate_write_overhead, measure_rotation_period, measure_track_skew,
};

fn main() -> Result<(), TrailError> {
    let mut sim = Simulator::new();
    let disk = Disk::new("log", profiles::seagate_st41601n());
    let geometry = disk.geometry();

    println!("drive: Seagate ST41601N-class (from mode pages):");
    println!(
        "  {} cylinders x {} heads = {} tracks, {} sectors, {:.2} GB",
        geometry.cylinders(),
        geometry.heads(),
        geometry.total_tracks(),
        geometry.total_sectors(),
        geometry.capacity_bytes() as f64 / 1e9
    );

    // 1. Rotation period, from back-to-back reads of one sector.
    let period = measure_rotation_period(&mut sim, &disk, 7)?;
    println!(
        "\nrotation period: {} => {:.0} RPM",
        period,
        60.0e9 / period.as_nanos() as f64
    );

    // 2. Track skew, from the phase difference between adjacent tracks.
    let skew = measure_track_skew(&mut sim, &disk, 0, period)?;
    let hb = u64::from(geometry.heads()) - 1;
    let cyl_skew = measure_track_skew(&mut sim, &disk, hb, period)?;
    println!("track skew: {skew} sectors; at a cylinder boundary: {cyl_skew} sectors");

    // 3. The delta-calibration experiment: single-sector writes at
    //    increasing offsets from a reference point. Under-compensated
    //    offsets pay a full rotation.
    let cal = calibrate_delta(&mut sim, &disk, 1)?;
    println!("\ndelta calibration (latency cliff):");
    for s in cal.samples.iter().take((cal.minimal + 4) as usize) {
        let bar = "#".repeat((s.latency.as_millis_f64() * 3.0) as usize);
        println!(
            "  delta {:>2}: {:>7.3} ms {bar}",
            s.delta,
            s.latency.as_millis_f64()
        );
    }
    println!(
        "  => minimal delta {} sectors, driver uses {} (paper: < 15 on this drive)",
        cal.minimal, cal.recommended
    );

    // 4. The fixed command overhead behind that delta.
    let overhead = estimate_write_overhead(&mut sim, &disk, 2, 90)?;
    println!(
        "\nfixed write overhead: {} (~{:.1} sectors at this zone's transfer rate)",
        overhead,
        overhead.as_nanos() as f64 / (period.as_nanos() as f64 / 90.0)
    );
    Ok(())
}
