//! Quickstart: format a log disk, boot Trail, and watch synchronous
//! writes become cheap.
//!
//! Run with: `cargo run --release --example quickstart`

use trail::prelude::*;

fn main() -> Result<(), TrailError> {
    // A simulated machine from the paper's testbed: a 5400-RPM SCSI disk
    // for the log, one 10-GB IDE disk for data.
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::seagate_st41601n());
    let data = Disk::new("data0", profiles::wd_caviar_10gb());

    // The formatter probes the drive's rotation period and calibrates the
    // prediction offset delta, then writes the self-describing header.
    let report = format_log_disk(&mut sim, &log, FormatOptions::default())?;
    println!(
        "formatted: rotation period {}, delta {} sectors",
        report.rotation_period, report.delta
    );

    // Boot the driver. A clean disk needs no recovery.
    let (trail, boot) =
        TrailDriver::start(&mut sim, log, vec![data.clone()], TrailConfig::default())?;
    assert!(boot.recovered.is_none());

    // Synchronous writes: durable at the log-write ack (~1.5 ms), written
    // back to the data disk in the background.
    println!("\nissuing 10 random synchronous writes through Trail...");
    for i in 0..10u64 {
        let lba = 1000 + i * 997 % 100_000;
        let done = sim.completion(move |_, done: Delivered<IoDone>| {
            let done = done.expect("delivered");
            println!("  write {i} at lba {lba}: durable in {}", done.latency());
        });
        trail.write(&mut sim, 0, lba, vec![i as u8; 2 * SECTOR_SIZE], done)?;
        trail.run_until_quiescent(&mut sim);
    }

    // Compare with the same writes on the standard disk subsystem.
    println!("\nsame writes on the standard disk subsystem...");
    let baseline_disk = Disk::new("baseline", profiles::wd_caviar_10gb());
    let baseline = StandardDriver::new(baseline_disk);
    for i in 0..10u64 {
        let lba = 1000 + i * 997 % 100_000;
        let done = sim.completion(move |_, done: Delivered<IoDone>| {
            let done = done.expect("delivered");
            println!("  write {i} at lba {lba}: durable in {}", done.latency());
        });
        baseline
            .submit(
                &mut sim,
                IoRequest::write(lba, vec![i as u8; 2 * SECTOR_SIZE]),
                done,
            )
            .map_err(TrailError::Disk)?;
        sim.run();
    }

    // Reads are served from pinned memory or the data disk; the log disk
    // never services reads.
    let done = sim.completion(|_, done: Delivered<IoDone>| {
        let done = done.expect("delivered");
        println!("\nread back lba 1000: first byte {}", done.data.unwrap()[0]);
    });
    trail.read(&mut sim, 0, 1000, 2, done)?;
    sim.run();

    trail.with_stats(|s| {
        println!(
            "\nTrail stats: {} records, {} repositions, mean sync write {}",
            s.log_records,
            s.repositions,
            s.sync_write_latency.mean()
        );
    });
    trail.shutdown(&mut sim)?;
    println!("clean shutdown: next boot will skip recovery");
    Ok(())
}
