//! Open-loop trace replay against any storage stack.
//!
//! The replay engine feeds the simulator from a **record cursor** — an
//! in-memory trace or a streaming [`TraceReader`] decoding one chunk at
//! a time — and lets completions land whenever the stack delivers them:
//! **open loop**, so a slow stack does not slow the arrival process
//! down, it just builds queue depth. That is the property that makes
//! replay an apples-to-apples comparison: the same offered load hits a
//! raw C-LOOK stack, Trail, a multi-log Trail array, or a file system,
//! and the latency distributions and queue-depth trajectories are
//! directly comparable.
//!
//! Targets are built by the umbrella crate's one factory
//! ([`trail::StackBuilder::build_target`]), so a replay and a
//! `trail-bench` scenario naming the same [`TargetKind`] drive exactly
//! the same stack.
//!
//! # Bounded memory
//!
//! Replay never materializes the whole trace. A single dispatcher
//! ("pump") event keeps exactly **one pending record** decoded ahead of
//! the clock; on firing it drains every arrival that is due, issues the
//! batch in record order, and re-arms itself at the next pending
//! arrival. Peak residency is therefore one decoded chunk plus the
//! requests currently in flight — O(chunk × queue depth), independent
//! of trace length — and [`ReplayReport::peak_resident_records`]
//! reports the proxy the bench suite gates on. Latencies are folded
//! into an order-independent [`ReplayReport::latency_fingerprint`]
//! instead of a per-record vector, and queue-depth samples are
//! downsampled to a fixed budget by stride doubling.
//!
//! Records issue in file order; a trace in canonical `(arrival,
//! stream)` order therefore issues same-instant arrivals in ascending
//! stream order, exactly the per-stream-shard order previous revisions
//! pre-scheduled. `replay_single_issuer` keeps the pre-scheduled path
//! as the oracle the streaming dispatcher is property-tested against;
//! the two produce byte-identical reports.
//!
//! ```
//! use trail_trace::{generate, replay, ReplayOptions, SyntheticSpec, TargetKind};
//!
//! let trace = generate(&SyntheticSpec {
//!     requests: 50,
//!     streams: 2,
//!     ..SyntheticSpec::default()
//! });
//! let report = replay(
//!     &trace,
//!     &ReplayOptions {
//!         target: TargetKind::Trail,
//!         ..ReplayOptions::default()
//!     },
//! )?;
//! assert_eq!(report.requests, 50);
//! assert_eq!(report.streams.streams(), 2);
//! # Ok::<(), trail_trace::ReplayError>(())
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::Read;
use std::rc::Rc;

use trail::{BuiltTarget, StackBuilder, TargetDrive, TargetError};
use trail_blockio::TapHandle;
use trail_db::BlockStack;
use trail_disk::{Lba, SECTOR_SIZE};
use trail_fs::{FsError, FS_BLOCK_SIZE};
use trail_sim::{
    Completion, Delivered, Fault, FaultKind, FaultPlan, FaultTarget, SimDuration, SimTime,
    Simulator,
};
use trail_telemetry::{DurationHistogram, JsonValue, RecorderHandle, StreamId, StreamMetrics};

pub use trail::TargetKind;
use trail_blockio::IoDone;

use crate::codec::{TraceError, TraceReader};
use crate::format::{Trace, TraceRecord};

/// How to replay.
#[derive(Clone)]
pub struct ReplayOptions {
    /// The stack to drive.
    pub target: TargetKind,
    /// Data disks to build; defaults to (and is raised to) the highest
    /// device index the trace addresses plus one (for streaming replay,
    /// the header's device count — the header cannot know more than it
    /// declares).
    pub data_disks: Option<usize>,
    /// Time-scale knob: arrivals are compressed by this factor (2.0
    /// offers the load twice as fast). Clamped to `0.5..=8.0`; `1.0`
    /// replays at recorded speed.
    pub speed: f64,
    /// Queue-depth sampling period ([`SimDuration::ZERO`] disables
    /// sampling).
    pub sample_every: SimDuration,
    /// File size, in 4-KB blocks, of the per-device file that file-system
    /// targets replay into (raised to at least 64).
    pub fs_file_blocks: u32,
    /// Telemetry recorder installed on the stack (after setup, so the
    /// trace starts clean).
    pub recorder: Option<RecorderHandle>,
    /// Capture tap installed on the stack (after setup) — for recording
    /// what the replay itself submits, e.g. a capture→replay round trip.
    pub tap: Option<TapHandle>,
    /// Declarative fault schedule armed on the freshly built target,
    /// with offsets relative to the replay's start: member failures,
    /// power cuts, transient I/O errors and latency spikes, all through
    /// the one [`FaultPlan`] grammar. Faults naming devices or volumes
    /// the target does not have are tolerated (armed but unhandled), so
    /// one plan can drive a sweep over heterogeneous targets.
    pub faults: FaultPlan,
    /// Upper bound on concurrently in-flight requests. Arrivals beyond
    /// the bound wait in an admission queue and are submitted as
    /// completions free slots — latency is then measured from
    /// submission, not arrival. `None` (the default) leaves the replay
    /// fully open-loop; `Some(0)` is raised to 1.
    pub max_in_flight: Option<u32>,
    /// Whole-member failure injection for RAID targets — a **shim**
    /// kept for source compatibility, folded into
    /// [`ReplayOptions::faults`] as a [`FaultKind::Fail`] member fault
    /// before the target is built. New code should put the fault in
    /// `faults` directly.
    pub fail_member: Option<FailMember>,
}

/// One scheduled member failure (see [`ReplayOptions::fail_member`]).
///
/// Superseded by [`FaultPlan::member_fail`], which expresses the same
/// fault inside the unified plan; this type survives as the shim's
/// argument.
#[derive(Clone, Copy, Debug)]
pub struct FailMember {
    /// Index into the target's volume list.
    pub volume: usize,
    /// Member index within that volume.
    pub member: usize,
    /// When to fail it, in virtual time from the replay's start.
    pub after: SimDuration,
}

impl Default for ReplayOptions {
    /// Standard stack, recorded speed, 10-ms queue sampling, 4-MB files.
    fn default() -> Self {
        ReplayOptions {
            target: TargetKind::Standard,
            data_disks: None,
            speed: 1.0,
            sample_every: SimDuration::from_millis(10),
            fs_file_blocks: 1024,
            recorder: None,
            tap: None,
            faults: FaultPlan::new(),
            max_in_flight: None,
            fail_member: None,
        }
    }
}

/// Why a replay could not run.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace holds no records.
    EmptyTrace,
    /// Building or preparing the target failed.
    Target(TargetError),
    /// Decoding the trace stream failed mid-replay.
    Trace(TraceError),
    /// A record addressed a device the built target does not have —
    /// only reachable when streaming, where the header's device count
    /// sizes the target before the records are seen.
    BadDevice {
        /// The offending record's device index.
        dev: u16,
        /// Devices the target was built with.
        ndisks: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyTrace => write!(f, "cannot replay an empty trace"),
            ReplayError::Target(e) => write!(f, "{e}"),
            ReplayError::Trace(e) => write!(f, "{e}"),
            ReplayError::BadDevice { dev, ndisks } => write!(
                f,
                "trace record addresses device {dev} but the target has {ndisks} device(s); \
                 the stream header under-declared its device count"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TargetError> for ReplayError {
    fn from(e: TargetError) -> ReplayError {
        ReplayError::Target(e)
    }
}

/// What a replay measured.
pub struct ReplayReport {
    /// The target's [`TargetKind::label`].
    pub target: String,
    /// The effective (clamped) time-scale factor.
    pub speed: f64,
    /// Requests issued.
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Requests that errored or were cancelled (folded into
    /// [`ReplayReport::latency_fingerprint`] with a sentinel latency and
    /// excluded from the histograms).
    pub errors: u64,
    /// Simulator instant the first arrival was anchored to; subtracting
    /// it from a capture of this replay recovers the input trace's
    /// timeline.
    pub started_at: SimTime,
    /// Virtual time from the anchor to the last completion.
    pub duration: SimDuration,
    /// End-to-end latency over all successful requests.
    pub latency: DurationHistogram,
    /// Latency over successful reads.
    pub read_latency: DurationHistogram,
    /// Latency over successful writes.
    pub write_latency: DurationHistogram,
    /// Per-stream latency and concurrency, keyed by the trace's stream
    /// tags.
    pub streams: StreamMetrics,
    /// Order-independent digest over `(record index, latency)` pairs —
    /// the byte-comparable determinism witness that replaced the
    /// unbounded per-record latency vector. Two replays of the same
    /// trace against the same target match on this field exactly.
    pub latency_fingerprint: u64,
    /// Peak number of trace records resident in the engine at once
    /// (requests in flight plus the arrival batch being issued) — the
    /// bounded-memory witness. Stays O(queue depth), not O(trace).
    pub peak_resident_records: u64,
    /// Highest concurrent in-flight count observed.
    pub max_queue_depth: u32,
    /// Sampled `(instant, in-flight)` pairs, every
    /// [`ReplayOptions::sample_every`] — downsampled by stride doubling
    /// to a fixed budget on long runs.
    pub queue_depth: Vec<(SimTime, u32)>,
    /// Per-volume statistics for RAID targets (member latency
    /// breakdowns, RMW/full-stripe counters, degraded reads), in the
    /// target's volume order; empty for targets without volumes.
    pub volume_stats: Vec<JsonValue>,
}

impl ReplayReport {
    /// The report as a JSON object (histograms include `p50_ms`,
    /// `p99_ms`, `p999_ms`; a `streams` object keyed by stream tag;
    /// queue-depth samples as `[ms, depth]` pairs). Everything in it is
    /// virtual-time-derived, so a fixed trace and options produce
    /// identical JSON on every run.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("target", JsonValue::str(self.target.clone())),
            ("speed", JsonValue::Num(self.speed)),
            ("requests", JsonValue::Num(self.requests as f64)),
            ("reads", JsonValue::Num(self.reads as f64)),
            ("writes", JsonValue::Num(self.writes as f64)),
            ("errors", JsonValue::Num(self.errors as f64)),
            ("duration_ms", JsonValue::Num(self.duration.as_millis_f64())),
            ("latency", self.latency.to_json()),
            ("read_latency", self.read_latency.to_json()),
            ("write_latency", self.write_latency.to_json()),
            ("streams", self.streams.to_json()),
            (
                "latency_fingerprint",
                JsonValue::str(format!("{:016x}", self.latency_fingerprint)),
            ),
            (
                "max_queue_depth",
                JsonValue::Num(f64::from(self.max_queue_depth)),
            ),
            (
                "peak_resident_records",
                JsonValue::Num(self.peak_resident_records as f64),
            ),
            (
                "queue_depth",
                JsonValue::Arr(
                    self.queue_depth
                        .iter()
                        .map(|(at, depth)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(
                                    at.saturating_duration_since(self.started_at)
                                        .as_millis_f64(),
                                ),
                                JsonValue::Num(f64::from(*depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("volumes", JsonValue::Arr(self.volume_stats.clone())),
        ])
    }
}

/// One record at a time, in file order, tagged with its **global**
/// file-order index — the engine's only view of the trace, whether it
/// lives in memory or on disk. The index rides with the record (rather
/// than being counted off by the consumer) so a filtering cursor — a
/// shard seeing every Nth stream — still reports positions in the whole
/// trace, keeping per-record artifacts like the latency fingerprint
/// identical however the trace is partitioned.
pub(crate) trait RecordCursor {
    fn next_record(&mut self) -> Option<Result<(u64, TraceRecord), TraceError>>;
}

struct VecCursor {
    iter: std::vec::IntoIter<TraceRecord>,
    idx: u64,
}

impl RecordCursor for VecCursor {
    fn next_record(&mut self) -> Option<Result<(u64, TraceRecord), TraceError>> {
        let r = self.iter.next()?;
        let idx = self.idx;
        self.idx += 1;
        Some(Ok((idx, r)))
    }
}

impl<R: Read> RecordCursor for TraceReader<R> {
    fn next_record(&mut self) -> Option<Result<(u64, TraceRecord), TraceError>> {
        let idx = self.records_read();
        TraceReader::next_record(self).map(|r| r.map(|rec| (idx, rec)))
    }
}

/// A cursor that yields only the records of one shard (`stream mod
/// shards == shard`), preserving their global indices. Skipped records
/// are still decoded — every shard reads and CRC-checks the whole file
/// — but never enter the engine.
pub(crate) struct ShardCursor<C> {
    inner: C,
    shard: u32,
    shards: u32,
}

impl<C> ShardCursor<C> {
    pub(crate) fn new(inner: C, shard: u32, shards: u32) -> ShardCursor<C> {
        debug_assert!(shard < shards);
        ShardCursor {
            inner,
            shard,
            shards,
        }
    }
}

impl<C: RecordCursor> RecordCursor for ShardCursor<C> {
    fn next_record(&mut self) -> Option<Result<(u64, TraceRecord), TraceError>> {
        loop {
            match self.inner.next_record()? {
                Ok((_, r)) if r.stream.0 % self.shards != self.shard => continue,
                item => return Some(item),
            }
        }
    }
}

/// The arrival frontier: the cursor plus at most **one** decoded record
/// waiting for its (time-scaled) arrival instant.
struct Source {
    cursor: Box<dyn RecordCursor>,
    pending: Option<(SimTime, u64, TraceRecord)>,
    done: bool,
    failure: Option<ReplayError>,
    speed: f64,
    start: SimTime,
}

impl Source {
    fn new(cursor: Box<dyn RecordCursor>, speed: f64, start: SimTime) -> Source {
        Source {
            cursor,
            pending: None,
            done: false,
            failure: None,
            speed,
            start,
        }
    }

    /// Pulls the next record off the cursor if nothing is pending.
    fn fill(&mut self) {
        if self.pending.is_some() || self.done {
            return;
        }
        match self.cursor.next_record() {
            None => self.done = true,
            Some(Err(e)) => {
                self.failure = Some(ReplayError::Trace(e));
                self.done = true;
            }
            Some(Ok((idx, r))) => {
                let at =
                    self.start + SimDuration::from_nanos(scale_ns(r.at.as_nanos(), self.speed));
                self.pending = Some((at, idx, r));
            }
        }
    }

    /// Next pending arrival instant, if any.
    fn peek_at(&mut self) -> Option<SimTime> {
        self.fill();
        self.pending.as_ref().map(|(at, _, _)| *at)
    }

    /// Drains every record whose scaled arrival is `<= now`, with the
    /// cursor-reported global file-order indices.
    fn take_due(&mut self, now: SimTime) -> Vec<(u64, TraceRecord)> {
        let mut batch = Vec::new();
        loop {
            self.fill();
            match &self.pending {
                Some((at, _, _)) if *at <= now => {
                    let (_, idx, r) = self.pending.take().expect("pending checked");
                    batch.push((idx, r));
                }
                _ => break,
            }
        }
        batch
    }

    /// All input consumed (no cursor left, nothing pending).
    fn exhausted(&self) -> bool {
        self.done && self.pending.is_none()
    }
}

/// splitmix64 finalizer — a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Digest of one `(record index, latency)` observation. Accumulated
/// with wrapping addition so the fingerprint is independent of
/// completion order while still binding each latency to its record.
fn fingerprint_one(idx: u64, latency_ns: u64) -> u64 {
    mix64(
        idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(mix64(latency_ns)),
    )
}

/// Queue-depth samples with a fixed memory budget: when the vector
/// outgrows the budget, every other sample is dropped and the sampling
/// stride doubles. Below the budget this is exactly "keep every
/// sample".
struct DepthSamples {
    stride: u64,
    tick: u64,
    samples: Vec<(SimTime, u32)>,
}

/// Retained queue-depth samples per replay (doubling keeps the vector
/// between half this and this).
const DEPTH_SAMPLE_BUDGET: usize = 2048;

impl DepthSamples {
    fn new() -> DepthSamples {
        DepthSamples {
            stride: 1,
            tick: 0,
            samples: Vec::new(),
        }
    }

    fn push(&mut self, at: SimTime, depth: u32) {
        if self.tick.is_multiple_of(self.stride) {
            self.samples.push((at, depth));
            if self.samples.len() > DEPTH_SAMPLE_BUDGET {
                let mut i = 0usize;
                self.samples.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.tick += 1;
    }
}

/// One accepted arrival waiting in the admission queue because the
/// [`ReplayOptions::max_in_flight`] bound is reached.
#[derive(Clone, Copy)]
struct DeferredReq {
    idx: u64,
    dev: usize,
    lba: Lba,
    sectors: u32,
    is_read: bool,
    stream: StreamId,
}

/// Shared mutable replay accounting.
struct State {
    issued: u64,
    completed: u64,
    reads: u64,
    writes: u64,
    errors: u64,
    inflight: u32,
    max_inflight: u32,
    /// Admission bound; `u32::MAX` when the replay is fully open-loop.
    bound: u32,
    /// Arrivals admitted past the cursor but waiting for an in-flight
    /// slot. Always empty on the open-loop path.
    deferred: VecDeque<DeferredReq>,
    latency: DurationHistogram,
    read_latency: DurationHistogram,
    write_latency: DurationHistogram,
    streams: StreamMetrics,
    fingerprint: u64,
    peak_resident: u64,
    last_issue_at: Option<SimTime>,
    batch_base: u32,
    batch_len: u64,
    samples: DepthSamples,
    last_done: SimTime,
}

impl State {
    fn new(start: SimTime, bound: Option<u32>) -> State {
        State {
            issued: 0,
            completed: 0,
            reads: 0,
            writes: 0,
            errors: 0,
            inflight: 0,
            max_inflight: 0,
            bound: bound.map_or(u32::MAX, |b| b.max(1)),
            deferred: VecDeque::new(),
            latency: DurationHistogram::new(),
            read_latency: DurationHistogram::new(),
            write_latency: DurationHistogram::new(),
            streams: StreamMetrics::new(),
            fingerprint: 0,
            peak_resident: 0,
            last_issue_at: None,
            batch_base: 0,
            batch_len: 0,
            samples: DepthSamples::new(),
            last_done: start,
        }
    }

    fn issue(&mut self, at: SimTime, stream: StreamId, is_read: bool) {
        // Group same-instant issues into one arrival batch so the
        // residency proxy (in-flight before the batch + batch length)
        // is identical whether the batch was issued by one dispatcher
        // event or by consecutive pre-scheduled events.
        if self.last_issue_at != Some(at) {
            self.last_issue_at = Some(at);
            self.batch_base = self.inflight;
            self.batch_len = 0;
        }
        self.batch_len += 1;
        self.peak_resident = self
            .peak_resident
            .max(u64::from(self.batch_base) + self.batch_len);
        self.issued += 1;
        self.inflight += 1;
        self.max_inflight = self.max_inflight.max(self.inflight);
        if is_read {
            self.reads += 1;
        } else {
            self.writes += 1;
        }
        self.streams.on_issue(stream, is_read);
    }

    fn finish(
        &mut self,
        at: SimTime,
        idx: u64,
        stream: StreamId,
        is_read: bool,
        outcome: Option<SimDuration>,
    ) {
        self.inflight -= 1;
        self.completed += 1;
        self.last_done = self.last_done.max(at);
        self.streams.on_complete(stream, is_read, outcome);
        match outcome {
            Some(lat) => {
                self.latency.record(lat);
                if is_read {
                    self.read_latency.record(lat);
                } else {
                    self.write_latency.record(lat);
                }
                self.fingerprint = self
                    .fingerprint
                    .wrapping_add(fingerprint_one(idx, lat.as_nanos()));
            }
            None => {
                self.errors += 1;
                self.fingerprint = self
                    .fingerprint
                    .wrapping_add(fingerprint_one(idx, u64::MAX));
            }
        }
    }

    fn report(&self, target: &TargetKind, speed: f64, start: SimTime) -> ReplayReport {
        ReplayReport {
            target: target.label(),
            speed,
            requests: self.issued,
            reads: self.reads,
            writes: self.writes,
            errors: self.errors,
            started_at: start,
            duration: self.last_done.saturating_duration_since(start),
            latency: self.latency.clone(),
            read_latency: self.read_latency.clone(),
            write_latency: self.write_latency.clone(),
            streams: self.streams.clone(),
            latency_fingerprint: self.fingerprint,
            peak_resident_records: self.peak_resident,
            max_queue_depth: self.max_inflight,
            queue_depth: self.samples.samples.clone(),
            volume_stats: Vec::new(),
        }
    }
}

/// Everything a dispatcher event needs, cheaply cloneable.
struct EngineCtx {
    source: Rc<RefCell<Source>>,
    state: Rc<RefCell<State>>,
    stack: Rc<dyn BlockStack>,
    drive: Rc<TargetDrive>,
    ndisks: usize,
}

impl Clone for EngineCtx {
    fn clone(&self) -> EngineCtx {
        EngineCtx {
            source: Rc::clone(&self.source),
            state: Rc::clone(&self.state),
            stack: Rc::clone(&self.stack),
            drive: Rc::clone(&self.drive),
            ndisks: self.ndisks,
        }
    }
}

/// The dispatcher: fires at the next pending arrival, drains everything
/// due, re-arms at the new frontier, then issues the batch in file
/// order. Re-arming before issuing keeps the pump's event ahead of this
/// batch's completions in same-instant tie-break order.
fn schedule_pump(sim: &mut Simulator, at: SimTime, ctx: EngineCtx) {
    sim.schedule_at(at, move |sim| {
        let batch = ctx.source.borrow_mut().take_due(sim.now());
        let next = ctx.source.borrow_mut().peek_at();
        if let Some(next_at) = next {
            schedule_pump(sim, next_at, ctx.clone());
        }
        issue_batch(sim, &ctx, batch);
    });
}

fn issue_batch(sim: &mut Simulator, ctx: &EngineCtx, batch: Vec<(u64, TraceRecord)>) {
    for (idx, r) in batch {
        let dev = usize::from(r.dev);
        if dev >= ctx.ndisks {
            let mut src = ctx.source.borrow_mut();
            src.failure = Some(ReplayError::BadDevice {
                dev: r.dev,
                ndisks: ctx.ndisks,
            });
            src.done = true;
            src.pending = None;
            return;
        }
        let (is_read, stream) = (r.op.is_read(), r.stream);
        offer(
            sim,
            &ctx.stack,
            &ctx.drive,
            &ctx.state,
            DeferredReq {
                idx,
                dev,
                lba: r.lba,
                sectors: r.sectors,
                is_read,
                stream,
            },
        );
    }
}

/// Admission control: submits the request unless the in-flight bound is
/// reached, in which case it joins the deferred queue and is submitted
/// by [`drain_deferred`] as completions free slots. On the open-loop
/// path (bound `u32::MAX`) this is exactly issue-then-submit.
fn offer(
    sim: &mut Simulator,
    stack: &Rc<dyn BlockStack>,
    drv: &Rc<TargetDrive>,
    st: &Rc<RefCell<State>>,
    req: DeferredReq,
) {
    {
        let mut s = st.borrow_mut();
        if s.inflight >= s.bound {
            s.deferred.push_back(req);
            s.peak_resident = s
                .peak_resident
                .max(u64::from(s.inflight) + s.deferred.len() as u64);
            return;
        }
        s.issue(sim.now(), req.stream, req.is_read);
    }
    submit(
        sim,
        stack,
        drv,
        st,
        req.idx,
        req.dev,
        req.lba,
        req.sectors,
        req.is_read,
        req.stream,
    );
}

/// Submits deferred arrivals while slots are free. Called from every
/// completion; a no-op when the deferred queue is empty.
fn drain_deferred(
    sim: &mut Simulator,
    stack: &Rc<dyn BlockStack>,
    drv: &Rc<TargetDrive>,
    st: &Rc<RefCell<State>>,
) {
    loop {
        let req = {
            let mut s = st.borrow_mut();
            if s.inflight >= s.bound {
                return;
            }
            match s.deferred.pop_front() {
                Some(r) => {
                    s.issue(sim.now(), r.stream, r.is_read);
                    r
                }
                None => return,
            }
        };
        submit(
            sim,
            stack,
            drv,
            st,
            req.idx,
            req.dev,
            req.lba,
            req.sectors,
            req.is_read,
            req.stream,
        );
    }
}

/// Engine-side queue-depth sampler. Arrivals due at the sample instant
/// are drained first, reproducing the oracle's arrivals-before-sampler
/// event order at tied instants.
fn schedule_engine_sampler(sim: &mut Simulator, ctx: EngineCtx, every: SimDuration) {
    sim.schedule_in(every, move |sim| {
        let batch = ctx.source.borrow_mut().take_due(sim.now());
        issue_batch(sim, &ctx, batch);
        let finished = {
            let mut s = ctx.state.borrow_mut();
            let depth = s.inflight;
            s.samples.push(sim.now(), depth);
            ctx.source.borrow().exhausted() && s.completed >= s.issued
        };
        if !finished {
            schedule_engine_sampler(sim, ctx.clone(), every);
        }
    });
}

/// Replays `trace` against the target `opts` describes; see the module
/// docs for the open-loop and bounded-memory semantics.
///
/// # Errors
///
/// [`ReplayError`] when the trace is empty or the target cannot be
/// built/prepared. Individual request failures during the replay do
/// *not* error — they are counted in [`ReplayReport::errors`].
///
/// # Panics
///
/// Panics if the simulation stalls (event queue drained with requests
/// outstanding) — a driver bug, not a workload condition.
pub fn replay(trace: &Trace, opts: &ReplayOptions) -> Result<ReplayReport, ReplayError> {
    if trace.is_empty() {
        return Err(ReplayError::EmptyTrace);
    }
    let devices_hint = usize::from(trace.max_dev().unwrap_or(0)) + 1;
    run_engine(
        Box::new(VecCursor {
            iter: trace.records.clone().into_iter(),
            idx: 0,
        }),
        devices_hint,
        opts,
    )
}

/// Replays a binary trace stream chunk-by-chunk without ever holding
/// the whole trace: the bounded-memory path for traces too big for
/// [`replay`]. The target is sized from the stream header's device
/// count (raised by [`ReplayOptions::data_disks`]); a record addressing
/// a device beyond that fails with [`ReplayError::BadDevice`].
///
/// On seed-sized traces the report is byte-identical to [`replay`] of
/// the decoded trace — `cargo test -p trail-trace` holds this as a
/// property.
///
/// # Errors
///
/// As [`replay`], plus [`ReplayError::Trace`] when the stream is
/// truncated or corrupt mid-replay and [`ReplayError::BadDevice`] for
/// an under-declared device count.
///
/// # Panics
///
/// As [`replay`].
pub fn replay_stream<R: Read + 'static>(
    reader: TraceReader<R>,
    opts: &ReplayOptions,
) -> Result<ReplayReport, ReplayError> {
    let devices_hint = usize::from(reader.meta().devices).max(1);
    run_engine(Box::new(reader), devices_hint, opts)
}

/// The plan the target is armed with: [`ReplayOptions::faults`] plus
/// the [`ReplayOptions::fail_member`] shim folded in as a member-fail
/// fault. Faults addressing hardware the target lacks stay unhandled on
/// the clock (a sweep can name member 2 while also replaying against
/// non-RAID targets).
fn effective_faults(opts: &ReplayOptions) -> FaultPlan {
    let mut plan = opts.faults.clone();
    if let Some(f) = opts.fail_member {
        plan.push(Fault {
            at: f.after,
            target: FaultTarget::Member {
                volume: f.volume,
                member: f.member,
            },
            kind: FaultKind::Fail,
        });
    }
    plan
}

pub(crate) fn run_engine(
    cursor: Box<dyn RecordCursor>,
    devices_hint: usize,
    opts: &ReplayOptions,
) -> Result<ReplayReport, ReplayError> {
    let speed = opts.speed.clamp(0.5, 8.0);
    let ndisks = opts.data_disks.unwrap_or(0).max(devices_hint).max(1);
    let BuiltTarget {
        mut sim,
        stack,
        drive,
        volumes,
        ..
    } = StackBuilder::new()
        .data_disks(ndisks)
        .fs_file_blocks(opts.fs_file_blocks)
        .faults(effective_faults(opts))
        .build_target(opts.target)?;
    if let Some(recorder) = &opts.recorder {
        stack.set_recorder(Rc::clone(recorder));
    }
    if let Some(tap) = &opts.tap {
        stack.set_tap(Rc::clone(tap));
    }
    let drive = Rc::new(drive);
    let start = sim.now();

    let mut source = Source::new(cursor, speed, start);
    let first_at = match source.peek_at() {
        Some(at) => at,
        None => {
            return Err(source.failure.take().unwrap_or(ReplayError::EmptyTrace));
        }
    };
    let ctx = EngineCtx {
        source: Rc::new(RefCell::new(source)),
        state: Rc::new(RefCell::new(State::new(start, opts.max_in_flight))),
        stack,
        drive,
        ndisks,
    };
    schedule_pump(&mut sim, first_at, ctx.clone());
    if !opts.sample_every.is_zero() {
        schedule_engine_sampler(&mut sim, ctx.clone(), opts.sample_every);
    }

    loop {
        if let Some(f) = ctx.source.borrow_mut().failure.take() {
            return Err(f);
        }
        let (finished, outstanding) = {
            let s = ctx.state.borrow();
            let src = ctx.source.borrow();
            (
                src.exhausted() && s.completed >= s.issued,
                s.issued - s.completed,
            )
        };
        if finished {
            break;
        }
        assert!(
            sim.step(),
            "replay stalled: event queue drained with {outstanding} requests outstanding",
        );
    }
    let mut report = ctx.state.borrow().report(&opts.target, speed, start);
    report.volume_stats = volumes.iter().map(|v| v.stats_json()).collect();
    Ok(report)
}

/// The pre-scheduled issue path: every record's arrival laid down as
/// its own simulator event up front, O(trace) memory. Kept (hidden) as
/// the oracle the streaming dispatcher is property-tested against;
/// behavior and output are identical.
///
/// # Errors
///
/// As [`replay`].
#[doc(hidden)]
pub fn replay_single_issuer(
    trace: &Trace,
    opts: &ReplayOptions,
) -> Result<ReplayReport, ReplayError> {
    if trace.is_empty() {
        return Err(ReplayError::EmptyTrace);
    }
    let speed = opts.speed.clamp(0.5, 8.0);
    let trace_devs = usize::from(trace.max_dev().unwrap_or(0)) + 1;
    let ndisks = opts.data_disks.unwrap_or(0).max(trace_devs);
    let BuiltTarget {
        mut sim,
        stack,
        drive,
        volumes,
        ..
    } = StackBuilder::new()
        .data_disks(ndisks)
        .fs_file_blocks(opts.fs_file_blocks)
        .faults(effective_faults(opts))
        .build_target(opts.target)?;
    if let Some(recorder) = &opts.recorder {
        stack.set_recorder(Rc::clone(recorder));
    }
    if let Some(tap) = &opts.tap {
        stack.set_tap(Rc::clone(tap));
    }
    let drive = Rc::new(drive);
    let start = sim.now();
    let state = Rc::new(RefCell::new(State::new(start, opts.max_in_flight)));
    let total = trace.len() as u64;

    for (idx, r) in trace.records.iter().enumerate() {
        let arrival = start + SimDuration::from_nanos(scale_ns(r.at.as_nanos(), speed));
        let (dev, lba, sectors) = (usize::from(r.dev), r.lba, r.sectors);
        let (is_read, stream) = (r.op.is_read(), r.stream);
        let idx = idx as u64;
        let stack = Rc::clone(&stack);
        let drv = Rc::clone(&drive);
        let st = Rc::clone(&state);
        sim.schedule_at(arrival, move |sim| {
            offer(
                sim,
                &stack,
                &drv,
                &st,
                DeferredReq {
                    idx,
                    dev,
                    lba,
                    sectors,
                    is_read,
                    stream,
                },
            );
        });
    }

    if !opts.sample_every.is_zero() {
        schedule_oracle_sampler(&mut sim, Rc::clone(&state), opts.sample_every, total);
    }

    while state.borrow().completed < total {
        assert!(
            sim.step(),
            "replay stalled: event queue drained with {} of {} requests outstanding",
            total - state.borrow().completed,
            total
        );
    }

    let mut report = state.borrow().report(&opts.target, speed, start);
    report.volume_stats = volumes.iter().map(|v| v.stats_json()).collect();
    Ok(report)
}

/// Time-scales a relative arrival; exactly the identity at 1×.
fn scale_ns(ns: u64, speed: f64) -> u64 {
    if speed == 1.0 {
        ns
    } else {
        (ns as f64 / speed) as u64
    }
}

/// Deterministic payload byte for record `idx`.
fn fill_byte(idx: u64) -> u8 {
    (idx as u8).wrapping_mul(31) ^ 0xA5
}

#[allow(clippy::too_many_arguments)]
fn submit(
    sim: &mut Simulator,
    stack: &Rc<dyn BlockStack>,
    drv: &Rc<TargetDrive>,
    st: &Rc<RefCell<State>>,
    idx: u64,
    dev: usize,
    lba: Lba,
    sectors: u32,
    is_read: bool,
    stream: StreamId,
) {
    let issued = sim.now();
    match &**drv {
        TargetDrive::Block { capacity } => {
            let headroom = capacity[dev].saturating_sub(u64::from(sectors)) + 1;
            let lba = lba % headroom;
            let st2 = Rc::clone(st);
            let stack2 = Rc::clone(stack);
            let drv2 = Rc::clone(drv);
            let done: Completion<IoDone> = sim.completion(move |sim, d: Delivered<IoDone>| {
                let now = sim.now();
                let outcome = d.is_ok().then(|| now - issued);
                st2.borrow_mut().finish(now, idx, stream, is_read, outcome);
                drain_deferred(sim, &stack2, &drv2, &st2);
            });
            // A rejected submission drops the armed token, which cancels
            // it — the handler above counts that as an error.
            let _ = if is_read {
                stack.read_tagged(sim, dev, lba, sectors, stream, done)
            } else {
                let data = vec![fill_byte(idx); sectors as usize * SECTOR_SIZE];
                stack.write_tagged(sim, dev, lba, data, stream, done)
            };
        }
        TargetDrive::Fs {
            mounts,
            file_blocks,
        } => {
            let (fs, file) = &mounts[dev];
            let bytes = sectors as usize * SECTOR_SIZE;
            let blocks_needed = (bytes as u64).div_ceil(FS_BLOCK_SIZE as u64).max(1);
            // Map the sector address into the preallocated file,
            // block-aligned and clamped so the request always fits. The
            // file-system API carries no stream tag; per-stream lanes
            // are still tracked here at the replay layer.
            let block = (lba / (FS_BLOCK_SIZE / SECTOR_SIZE) as u64)
                % (file_blocks.saturating_sub(blocks_needed) + 1);
            let offset = block * FS_BLOCK_SIZE as u64;
            if is_read {
                let st2 = Rc::clone(st);
                let stack2 = Rc::clone(stack);
                let drv2 = Rc::clone(drv);
                let done = sim.completion(move |sim, d: Delivered<Result<Vec<u8>, FsError>>| {
                    let now = sim.now();
                    let outcome = matches!(d, Ok(Ok(_))).then(|| now - issued);
                    st2.borrow_mut().finish(now, idx, stream, is_read, outcome);
                    drain_deferred(sim, &stack2, &drv2, &st2);
                });
                let _ = fs.read(sim, *file, offset, bytes, done);
            } else {
                let st2 = Rc::clone(st);
                let stack2 = Rc::clone(stack);
                let drv2 = Rc::clone(drv);
                let done = sim.completion(move |sim, d: Delivered<Result<(), FsError>>| {
                    let now = sim.now();
                    let outcome = matches!(d, Ok(Ok(()))).then(|| now - issued);
                    st2.borrow_mut().finish(now, idx, stream, is_read, outcome);
                    drain_deferred(sim, &stack2, &drv2, &st2);
                });
                let data = vec![fill_byte(idx); bytes];
                let _ = fs.write(sim, *file, offset, data, true, done);
            }
        }
    }
}

fn schedule_oracle_sampler(
    sim: &mut Simulator,
    st: Rc<RefCell<State>>,
    every: SimDuration,
    total: u64,
) {
    sim.schedule_in(every, move |sim| {
        let finished = {
            let mut s = st.borrow_mut();
            let depth = s.inflight;
            s.samples.push(sim.now(), depth);
            s.completed >= total
        };
        if !finished {
            schedule_oracle_sampler(sim, st, every, total);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TraceReader;
    use crate::gen::{generate, generate_stream, SyntheticSpec};

    fn small_trace() -> Trace {
        generate(&SyntheticSpec {
            requests: 40,
            read_fraction: 0.25,
            ..SyntheticSpec::default()
        })
    }

    #[test]
    fn replay_rejects_empty_traces() {
        assert!(matches!(
            replay(&Trace::default(), &ReplayOptions::default()),
            Err(ReplayError::EmptyTrace)
        ));
    }

    #[test]
    fn replay_standard_accounts_for_every_request() {
        let t = small_trace();
        let r = replay(&t, &ReplayOptions::default()).expect("replay");
        assert_eq!(r.requests, 40);
        assert_eq!(r.reads + r.writes, 40);
        assert_eq!(r.errors, 0);
        assert_eq!(r.latency.count(), 40);
        assert_ne!(r.latency_fingerprint, 0);
        assert!(r.peak_resident_records >= 1);
        assert!(r.peak_resident_records <= 40);
        assert!(r.max_queue_depth >= 1);
        assert!(!r.duration.is_zero());
    }

    #[test]
    fn trail_beats_standard_on_sync_write_latency() {
        let t = generate(&SyntheticSpec {
            requests: 60,
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let std_rep = replay(&t, &ReplayOptions::default()).expect("standard");
        let trail_rep = replay(
            &t,
            &ReplayOptions {
                target: TargetKind::Trail,
                ..ReplayOptions::default()
            },
        )
        .expect("trail");
        // The paper's headline: Trail's log-disk writes complete well
        // under the standard stack's seek+rotation writes.
        assert!(
            trail_rep.latency.mean() < std_rep.latency.mean(),
            "trail {:?} vs standard {:?}",
            trail_rep.latency.mean(),
            std_rep.latency.mean()
        );
    }

    #[test]
    fn speed_knob_compresses_arrivals() {
        let t = small_trace();
        let slow = replay(&t, &ReplayOptions::default()).expect("1x");
        let fast = replay(
            &t,
            &ReplayOptions {
                speed: 8.0,
                ..ReplayOptions::default()
            },
        )
        .expect("8x");
        assert!(fast.duration < slow.duration);
        // Out-of-range speeds clamp instead of erroring.
        let clamped = replay(
            &t,
            &ReplayOptions {
                speed: 1000.0,
                ..ReplayOptions::default()
            },
        )
        .expect("clamped");
        assert_eq!(clamped.speed, 8.0);
    }

    #[test]
    fn replay_is_deterministic() {
        let t = small_trace();
        let a = replay(&t, &ReplayOptions::default()).expect("a");
        let b = replay(&t, &ReplayOptions::default()).expect("b");
        assert_eq!(a.latency_fingerprint, b.latency_fingerprint);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
    }

    #[test]
    fn streaming_replay_matches_the_in_memory_report() {
        let spec = SyntheticSpec {
            requests: 120,
            streams: 3,
            read_fraction: 0.3,
            ..SyntheticSpec::default()
        };
        let trace = generate(&spec);
        let oracle = replay(&trace, &ReplayOptions::default()).expect("in-memory");
        // Small chunks force the streaming path through many refills.
        for chunk in [7u32, 0] {
            let bytes = generate_stream(&spec, chunk, Vec::new()).expect("encode");
            let reader = TraceReader::new(std::io::Cursor::new(bytes)).expect("header");
            let streamed =
                replay_stream(reader, &ReplayOptions::default()).expect("streaming replay");
            assert_eq!(streamed.latency_fingerprint, oracle.latency_fingerprint);
            assert_eq!(streamed.peak_resident_records, oracle.peak_resident_records);
            assert_eq!(streamed.to_json().to_json(), oracle.to_json().to_json());
        }
    }

    #[test]
    fn streaming_replay_rejects_truncated_streams() {
        let spec = SyntheticSpec {
            requests: 50,
            ..SyntheticSpec::default()
        };
        let bytes = generate_stream(&spec, 8, Vec::new()).expect("encode");
        // Cut mid-way through the record chunks: the replay must surface
        // the decode failure instead of reporting a short trace.
        let cut = &bytes[..bytes.len() / 2];
        let reader = TraceReader::new(std::io::Cursor::new(cut.to_vec())).expect("header");
        match replay_stream(reader, &ReplayOptions::default()) {
            Err(ReplayError::Trace(_)) => {}
            other => panic!(
                "expected a trace decode error, got {:?}",
                other.map(|r| r.requests)
            ),
        }
    }

    #[test]
    fn multi_log_target_replays() {
        let t = generate(&SyntheticSpec {
            requests: 30,
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let r = replay(
            &t,
            &ReplayOptions {
                target: TargetKind::TrailMulti { logs: 2 },
                ..ReplayOptions::default()
            },
        )
        .expect("multi");
        assert_eq!(r.errors, 0);
        assert_eq!(r.latency.count(), 30);
    }

    #[test]
    fn fs_targets_replay_reads_and_writes() {
        let t = generate(&SyntheticSpec {
            requests: 30,
            read_fraction: 0.4,
            ..SyntheticSpec::default()
        });
        for target in [
            TargetKind::Ext2 { trail: false },
            TargetKind::Lfs { trail: true },
        ] {
            let r = replay(
                &t,
                &ReplayOptions {
                    target,
                    fs_file_blocks: 256,
                    ..ReplayOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{target:?}: {e}"));
            assert_eq!(r.errors, 0, "{target:?}");
            assert_eq!(r.latency.count(), 30, "{target:?}");
        }
    }

    #[test]
    fn queue_depth_is_sampled() {
        let t = generate(&SyntheticSpec {
            requests: 50,
            arrivals: crate::gen::ArrivalModel::Bursty {
                burst: 10,
                iat_in_burst: SimDuration::from_micros(50),
                gap: SimDuration::from_millis(20),
            },
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let r = replay(
            &t,
            &ReplayOptions {
                sample_every: SimDuration::from_millis(1),
                ..ReplayOptions::default()
            },
        )
        .expect("replay");
        assert!(!r.queue_depth.is_empty());
        assert!(r.max_queue_depth > 1, "bursts should overlap service");
    }

    #[test]
    fn depth_samples_downsample_past_the_budget() {
        let mut ds = DepthSamples::new();
        for i in 0..(DEPTH_SAMPLE_BUDGET as u64 * 4) {
            ds.push(SimTime::from_nanos(i * 1000), (i % 7) as u32);
        }
        assert!(ds.samples.len() <= DEPTH_SAMPLE_BUDGET);
        assert!(ds.stride > 1, "stride doubled under pressure");
        // Retained samples stay in time order and on the stride grid.
        assert!(ds.samples.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn fail_member_shim_is_the_fault_plan() {
        // The deprecated shim and the declarative plan must drive the
        // identical degraded-mode replay, byte for byte.
        let t = generate(&SyntheticSpec {
            requests: 50,
            read_fraction: 0.3,
            ..SyntheticSpec::default()
        });
        let target = TargetKind::Raid {
            layout: trail::volume::VolumeLayout::Raid5 { chunk_sectors: 8 },
            members: 3,
            trail: false,
        };
        let after = SimDuration::from_millis(5);
        let shim = replay(
            &t,
            &ReplayOptions {
                target,
                fail_member: Some(FailMember {
                    volume: 0,
                    member: 1,
                    after,
                }),
                ..ReplayOptions::default()
            },
        )
        .expect("shim replay");
        let plan = replay(
            &t,
            &ReplayOptions {
                target,
                faults: FaultPlan::member_fail(0, 1, after),
                ..ReplayOptions::default()
            },
        )
        .expect("plan replay");
        assert_eq!(shim.to_json().to_json(), plan.to_json().to_json());
        // The failure actually landed: the volume counted it.
        assert!(shim.volume_stats[0]
            .to_json()
            .contains("\"member_failures\":1"));
    }

    #[test]
    fn max_in_flight_bounds_the_open_loop_queue() {
        // Offer the load four times as fast: unbounded, the open loop
        // builds real queue depth; bounded, it cannot exceed the knob.
        let t = generate(&SyntheticSpec {
            requests: 80,
            read_fraction: 0.0,
            arrivals: crate::gen::ArrivalModel::Bursty {
                burst: 16,
                iat_in_burst: SimDuration::from_micros(50),
                gap: SimDuration::from_millis(10),
            },
            ..SyntheticSpec::default()
        });
        let open = replay(
            &t,
            &ReplayOptions {
                speed: 4.0,
                ..ReplayOptions::default()
            },
        )
        .expect("open loop");
        assert!(
            open.max_queue_depth > 4,
            "load too light to exercise the bound: depth {}",
            open.max_queue_depth
        );
        let bounded = replay(
            &t,
            &ReplayOptions {
                speed: 4.0,
                max_in_flight: Some(4),
                ..ReplayOptions::default()
            },
        )
        .expect("bounded");
        assert!(
            bounded.max_queue_depth <= 4,
            "bound violated: depth {}",
            bounded.max_queue_depth
        );
        // Every deferred arrival was still submitted and completed.
        assert_eq!(bounded.requests, 80);
        assert_eq!(bounded.errors, 0);
        assert_eq!(bounded.latency.count(), 80);
    }

    #[test]
    fn slack_bound_is_byte_identical_to_open_loop() {
        let t = small_trace();
        let open = replay(&t, &ReplayOptions::default()).expect("open");
        let slack = replay(
            &t,
            &ReplayOptions {
                max_in_flight: Some(10_000),
                ..ReplayOptions::default()
            },
        )
        .expect("slack");
        assert_eq!(open.to_json().to_json(), slack.to_json().to_json());
    }

    #[test]
    fn per_stream_lanes_partition_the_aggregate() {
        let t = generate(&SyntheticSpec {
            requests: 60,
            streams: 3,
            read_fraction: 0.3,
            ..SyntheticSpec::default()
        });
        let r = replay(&t, &ReplayOptions::default()).expect("replay");
        assert_eq!(r.streams.streams(), 3);
        let mut requests = 0;
        let mut lat_count = 0;
        for (_, lane) in r.streams.iter() {
            requests += lane.requests;
            lat_count += lane.latency.count();
        }
        assert_eq!(requests, r.requests);
        assert_eq!(lat_count, r.latency.count());
        let json = r.to_json().to_json();
        assert!(json.contains("\"streams\""), "streams section in JSON");
        assert!(json.contains("\"latency_fingerprint\""));
        assert!(json.contains("\"peak_resident_records\""));
    }
}
