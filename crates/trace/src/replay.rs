//! Open-loop trace replay against any storage stack.
//!
//! The replay engine schedules every trace record at its recorded
//! arrival instant (optionally time-scaled) and lets completions land
//! whenever the stack delivers them — **open loop**: a slow stack does
//! not slow the arrival process down, it just builds queue depth. That
//! is the property that makes replay an apples-to-apples comparison:
//! the same offered load hits a raw C-LOOK stack, Trail, a multi-log
//! Trail array, or a file system, and the latency distributions and
//! queue-depth trajectories are directly comparable.
//!
//! Targets are built by the umbrella crate's one factory
//! ([`trail::StackBuilder::build_target`]), so a replay and a
//! `trail-bench` scenario naming the same [`TargetKind`] drive exactly
//! the same stack.
//!
//! # Stream sharding
//!
//! Replay is organized as one **issuer shard per stream**: the trace is
//! split by stream tag, each shard pre-schedules its own arrival
//! sequence, and the shards merge deterministically on the single
//! simulator clock (shards are laid down in ascending stream order, and
//! the simulator breaks equal-instant ties by scheduling order — the
//! same order a single issuer walking the `(arrival, stream)`-sorted
//! trace would produce, so sharding is observationally identical to a
//! single issuer; `cargo test -p trail-trace` holds this as a property).
//! Each request carries its stream tag into the stack, and the report
//! breaks latency and queue depth out per stream.
//!
//! ```
//! use trail_trace::{generate, replay, ReplayOptions, SyntheticSpec, TargetKind};
//!
//! let trace = generate(&SyntheticSpec {
//!     requests: 50,
//!     streams: 2,
//!     ..SyntheticSpec::default()
//! });
//! let report = replay(
//!     &trace,
//!     &ReplayOptions {
//!         target: TargetKind::Trail,
//!         ..ReplayOptions::default()
//!     },
//! )?;
//! assert_eq!(report.requests, 50);
//! assert_eq!(report.streams.streams(), 2);
//! # Ok::<(), trail_trace::ReplayError>(())
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use trail::{BuiltTarget, StackBuilder, TargetDrive, TargetError};
use trail_blockio::TapHandle;
use trail_db::BlockStack;
use trail_disk::{Lba, SECTOR_SIZE};
use trail_fs::{FsError, FS_BLOCK_SIZE};
use trail_sim::{Completion, Delivered, SimDuration, SimTime, Simulator};
use trail_telemetry::{DurationHistogram, JsonValue, RecorderHandle, StreamId, StreamMetrics};

pub use trail::TargetKind;
use trail_blockio::IoDone;

use crate::format::Trace;

/// How to replay.
#[derive(Clone)]
pub struct ReplayOptions {
    /// The stack to drive.
    pub target: TargetKind,
    /// Data disks to build; defaults to (and is raised to) the highest
    /// device index the trace addresses plus one.
    pub data_disks: Option<usize>,
    /// Time-scale knob: arrivals are compressed by this factor (2.0
    /// offers the load twice as fast). Clamped to `0.5..=8.0`; `1.0`
    /// replays at recorded speed.
    pub speed: f64,
    /// Queue-depth sampling period ([`SimDuration::ZERO`] disables
    /// sampling).
    pub sample_every: SimDuration,
    /// File size, in 4-KB blocks, of the per-device file that file-system
    /// targets replay into (raised to at least 64).
    pub fs_file_blocks: u32,
    /// Telemetry recorder installed on the stack (after setup, so the
    /// trace starts clean).
    pub recorder: Option<RecorderHandle>,
    /// Capture tap installed on the stack (after setup) — for recording
    /// what the replay itself submits, e.g. a capture→replay round trip.
    pub tap: Option<TapHandle>,
}

impl Default for ReplayOptions {
    /// Standard stack, recorded speed, 10-ms queue sampling, 4-MB files.
    fn default() -> Self {
        ReplayOptions {
            target: TargetKind::Standard,
            data_disks: None,
            speed: 1.0,
            sample_every: SimDuration::from_millis(10),
            fs_file_blocks: 1024,
            recorder: None,
            tap: None,
        }
    }
}

/// Why a replay could not run.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace holds no records.
    EmptyTrace,
    /// Building or preparing the target failed.
    Target(TargetError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyTrace => write!(f, "cannot replay an empty trace"),
            ReplayError::Target(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TargetError> for ReplayError {
    fn from(e: TargetError) -> ReplayError {
        ReplayError::Target(e)
    }
}

/// What a replay measured.
pub struct ReplayReport {
    /// The target's [`TargetKind::label`].
    pub target: String,
    /// The effective (clamped) time-scale factor.
    pub speed: f64,
    /// Requests issued.
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Requests that errored or were cancelled (these carry
    /// `u64::MAX` in [`ReplayReport::per_request_ns`] and are excluded
    /// from the histograms).
    pub errors: u64,
    /// Simulator instant the first arrival was anchored to; subtracting
    /// it from a capture of this replay recovers the input trace's
    /// timeline.
    pub started_at: SimTime,
    /// Virtual time from the anchor to the last completion.
    pub duration: SimDuration,
    /// End-to-end latency over all successful requests.
    pub latency: DurationHistogram,
    /// Latency over successful reads.
    pub read_latency: DurationHistogram,
    /// Latency over successful writes.
    pub write_latency: DurationHistogram,
    /// Per-stream latency and concurrency, keyed by the trace's stream
    /// tags.
    pub streams: StreamMetrics,
    /// Per-record latency in nanoseconds, indexed like the trace's
    /// records (`u64::MAX` for errors) — the byte-comparable
    /// determinism witness.
    pub per_request_ns: Vec<u64>,
    /// Highest concurrent in-flight count observed.
    pub max_queue_depth: u32,
    /// Sampled `(instant, in-flight)` pairs, every
    /// [`ReplayOptions::sample_every`].
    pub queue_depth: Vec<(SimTime, u32)>,
}

impl ReplayReport {
    /// The report as a JSON object (histograms include `p50_ms`,
    /// `p99_ms`, `p999_ms`; a `streams` object keyed by stream tag;
    /// queue-depth samples as `[ms, depth]` pairs). Everything in it is
    /// virtual-time-derived, so a fixed trace and options produce
    /// identical JSON on every run.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("target", JsonValue::str(self.target.clone())),
            ("speed", JsonValue::Num(self.speed)),
            ("requests", JsonValue::Num(self.requests as f64)),
            ("reads", JsonValue::Num(self.reads as f64)),
            ("writes", JsonValue::Num(self.writes as f64)),
            ("errors", JsonValue::Num(self.errors as f64)),
            ("duration_ms", JsonValue::Num(self.duration.as_millis_f64())),
            ("latency", self.latency.to_json()),
            ("read_latency", self.read_latency.to_json()),
            ("write_latency", self.write_latency.to_json()),
            ("streams", self.streams.to_json()),
            (
                "max_queue_depth",
                JsonValue::Num(f64::from(self.max_queue_depth)),
            ),
            (
                "queue_depth",
                JsonValue::Arr(
                    self.queue_depth
                        .iter()
                        .map(|(at, depth)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(
                                    at.saturating_duration_since(self.started_at)
                                        .as_millis_f64(),
                                ),
                                JsonValue::Num(f64::from(*depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Shared mutable replay accounting.
struct State {
    total: usize,
    completed: usize,
    reads: u64,
    writes: u64,
    errors: u64,
    inflight: u32,
    max_inflight: u32,
    latency: DurationHistogram,
    read_latency: DurationHistogram,
    write_latency: DurationHistogram,
    streams: StreamMetrics,
    per_request_ns: Vec<u64>,
    samples: Vec<(SimTime, u32)>,
    last_done: SimTime,
}

impl State {
    fn issue(&mut self, stream: StreamId, is_read: bool) {
        self.inflight += 1;
        self.max_inflight = self.max_inflight.max(self.inflight);
        if is_read {
            self.reads += 1;
        } else {
            self.writes += 1;
        }
        self.streams.on_issue(stream, is_read);
    }

    fn finish(
        &mut self,
        at: SimTime,
        idx: usize,
        stream: StreamId,
        is_read: bool,
        outcome: Option<SimDuration>,
    ) {
        self.inflight -= 1;
        self.completed += 1;
        self.last_done = self.last_done.max(at);
        self.streams.on_complete(stream, is_read, outcome);
        match outcome {
            Some(lat) => {
                self.latency.record(lat);
                if is_read {
                    self.read_latency.record(lat);
                } else {
                    self.write_latency.record(lat);
                }
                self.per_request_ns[idx] = lat.as_nanos();
            }
            None => {
                self.errors += 1;
                self.per_request_ns[idx] = u64::MAX;
            }
        }
    }
}

/// Replays `trace` against the target `opts` describes, sharded by
/// stream; see the module docs for the open-loop and sharding
/// semantics.
///
/// # Errors
///
/// [`ReplayError`] when the trace is empty or the target cannot be
/// built/prepared. Individual request failures during the replay do
/// *not* error — they are counted in [`ReplayReport::errors`].
///
/// # Panics
///
/// Panics if the simulation stalls (event queue drained with requests
/// outstanding) — a driver bug, not a workload condition.
pub fn replay(trace: &Trace, opts: &ReplayOptions) -> Result<ReplayReport, ReplayError> {
    replay_impl(trace, opts, true)
}

/// The pre-sharding issue path: one issuer walking the trace in record
/// order. Kept (hidden) as the oracle the sharded path is
/// property-tested against; behavior and output are identical.
///
/// # Errors
///
/// As [`replay`].
#[doc(hidden)]
pub fn replay_single_issuer(
    trace: &Trace,
    opts: &ReplayOptions,
) -> Result<ReplayReport, ReplayError> {
    replay_impl(trace, opts, false)
}

fn replay_impl(
    trace: &Trace,
    opts: &ReplayOptions,
    sharded: bool,
) -> Result<ReplayReport, ReplayError> {
    if trace.is_empty() {
        return Err(ReplayError::EmptyTrace);
    }
    let speed = opts.speed.clamp(0.5, 8.0);
    let trace_devs = usize::from(trace.max_dev().unwrap_or(0)) + 1;
    let ndisks = opts.data_disks.unwrap_or(0).max(trace_devs);
    let BuiltTarget {
        mut sim,
        stack,
        drive,
    } = StackBuilder::new()
        .data_disks(ndisks)
        .fs_file_blocks(opts.fs_file_blocks)
        .build_target(opts.target)?;
    if let Some(recorder) = &opts.recorder {
        stack.set_recorder(Rc::clone(recorder));
    }
    if let Some(tap) = &opts.tap {
        stack.set_tap(Rc::clone(tap));
    }
    let drive = Rc::new(drive);
    let start = sim.now();
    let state = Rc::new(RefCell::new(State {
        total: trace.len(),
        completed: 0,
        reads: 0,
        writes: 0,
        errors: 0,
        inflight: 0,
        max_inflight: 0,
        latency: DurationHistogram::new(),
        read_latency: DurationHistogram::new(),
        write_latency: DurationHistogram::new(),
        streams: StreamMetrics::new(),
        per_request_ns: vec![0; trace.len()],
        samples: Vec::new(),
        last_done: start,
    }));

    // Issuer shards: each stream's arrival sequence is scheduled as a
    // unit, shards in ascending stream order. Because the trace is
    // sorted by `(arrival, stream)` and the simulator breaks
    // equal-instant ties by scheduling order, this lays down exactly
    // the tie-break order a single issuer would — which is why the two
    // paths below are byte-identical.
    let shards: Vec<(StreamId, Vec<usize>)> = if sharded {
        let mut by_stream: BTreeMap<StreamId, Vec<usize>> = BTreeMap::new();
        for (idx, r) in trace.records.iter().enumerate() {
            by_stream.entry(r.stream).or_default().push(idx);
        }
        by_stream.into_iter().collect()
    } else {
        vec![(StreamId::UNTAGGED, (0..trace.len()).collect())]
    };
    for (_, shard) in shards {
        for idx in shard {
            let r = &trace.records[idx];
            let arrival = start + SimDuration::from_nanos(scale_ns(r.at.as_nanos(), speed));
            let (dev, lba, sectors) = (usize::from(r.dev), r.lba, r.sectors);
            let (is_read, stream) = (r.op.is_read(), r.stream);
            let stack = Rc::clone(&stack);
            let drv = Rc::clone(&drive);
            let st = Rc::clone(&state);
            sim.schedule_at(arrival, move |sim| {
                st.borrow_mut().issue(stream, is_read);
                submit(
                    sim, &stack, &drv, &st, idx, dev, lba, sectors, is_read, stream,
                );
            });
        }
    }

    if !opts.sample_every.is_zero() {
        schedule_sampler(&mut sim, Rc::clone(&state), opts.sample_every);
    }

    while state.borrow().completed < state.borrow().total {
        assert!(
            sim.step(),
            "replay stalled: event queue drained with {} of {} requests outstanding",
            state.borrow().total - state.borrow().completed,
            state.borrow().total
        );
    }

    let state = Rc::try_unwrap(state)
        .unwrap_or_else(|still_shared| {
            // The sampler may still hold a clone; deep-copy out of it.
            let s = still_shared.borrow();
            RefCell::new(State {
                total: s.total,
                completed: s.completed,
                reads: s.reads,
                writes: s.writes,
                errors: s.errors,
                inflight: s.inflight,
                max_inflight: s.max_inflight,
                latency: s.latency.clone(),
                read_latency: s.read_latency.clone(),
                write_latency: s.write_latency.clone(),
                streams: s.streams.clone(),
                per_request_ns: s.per_request_ns.clone(),
                samples: s.samples.clone(),
                last_done: s.last_done,
            })
        })
        .into_inner();
    Ok(ReplayReport {
        target: opts.target.label(),
        speed,
        requests: state.total as u64,
        reads: state.reads,
        writes: state.writes,
        errors: state.errors,
        started_at: start,
        duration: state.last_done.saturating_duration_since(start),
        latency: state.latency,
        read_latency: state.read_latency,
        write_latency: state.write_latency,
        streams: state.streams,
        per_request_ns: state.per_request_ns,
        max_queue_depth: state.max_inflight,
        queue_depth: state.samples,
    })
}

/// Time-scales a relative arrival; exactly the identity at 1×.
fn scale_ns(ns: u64, speed: f64) -> u64 {
    if speed == 1.0 {
        ns
    } else {
        (ns as f64 / speed) as u64
    }
}

/// Deterministic payload byte for record `idx`.
fn fill_byte(idx: usize) -> u8 {
    (idx as u8).wrapping_mul(31) ^ 0xA5
}

#[allow(clippy::too_many_arguments)]
fn submit(
    sim: &mut Simulator,
    stack: &Rc<dyn BlockStack>,
    drv: &Rc<TargetDrive>,
    st: &Rc<RefCell<State>>,
    idx: usize,
    dev: usize,
    lba: Lba,
    sectors: u32,
    is_read: bool,
    stream: StreamId,
) {
    let issued = sim.now();
    match &**drv {
        TargetDrive::Block { capacity } => {
            let headroom = capacity[dev].saturating_sub(u64::from(sectors)) + 1;
            let lba = lba % headroom;
            let st2 = Rc::clone(st);
            let done: Completion<IoDone> = sim.completion(move |sim, d: Delivered<IoDone>| {
                let now = sim.now();
                let outcome = d.is_ok().then(|| now - issued);
                st2.borrow_mut().finish(now, idx, stream, is_read, outcome);
            });
            // A rejected submission drops the armed token, which cancels
            // it — the handler above counts that as an error.
            let _ = if is_read {
                stack.read_tagged(sim, dev, lba, sectors, stream, done)
            } else {
                let data = vec![fill_byte(idx); sectors as usize * SECTOR_SIZE];
                stack.write_tagged(sim, dev, lba, data, stream, done)
            };
        }
        TargetDrive::Fs {
            mounts,
            file_blocks,
        } => {
            let (fs, file) = &mounts[dev];
            let bytes = sectors as usize * SECTOR_SIZE;
            let blocks_needed = (bytes as u64).div_ceil(FS_BLOCK_SIZE as u64).max(1);
            // Map the sector address into the preallocated file,
            // block-aligned and clamped so the request always fits. The
            // file-system API carries no stream tag; per-stream lanes
            // are still tracked here at the replay layer.
            let block = (lba / (FS_BLOCK_SIZE / SECTOR_SIZE) as u64)
                % (file_blocks.saturating_sub(blocks_needed) + 1);
            let offset = block * FS_BLOCK_SIZE as u64;
            if is_read {
                let st2 = Rc::clone(st);
                let done = sim.completion(move |sim, d: Delivered<Result<Vec<u8>, FsError>>| {
                    let now = sim.now();
                    let outcome = matches!(d, Ok(Ok(_))).then(|| now - issued);
                    st2.borrow_mut().finish(now, idx, stream, is_read, outcome);
                });
                let _ = fs.read(sim, *file, offset, bytes, done);
            } else {
                let st2 = Rc::clone(st);
                let done = sim.completion(move |sim, d: Delivered<Result<(), FsError>>| {
                    let now = sim.now();
                    let outcome = matches!(d, Ok(Ok(()))).then(|| now - issued);
                    st2.borrow_mut().finish(now, idx, stream, is_read, outcome);
                });
                let data = vec![fill_byte(idx); bytes];
                let _ = fs.write(sim, *file, offset, data, true, done);
            }
        }
    }
}

fn schedule_sampler(sim: &mut Simulator, st: Rc<RefCell<State>>, every: SimDuration) {
    sim.schedule_in(every, move |sim| {
        let finished = {
            let mut s = st.borrow_mut();
            let depth = s.inflight;
            s.samples.push((sim.now(), depth));
            s.completed >= s.total
        };
        if !finished {
            schedule_sampler(sim, st, every);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, SyntheticSpec};

    fn small_trace() -> Trace {
        generate(&SyntheticSpec {
            requests: 40,
            read_fraction: 0.25,
            ..SyntheticSpec::default()
        })
    }

    #[test]
    fn replay_rejects_empty_traces() {
        assert!(matches!(
            replay(&Trace::default(), &ReplayOptions::default()),
            Err(ReplayError::EmptyTrace)
        ));
    }

    #[test]
    fn replay_standard_accounts_for_every_request() {
        let t = small_trace();
        let r = replay(&t, &ReplayOptions::default()).expect("replay");
        assert_eq!(r.requests, 40);
        assert_eq!(r.reads + r.writes, 40);
        assert_eq!(r.errors, 0);
        assert_eq!(r.latency.count(), 40);
        assert_eq!(r.per_request_ns.len(), 40);
        assert!(r.per_request_ns.iter().all(|&ns| ns != u64::MAX && ns > 0));
        assert!(r.max_queue_depth >= 1);
        assert!(!r.duration.is_zero());
    }

    #[test]
    fn trail_beats_standard_on_sync_write_latency() {
        let t = generate(&SyntheticSpec {
            requests: 60,
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let std_rep = replay(&t, &ReplayOptions::default()).expect("standard");
        let trail_rep = replay(
            &t,
            &ReplayOptions {
                target: TargetKind::Trail,
                ..ReplayOptions::default()
            },
        )
        .expect("trail");
        // The paper's headline: Trail's log-disk writes complete well
        // under the standard stack's seek+rotation writes.
        assert!(
            trail_rep.latency.mean() < std_rep.latency.mean(),
            "trail {:?} vs standard {:?}",
            trail_rep.latency.mean(),
            std_rep.latency.mean()
        );
    }

    #[test]
    fn speed_knob_compresses_arrivals() {
        let t = small_trace();
        let slow = replay(&t, &ReplayOptions::default()).expect("1x");
        let fast = replay(
            &t,
            &ReplayOptions {
                speed: 8.0,
                ..ReplayOptions::default()
            },
        )
        .expect("8x");
        assert!(fast.duration < slow.duration);
        // Out-of-range speeds clamp instead of erroring.
        let clamped = replay(
            &t,
            &ReplayOptions {
                speed: 1000.0,
                ..ReplayOptions::default()
            },
        )
        .expect("clamped");
        assert_eq!(clamped.speed, 8.0);
    }

    #[test]
    fn replay_is_deterministic() {
        let t = small_trace();
        let a = replay(&t, &ReplayOptions::default()).expect("a");
        let b = replay(&t, &ReplayOptions::default()).expect("b");
        assert_eq!(a.per_request_ns, b.per_request_ns);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
    }

    #[test]
    fn multi_log_target_replays() {
        let t = generate(&SyntheticSpec {
            requests: 30,
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let r = replay(
            &t,
            &ReplayOptions {
                target: TargetKind::TrailMulti { logs: 2 },
                ..ReplayOptions::default()
            },
        )
        .expect("multi");
        assert_eq!(r.errors, 0);
        assert_eq!(r.latency.count(), 30);
    }

    #[test]
    fn fs_targets_replay_reads_and_writes() {
        let t = generate(&SyntheticSpec {
            requests: 30,
            read_fraction: 0.4,
            ..SyntheticSpec::default()
        });
        for target in [
            TargetKind::Ext2 { trail: false },
            TargetKind::Lfs { trail: true },
        ] {
            let r = replay(
                &t,
                &ReplayOptions {
                    target,
                    fs_file_blocks: 256,
                    ..ReplayOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{target:?}: {e}"));
            assert_eq!(r.errors, 0, "{target:?}");
            assert_eq!(r.latency.count(), 30, "{target:?}");
        }
    }

    #[test]
    fn queue_depth_is_sampled() {
        let t = generate(&SyntheticSpec {
            requests: 50,
            arrivals: crate::gen::ArrivalModel::Bursty {
                burst: 10,
                iat_in_burst: SimDuration::from_micros(50),
                gap: SimDuration::from_millis(20),
            },
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let r = replay(
            &t,
            &ReplayOptions {
                sample_every: SimDuration::from_millis(1),
                ..ReplayOptions::default()
            },
        )
        .expect("replay");
        assert!(!r.queue_depth.is_empty());
        assert!(r.max_queue_depth > 1, "bursts should overlap service");
    }

    #[test]
    fn per_stream_lanes_partition_the_aggregate() {
        let t = generate(&SyntheticSpec {
            requests: 60,
            streams: 3,
            read_fraction: 0.3,
            ..SyntheticSpec::default()
        });
        let r = replay(&t, &ReplayOptions::default()).expect("replay");
        assert_eq!(r.streams.streams(), 3);
        let mut requests = 0;
        let mut lat_count = 0;
        for (_, lane) in r.streams.iter() {
            requests += lane.requests;
            lat_count += lane.latency.count();
        }
        assert_eq!(requests, r.requests);
        assert_eq!(lat_count, r.latency.count());
        let json = r.to_json().to_json();
        assert!(json.contains("\"streams\""), "streams section in JSON");
    }
}
