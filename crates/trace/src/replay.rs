//! Open-loop trace replay against any storage stack.
//!
//! The replay engine schedules every trace record at its recorded
//! arrival instant (optionally time-scaled) and lets completions land
//! whenever the stack delivers them — **open loop**: a slow stack does
//! not slow the arrival process down, it just builds queue depth. That
//! is the property that makes replay an apples-to-apples comparison:
//! the same offered load hits a raw C-LOOK stack, Trail, a multi-log
//! Trail array, or a file system, and the latency distributions and
//! queue-depth trajectories are directly comparable.
//!
//! ```
//! use trail_trace::{generate, replay, ReplayOptions, SyntheticSpec, TargetKind};
//!
//! let trace = generate(&SyntheticSpec {
//!     requests: 50,
//!     ..SyntheticSpec::default()
//! });
//! let report = replay(
//!     &trace,
//!     &ReplayOptions {
//!         target: TargetKind::Trail,
//!         ..ReplayOptions::default()
//!     },
//! )?;
//! assert_eq!(report.requests, 50);
//! # Ok::<(), trail_trace::ReplayError>(())
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use trail::{BuiltStack, StackBuilder};
use trail_blockio::{IoDone, TapHandle};
use trail_core::{format_log_disk, FormatOptions, MultiTrail, TrailConfig, TrailError};
use trail_db::BlockStack;
use trail_disk::{profiles, Disk, Lba, SECTOR_SIZE};
use trail_fs::{FileHandle, FileSystem, FsError, LfsConfig, FS_BLOCK_SIZE};
use trail_sim::{Completion, Delivered, SimDuration, SimTime, Simulator};
use trail_telemetry::{DurationHistogram, JsonValue, RecorderHandle};

use crate::format::Trace;

/// Which stack a trace is replayed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// The standard disk subsystem: per-disk C-LOOK drivers, no log.
    Standard,
    /// The Trail driver over one log disk (the paper's subsystem).
    Trail,
    /// A Trail array over several log disks (paper §6).
    TrailMulti {
        /// Number of log disks (at least 1).
        logs: usize,
    },
    /// An ext2-like file system per device.
    Ext2 {
        /// Mount over Trail (`true`) or the standard stack.
        trail: bool,
    },
    /// A log-structured file system per device.
    Lfs {
        /// Mount over Trail (`true`) or the standard stack.
        trail: bool,
    },
}

impl TargetKind {
    /// A short stable label (`"standard"`, `"trail"`, `"trail_multi2"`,
    /// `"ext2"`, `"ext2_trail"`, …) for reports and file names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TargetKind::Standard => "standard".to_string(),
            TargetKind::Trail => "trail".to_string(),
            TargetKind::TrailMulti { logs } => format!("trail_multi{logs}"),
            TargetKind::Ext2 { trail: false } => "ext2".to_string(),
            TargetKind::Ext2 { trail: true } => "ext2_trail".to_string(),
            TargetKind::Lfs { trail: false } => "lfs".to_string(),
            TargetKind::Lfs { trail: true } => "lfs_trail".to_string(),
        }
    }
}

/// How to replay.
#[derive(Clone)]
pub struct ReplayOptions {
    /// The stack to drive.
    pub target: TargetKind,
    /// Data disks to build; defaults to (and is raised to) the highest
    /// device index the trace addresses plus one.
    pub data_disks: Option<usize>,
    /// Time-scale knob: arrivals are compressed by this factor (2.0
    /// offers the load twice as fast). Clamped to `0.5..=8.0`; `1.0`
    /// replays at recorded speed.
    pub speed: f64,
    /// Queue-depth sampling period ([`SimDuration::ZERO`] disables
    /// sampling).
    pub sample_every: SimDuration,
    /// File size, in 4-KB blocks, of the per-device file that file-system
    /// targets replay into (raised to at least 64).
    pub fs_file_blocks: u32,
    /// Telemetry recorder installed on the stack (after setup, so the
    /// trace starts clean).
    pub recorder: Option<RecorderHandle>,
    /// Capture tap installed on the stack (after setup) — for recording
    /// what the replay itself submits, e.g. a capture→replay round trip.
    pub tap: Option<TapHandle>,
}

impl Default for ReplayOptions {
    /// Standard stack, recorded speed, 10-ms queue sampling, 4-MB files.
    fn default() -> Self {
        ReplayOptions {
            target: TargetKind::Standard,
            data_disks: None,
            speed: 1.0,
            sample_every: SimDuration::from_millis(10),
            fs_file_blocks: 1024,
            recorder: None,
            tap: None,
        }
    }
}

/// Why a replay could not run.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace holds no records.
    EmptyTrace,
    /// Building the stack failed.
    Build(TrailError),
    /// Mounting or preparing a file-system target failed.
    Fs(FsError),
    /// Preallocating the replay file did not complete.
    Prealloc(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyTrace => write!(f, "cannot replay an empty trace"),
            ReplayError::Build(e) => write!(f, "building the target stack failed: {e:?}"),
            ReplayError::Fs(e) => write!(f, "preparing the file-system target failed: {e:?}"),
            ReplayError::Prealloc(why) => write!(f, "preallocating the replay file failed: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// What a replay measured.
pub struct ReplayReport {
    /// The target's [`TargetKind::label`].
    pub target: String,
    /// The effective (clamped) time-scale factor.
    pub speed: f64,
    /// Requests issued.
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Requests that errored or were cancelled (these carry
    /// `u64::MAX` in [`ReplayReport::per_request_ns`] and are excluded
    /// from the histograms).
    pub errors: u64,
    /// Simulator instant the first arrival was anchored to; subtracting
    /// it from a capture of this replay recovers the input trace's
    /// timeline.
    pub started_at: SimTime,
    /// Virtual time from the anchor to the last completion.
    pub duration: SimDuration,
    /// End-to-end latency over all successful requests.
    pub latency: DurationHistogram,
    /// Latency over successful reads.
    pub read_latency: DurationHistogram,
    /// Latency over successful writes.
    pub write_latency: DurationHistogram,
    /// Per-record latency in nanoseconds, indexed like the trace's
    /// records (`u64::MAX` for errors) — the byte-comparable
    /// determinism witness.
    pub per_request_ns: Vec<u64>,
    /// Highest concurrent in-flight count observed.
    pub max_queue_depth: u32,
    /// Sampled `(instant, in-flight)` pairs, every
    /// [`ReplayOptions::sample_every`].
    pub queue_depth: Vec<(SimTime, u32)>,
}

impl ReplayReport {
    /// The report as a JSON object (histograms include `p50_ms`,
    /// `p99_ms`, `p999_ms`; queue-depth samples as `[ms, depth]`
    /// pairs). Everything in it is virtual-time-derived, so a fixed
    /// trace and options produce identical JSON on every run.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("target", JsonValue::str(self.target.clone())),
            ("speed", JsonValue::Num(self.speed)),
            ("requests", JsonValue::Num(self.requests as f64)),
            ("reads", JsonValue::Num(self.reads as f64)),
            ("writes", JsonValue::Num(self.writes as f64)),
            ("errors", JsonValue::Num(self.errors as f64)),
            ("duration_ms", JsonValue::Num(self.duration.as_millis_f64())),
            ("latency", self.latency.to_json()),
            ("read_latency", self.read_latency.to_json()),
            ("write_latency", self.write_latency.to_json()),
            (
                "max_queue_depth",
                JsonValue::Num(f64::from(self.max_queue_depth)),
            ),
            (
                "queue_depth",
                JsonValue::Arr(
                    self.queue_depth
                        .iter()
                        .map(|(at, depth)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(
                                    at.saturating_duration_since(self.started_at)
                                        .as_millis_f64(),
                                ),
                                JsonValue::Num(f64::from(*depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Shared mutable replay accounting.
struct State {
    total: usize,
    completed: usize,
    reads: u64,
    writes: u64,
    errors: u64,
    inflight: u32,
    max_inflight: u32,
    latency: DurationHistogram,
    read_latency: DurationHistogram,
    write_latency: DurationHistogram,
    per_request_ns: Vec<u64>,
    samples: Vec<(SimTime, u32)>,
    last_done: SimTime,
}

impl State {
    fn finish(&mut self, at: SimTime, idx: usize, is_read: bool, outcome: Option<SimDuration>) {
        self.inflight -= 1;
        self.completed += 1;
        self.last_done = self.last_done.max(at);
        match outcome {
            Some(lat) => {
                self.latency.record(lat);
                if is_read {
                    self.read_latency.record(lat);
                } else {
                    self.write_latency.record(lat);
                }
                self.per_request_ns[idx] = lat.as_nanos();
            }
            None => {
                self.errors += 1;
                self.per_request_ns[idx] = u64::MAX;
            }
        }
    }
}

/// The two shapes a target can take once built.
enum Driveable {
    /// Submit straight to a block stack; `usable[dev]` is the largest
    /// admissible starting LBA headroom (capacity − request length).
    Block {
        stack: Rc<dyn BlockStack>,
        capacity: Vec<u64>,
    },
    /// Submit through one mounted file system (and preallocated file)
    /// per device.
    Fs {
        mounts: Vec<(Rc<dyn FileSystem>, FileHandle)>,
        file_blocks: u64,
    },
}

/// Replays `trace` against the target `opts` describes; see the module
/// docs for the open-loop semantics.
///
/// # Errors
///
/// [`ReplayError`] when the trace is empty or the target cannot be
/// built/prepared. Individual request failures during the replay do
/// *not* error — they are counted in [`ReplayReport::errors`].
///
/// # Panics
///
/// Panics if the simulation stalls (event queue drained with requests
/// outstanding) — a driver bug, not a workload condition.
pub fn replay(trace: &Trace, opts: &ReplayOptions) -> Result<ReplayReport, ReplayError> {
    if trace.is_empty() {
        return Err(ReplayError::EmptyTrace);
    }
    let speed = opts.speed.clamp(0.5, 8.0);
    let trace_devs = usize::from(trace.max_dev().unwrap_or(0)) + 1;
    let ndisks = opts.data_disks.unwrap_or(0).max(trace_devs);
    let (mut sim, driveable, stack_for_hooks) = build_target(opts, ndisks)?;
    if let Some(recorder) = &opts.recorder {
        stack_for_hooks.set_recorder(Rc::clone(recorder));
    }
    if let Some(tap) = &opts.tap {
        stack_for_hooks.set_tap(Rc::clone(tap));
    }
    let driveable = Rc::new(driveable);
    let start = sim.now();
    let state = Rc::new(RefCell::new(State {
        total: trace.len(),
        completed: 0,
        reads: 0,
        writes: 0,
        errors: 0,
        inflight: 0,
        max_inflight: 0,
        latency: DurationHistogram::new(),
        read_latency: DurationHistogram::new(),
        write_latency: DurationHistogram::new(),
        per_request_ns: vec![0; trace.len()],
        samples: Vec::new(),
        last_done: start,
    }));

    for (idx, r) in trace.records.iter().enumerate() {
        let arrival = start + SimDuration::from_nanos(scale_ns(r.at.as_nanos(), speed));
        let (dev, lba, sectors, is_read) = (usize::from(r.dev), r.lba, r.sectors, r.op.is_read());
        let drv = Rc::clone(&driveable);
        let st = Rc::clone(&state);
        sim.schedule_at(
            arrival,
            Box::new(move |sim| {
                {
                    let mut s = st.borrow_mut();
                    s.inflight += 1;
                    s.max_inflight = s.max_inflight.max(s.inflight);
                    if is_read {
                        s.reads += 1;
                    } else {
                        s.writes += 1;
                    }
                }
                submit(sim, &drv, &st, idx, dev, lba, sectors, is_read);
            }),
        );
    }

    if !opts.sample_every.is_zero() {
        schedule_sampler(&mut sim, Rc::clone(&state), opts.sample_every);
    }

    while state.borrow().completed < state.borrow().total {
        assert!(
            sim.step(),
            "replay stalled: event queue drained with {} of {} requests outstanding",
            state.borrow().total - state.borrow().completed,
            state.borrow().total
        );
    }

    let state = Rc::try_unwrap(state)
        .unwrap_or_else(|still_shared| {
            // The sampler may still hold a clone; deep-copy out of it.
            let s = still_shared.borrow();
            RefCell::new(State {
                total: s.total,
                completed: s.completed,
                reads: s.reads,
                writes: s.writes,
                errors: s.errors,
                inflight: s.inflight,
                max_inflight: s.max_inflight,
                latency: s.latency.clone(),
                read_latency: s.read_latency.clone(),
                write_latency: s.write_latency.clone(),
                per_request_ns: s.per_request_ns.clone(),
                samples: s.samples.clone(),
                last_done: s.last_done,
            })
        })
        .into_inner();
    Ok(ReplayReport {
        target: opts.target.label(),
        speed,
        requests: state.total as u64,
        reads: state.reads,
        writes: state.writes,
        errors: state.errors,
        started_at: start,
        duration: state.last_done.saturating_duration_since(start),
        latency: state.latency,
        read_latency: state.read_latency,
        write_latency: state.write_latency,
        per_request_ns: state.per_request_ns,
        max_queue_depth: state.max_inflight,
        queue_depth: state.samples,
    })
}

/// Time-scales a relative arrival; exactly the identity at 1×.
fn scale_ns(ns: u64, speed: f64) -> u64 {
    if speed == 1.0 {
        ns
    } else {
        (ns as f64 / speed) as u64
    }
}

/// Deterministic payload byte for record `idx`.
fn fill_byte(idx: usize) -> u8 {
    (idx as u8).wrapping_mul(31) ^ 0xA5
}

#[allow(clippy::too_many_arguments)]
fn submit(
    sim: &mut Simulator,
    drv: &Rc<Driveable>,
    st: &Rc<RefCell<State>>,
    idx: usize,
    dev: usize,
    lba: Lba,
    sectors: u32,
    is_read: bool,
) {
    let issued = sim.now();
    match &**drv {
        Driveable::Block { stack, capacity } => {
            let headroom = capacity[dev].saturating_sub(u64::from(sectors)) + 1;
            let lba = lba % headroom;
            let st2 = Rc::clone(st);
            let done: Completion<IoDone> = sim.completion(move |sim, d: Delivered<IoDone>| {
                let now = sim.now();
                let outcome = d.is_ok().then(|| now - issued);
                st2.borrow_mut().finish(now, idx, is_read, outcome);
            });
            // A rejected submission drops the armed token, which cancels
            // it — the handler above counts that as an error.
            let _ = if is_read {
                stack.read(sim, dev, lba, sectors, done)
            } else {
                let data = vec![fill_byte(idx); sectors as usize * SECTOR_SIZE];
                stack.write(sim, dev, lba, data, done)
            };
        }
        Driveable::Fs {
            mounts,
            file_blocks,
        } => {
            let (fs, file) = &mounts[dev];
            let bytes = sectors as usize * SECTOR_SIZE;
            let blocks_needed = (bytes as u64).div_ceil(FS_BLOCK_SIZE as u64).max(1);
            // Map the sector address into the preallocated file,
            // block-aligned and clamped so the request always fits.
            let block = (lba / (FS_BLOCK_SIZE / SECTOR_SIZE) as u64)
                % (file_blocks.saturating_sub(blocks_needed) + 1);
            let offset = block * FS_BLOCK_SIZE as u64;
            if is_read {
                let st2 = Rc::clone(st);
                let done = sim.completion(move |sim, d: Delivered<Result<Vec<u8>, FsError>>| {
                    let now = sim.now();
                    let outcome = matches!(d, Ok(Ok(_))).then(|| now - issued);
                    st2.borrow_mut().finish(now, idx, is_read, outcome);
                });
                let _ = fs.read(sim, *file, offset, bytes, done);
            } else {
                let st2 = Rc::clone(st);
                let done = sim.completion(move |sim, d: Delivered<Result<(), FsError>>| {
                    let now = sim.now();
                    let outcome = matches!(d, Ok(Ok(()))).then(|| now - issued);
                    st2.borrow_mut().finish(now, idx, is_read, outcome);
                });
                let data = vec![fill_byte(idx); bytes];
                let _ = fs.write(sim, *file, offset, data, true, done);
            }
        }
    }
}

fn schedule_sampler(sim: &mut Simulator, st: Rc<RefCell<State>>, every: SimDuration) {
    sim.schedule_in(
        every,
        Box::new(move |sim| {
            let finished = {
                let mut s = st.borrow_mut();
                let depth = s.inflight;
                s.samples.push((sim.now(), depth));
                s.completed >= s.total
            };
            if !finished {
                schedule_sampler(sim, st, every);
            }
        }),
    );
}

/// Builds the target stack (and mounts/preallocates for file-system
/// targets), returning the simulator, the driveable form, and the block
/// stack underneath (for recorder/tap installation).
fn build_target(
    opts: &ReplayOptions,
    ndisks: usize,
) -> Result<(Simulator, Driveable, Rc<dyn BlockStack>), ReplayError> {
    let file_blocks = opts.fs_file_blocks.max(64);
    match opts.target {
        TargetKind::Standard | TargetKind::Trail => {
            let builder = StackBuilder::new().data_disks(ndisks);
            let builder = if opts.target == TargetKind::Trail {
                builder.trail_default()
            } else {
                builder.standard()
            };
            let built = builder.build().map_err(ReplayError::Build)?;
            let capacity = built
                .data_disks
                .iter()
                .map(|d| d.geometry().total_sectors())
                .collect();
            let BuiltStack { sim, stack, .. } = built;
            Ok((
                sim,
                Driveable::Block {
                    stack: Rc::clone(&stack),
                    capacity,
                },
                stack,
            ))
        }
        TargetKind::TrailMulti { logs } => {
            let mut sim = Simulator::new();
            let data: Vec<Disk> = (0..ndisks)
                .map(|i| Disk::new(format!("data{i}"), profiles::wd_caviar_10gb()))
                .collect();
            let log_disks: Vec<Disk> = (0..logs.max(1))
                .map(|i| Disk::new(format!("log{i}"), profiles::seagate_st41601n()))
                .collect();
            for log in &log_disks {
                format_log_disk(&mut sim, log, FormatOptions::default())
                    .map_err(ReplayError::Build)?;
            }
            let (multi, _) =
                MultiTrail::start(&mut sim, log_disks, data.clone(), TrailConfig::default())
                    .map_err(ReplayError::Build)?;
            for d in &data {
                d.reset_stats();
            }
            let capacity = data.iter().map(|d| d.geometry().total_sectors()).collect();
            let stack: Rc<dyn BlockStack> = Rc::new(MultiStack {
                multi,
                devices: ndisks,
            });
            Ok((
                sim,
                Driveable::Block {
                    stack: Rc::clone(&stack),
                    capacity,
                },
                stack,
            ))
        }
        TargetKind::Ext2 { trail } | TargetKind::Lfs { trail } => {
            let builder = StackBuilder::new().data_disks(ndisks);
            let builder = if trail {
                builder.trail_default()
            } else {
                builder.standard()
            };
            let mut built = builder.build().map_err(ReplayError::Build)?;
            let mut mounts = Vec::with_capacity(ndisks);
            for dev in 0..ndisks {
                let fs: Rc<dyn FileSystem> = match opts.target {
                    TargetKind::Ext2 { .. } => Rc::new(
                        built
                            .extfs(dev, file_blocks + 256)
                            .map_err(ReplayError::Fs)?,
                    ),
                    _ => Rc::new(built.lfs(dev, LfsConfig::default())),
                };
                let file = fs.create("replay").map_err(ReplayError::Fs)?;
                prealloc(&mut built.sim, &fs, file, file_blocks)?;
                mounts.push((fs, file));
            }
            let BuiltStack { sim, stack, .. } = built;
            Ok((
                sim,
                Driveable::Fs {
                    mounts,
                    file_blocks: u64::from(file_blocks),
                },
                stack,
            ))
        }
    }
}

/// Synchronously writes the whole replay file once so later reads and
/// overwrites land on allocated, on-disk blocks.
fn prealloc(
    sim: &mut Simulator,
    fs: &Rc<dyn FileSystem>,
    file: FileHandle,
    blocks: u32,
) -> Result<(), ReplayError> {
    let outcome: Rc<Cell<Option<bool>>> = Rc::new(Cell::new(None));
    let seen = Rc::clone(&outcome);
    let done = sim.completion(move |_, d: Delivered<Result<(), FsError>>| {
        seen.set(Some(matches!(d, Ok(Ok(())))));
    });
    fs.write(
        sim,
        file,
        0,
        vec![0u8; blocks as usize * FS_BLOCK_SIZE],
        true,
        done,
    )
    .map_err(ReplayError::Fs)?;
    while outcome.get().is_none() {
        if !sim.step() {
            return Err(ReplayError::Prealloc("simulation stalled".to_string()));
        }
    }
    if outcome.get() != Some(true) {
        return Err(ReplayError::Prealloc(
            "preallocation write failed".to_string(),
        ));
    }
    while fs.pending_work() > 0 {
        if !sim.step() {
            return Err(ReplayError::Prealloc("drain stalled".to_string()));
        }
    }
    Ok(())
}

/// [`MultiTrail`] behind the [`BlockStack`] interface so replay treats
/// the array like any other stack.
struct MultiStack {
    multi: MultiTrail,
    devices: usize,
}

impl BlockStack for MultiStack {
    fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.multi.write(sim, dev, lba, data, done)
    }

    fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.multi.read(sim, dev, lba, count, done)
    }

    fn pending_work(&self) -> usize {
        self.multi.pending_work()
    }

    fn devices(&self) -> usize {
        self.devices
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        self.multi.set_recorder(recorder);
    }

    fn set_tap(&self, tap: TapHandle) {
        self.multi.set_tap(tap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, SyntheticSpec};

    fn small_trace() -> Trace {
        generate(&SyntheticSpec {
            requests: 40,
            read_fraction: 0.25,
            ..SyntheticSpec::default()
        })
    }

    #[test]
    fn replay_rejects_empty_traces() {
        assert!(matches!(
            replay(&Trace::default(), &ReplayOptions::default()),
            Err(ReplayError::EmptyTrace)
        ));
    }

    #[test]
    fn replay_standard_accounts_for_every_request() {
        let t = small_trace();
        let r = replay(&t, &ReplayOptions::default()).expect("replay");
        assert_eq!(r.requests, 40);
        assert_eq!(r.reads + r.writes, 40);
        assert_eq!(r.errors, 0);
        assert_eq!(r.latency.count(), 40);
        assert_eq!(r.per_request_ns.len(), 40);
        assert!(r.per_request_ns.iter().all(|&ns| ns != u64::MAX && ns > 0));
        assert!(r.max_queue_depth >= 1);
        assert!(!r.duration.is_zero());
    }

    #[test]
    fn trail_beats_standard_on_sync_write_latency() {
        let t = generate(&SyntheticSpec {
            requests: 60,
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let std_rep = replay(&t, &ReplayOptions::default()).expect("standard");
        let trail_rep = replay(
            &t,
            &ReplayOptions {
                target: TargetKind::Trail,
                ..ReplayOptions::default()
            },
        )
        .expect("trail");
        // The paper's headline: Trail's log-disk writes complete well
        // under the standard stack's seek+rotation writes.
        assert!(
            trail_rep.latency.mean() < std_rep.latency.mean(),
            "trail {:?} vs standard {:?}",
            trail_rep.latency.mean(),
            std_rep.latency.mean()
        );
    }

    #[test]
    fn speed_knob_compresses_arrivals() {
        let t = small_trace();
        let slow = replay(&t, &ReplayOptions::default()).expect("1x");
        let fast = replay(
            &t,
            &ReplayOptions {
                speed: 8.0,
                ..ReplayOptions::default()
            },
        )
        .expect("8x");
        assert!(fast.duration < slow.duration);
        // Out-of-range speeds clamp instead of erroring.
        let clamped = replay(
            &t,
            &ReplayOptions {
                speed: 1000.0,
                ..ReplayOptions::default()
            },
        )
        .expect("clamped");
        assert_eq!(clamped.speed, 8.0);
    }

    #[test]
    fn replay_is_deterministic() {
        let t = small_trace();
        let a = replay(&t, &ReplayOptions::default()).expect("a");
        let b = replay(&t, &ReplayOptions::default()).expect("b");
        assert_eq!(a.per_request_ns, b.per_request_ns);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
    }

    #[test]
    fn multi_log_target_replays() {
        let t = generate(&SyntheticSpec {
            requests: 30,
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let r = replay(
            &t,
            &ReplayOptions {
                target: TargetKind::TrailMulti { logs: 2 },
                ..ReplayOptions::default()
            },
        )
        .expect("multi");
        assert_eq!(r.errors, 0);
        assert_eq!(r.latency.count(), 30);
    }

    #[test]
    fn fs_targets_replay_reads_and_writes() {
        let t = generate(&SyntheticSpec {
            requests: 30,
            read_fraction: 0.4,
            ..SyntheticSpec::default()
        });
        for target in [
            TargetKind::Ext2 { trail: false },
            TargetKind::Lfs { trail: true },
        ] {
            let r = replay(
                &t,
                &ReplayOptions {
                    target,
                    fs_file_blocks: 256,
                    ..ReplayOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{target:?}: {e}"));
            assert_eq!(r.errors, 0, "{target:?}");
            assert_eq!(r.latency.count(), 30, "{target:?}");
        }
    }

    #[test]
    fn queue_depth_is_sampled() {
        let t = generate(&SyntheticSpec {
            requests: 50,
            arrivals: crate::gen::ArrivalModel::Bursty {
                burst: 10,
                iat_in_burst: SimDuration::from_micros(50),
                gap: SimDuration::from_millis(20),
            },
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        let r = replay(
            &t,
            &ReplayOptions {
                sample_every: SimDuration::from_millis(1),
                ..ReplayOptions::default()
            },
        )
        .expect("replay");
        assert!(!r.queue_depth.is_empty());
        assert!(r.max_queue_depth > 1, "bursts should overlap service");
    }
}
