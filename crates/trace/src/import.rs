//! Importing `blkparse` text output as a [`Trace`].
//!
//! `blktrace` is the Linux block-layer tracer; `blkparse` renders its
//! binary event stream one event per line:
//!
//! ```text
//! 8,0    1      203     0.013088281  1234  Q  WS 7864447 + 8 [postgres]
//! ```
//!
//! columns: device `major,minor`, CPU, sequence, timestamp (seconds),
//! PID, action, RWBS flags, start sector, `+`, length in sectors, and
//! optionally the process name. [`import_blkparse`] turns that text
//! into a trace:
//!
//! - only lines whose action matches [`ImportOptions::action`] are kept
//!   (default `Q`, the *queued* event — the offered load, which is what
//!   open-loop replay wants);
//! - the `major,minor` pair is densely renumbered (first appearance →
//!   device 0, next distinct pair → 1, …) so the trace addresses the
//!   stack-level device space;
//! - the **CPU column becomes the stream tag**, offset by one (CPU *k*
//!   → stream *k + 1*) because stream 0 is reserved for "source did not
//!   distinguish streams" — a single-CPU trace still names one real
//!   stream;
//! - RWBS flags classify direction (`W` → write, else `R`/`A` → read);
//!   flag-only events (flush/barrier) are skipped;
//! - the result is normalized: sorted by `(arrival, stream)` and
//!   rebased so the first kept event arrives at time zero.
//!
//! Non-event lines (the per-CPU and total summary blocks `blkparse`
//! appends, blank lines) are skipped by shape: an event line starts
//! with a `major,minor` token. A line that starts like an event but
//! cannot be parsed is an error naming the line, not a silent skip.

use std::collections::HashMap;
use std::fmt;

use trail_sim::SimTime;
use trail_telemetry::StreamId;

use crate::format::{Trace, TraceMeta, TraceOp, TraceRecord};

/// How to interpret `blkparse` text.
#[derive(Clone, Copy, Debug)]
pub struct ImportOptions {
    /// Which trace action to keep (`'Q'` queued, `'D'` dispatched,
    /// `'C'` completed, …). One event per request: pick the lifecycle
    /// point you want to replay.
    pub action: char,
}

impl Default for ImportOptions {
    /// Keep `Q` (queue-insertion) events — the offered load.
    fn default() -> Self {
        ImportOptions { action: 'Q' }
    }
}

/// Why an import failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImportError {
    /// An event-shaped line could not be parsed.
    Line {
        /// One-based line number in the input.
        number: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// No event matched the options (wrong action letter, or not
    /// `blkparse` output at all).
    NoRecords,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Line { number, reason } => {
                write!(f, "blkparse line {number}: {reason}")
            }
            ImportError::NoRecords => write!(f, "no matching events in blkparse input"),
        }
    }
}

impl std::error::Error for ImportError {}

/// `true` when `token` has the `major,minor` shape that opens an event
/// line.
fn is_dev_token(token: &str) -> bool {
    match token.split_once(',') {
        Some((maj, min)) => {
            !maj.is_empty()
                && !min.is_empty()
                && maj.bytes().all(|b| b.is_ascii_digit())
                && min.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Parses `blkparse` one-line-per-event text into a trace; see the
/// module docs for the column mapping.
///
/// # Errors
///
/// [`ImportError::Line`] for a malformed event line,
/// [`ImportError::NoRecords`] when nothing matched.
pub fn import_blkparse(text: &str, opts: &ImportOptions) -> Result<Trace, ImportError> {
    let mut dev_index: HashMap<(u32, u32), u16> = HashMap::new();
    let mut records = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let number = number + 1;
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first() {
            Some(first) if is_dev_token(first) => {}
            _ => continue, // summary block, header, or blank line
        }
        let bad = |reason: String| ImportError::Line { number, reason };
        if fields.len() < 9 {
            return Err(bad(format!(
                "expected at least 9 columns, found {}",
                fields.len()
            )));
        }
        let (maj, min) = fields[0].split_once(',').expect("dev token shape");
        let maj: u32 = maj.parse().map_err(|_| bad("bad major number".into()))?;
        let min: u32 = min.parse().map_err(|_| bad("bad minor number".into()))?;
        let cpu: u32 = fields[1]
            .parse()
            .map_err(|_| bad(format!("bad CPU column {:?}", fields[1])))?;
        let seconds: f64 = fields[3]
            .parse()
            .map_err(|_| bad(format!("bad timestamp {:?}", fields[3])))?;
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(bad(format!("bad timestamp {seconds}")));
        }
        let action = fields[5];
        // Multi-character actions (e.g. "UT") and non-matching single
        // ones are other lifecycle events of the same request; skip.
        if action.len() != 1 || !action.starts_with(opts.action) {
            continue;
        }
        let rwbs = fields[6];
        let op = if rwbs.contains('W') {
            TraceOp::Write
        } else if rwbs.contains('R') || rwbs.contains('A') {
            TraceOp::Read
        } else {
            continue; // flush/barrier/discard-only event
        };
        let lba: u64 = fields[7]
            .parse()
            .map_err(|_| bad(format!("bad sector {:?}", fields[7])))?;
        if fields[8] != "+" {
            return Err(bad(format!("expected '+', found {:?}", fields[8])));
        }
        let sectors: u32 = fields
            .get(9)
            .ok_or_else(|| bad("missing sector count".into()))?
            .parse()
            .map_err(|_| bad(format!("bad sector count {:?}", fields[9])))?;
        if sectors == 0 {
            continue; // zero-length marker event
        }
        let next = dev_index.len() as u16;
        let dev = *dev_index.entry((maj, min)).or_insert(next);
        records.push(TraceRecord {
            at: SimTime::from_nanos((seconds * 1e9).round() as u64),
            op,
            dev,
            lba,
            sectors,
            stream: StreamId(cpu + 1),
        });
    }
    if records.is_empty() {
        return Err(ImportError::NoRecords);
    }
    let devices = dev_index.len() as u16;
    let mut trace = Trace {
        meta: TraceMeta {
            source: "import:blkparse".to_string(),
            seed: 0,
            devices,
            note: format!("action '{}'", opts.action),
        },
        records,
    };
    trace.normalize();
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_sim::SimDuration;

    const SAMPLE: &str = "\
8,0    0        1     0.000000000  4162  Q  WS 7864447 + 8 [fio]
8,0    0        2     0.000001000  4162  G  WS 7864447 + 8 [fio]
8,0    1        3     0.000501000  4163  Q   R 1048576 + 32 [fio]
8,16   0        4     0.001000000  4162  Q   W 2048 + 16 [fio]
8,0    1        5     0.001200000  4163  C   R 1048576 + 32 [0]
CPU0 (sda):
 Reads Queued:           0,        0KiB\t Writes Queued:           2,        8KiB
Total (sda):
 Reads Queued:           1,       16KiB\t Writes Queued:           2,       12KiB
";

    #[test]
    fn import_keeps_q_events_and_maps_columns() {
        let t = import_blkparse(SAMPLE, &ImportOptions::default()).expect("import");
        assert_eq!(t.len(), 3, "only the three Q events");
        assert_eq!(t.meta.source, "import:blkparse");
        assert_eq!(t.meta.devices, 2, "8,0 and 8,16 densely renumbered");
        assert!(t.validate().is_ok(), "normalized on import");
        // First kept event rebased to zero.
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[0].op, TraceOp::Write);
        assert_eq!(t.records[0].dev, 0);
        assert_eq!(t.records[0].lba, 7_864_447);
        assert_eq!(t.records[0].sectors, 8);
        // CPU k -> stream k+1.
        assert_eq!(t.records[0].stream, StreamId(1));
        assert_eq!(t.records[1].stream, StreamId(2));
        assert_eq!(t.records[1].op, TraceOp::Read);
        // 0.000501s after the first event.
        assert_eq!(
            t.records[1].at,
            SimTime::ZERO + SimDuration::from_nanos(501_000)
        );
        // The second device appears as index 1.
        assert_eq!(t.records[2].dev, 1);
        assert_eq!(t.records[2].lba, 2048);
    }

    #[test]
    fn action_filter_selects_other_lifecycle_points() {
        let t = import_blkparse(SAMPLE, &ImportOptions { action: 'C' }).expect("import");
        assert_eq!(t.len(), 1);
        assert_eq!(t.records[0].op, TraceOp::Read);
        assert_eq!(t.records[0].sectors, 32);
    }

    #[test]
    fn malformed_event_line_is_an_error_with_its_line_number() {
        let text = "8,0 0 1 0.0 99 Q W not-a-sector + 8 [x]\n";
        match import_blkparse(text, &ImportOptions::default()) {
            Err(ImportError::Line { number: 1, reason }) => {
                assert!(reason.contains("sector"), "{reason}");
            }
            other => panic!("expected a line error, got {other:?}"),
        }
    }

    #[test]
    fn non_event_text_is_no_records_not_an_error() {
        assert_eq!(
            import_blkparse("hello\nworld\n", &ImportOptions::default()),
            Err(ImportError::NoRecords)
        );
    }
}
