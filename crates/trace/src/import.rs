//! Importing `blkparse` text output as a [`Trace`].
//!
//! `blktrace` is the Linux block-layer tracer; `blkparse` renders its
//! binary event stream one event per line:
//!
//! ```text
//! 8,0    1      203     0.013088281  1234  Q  WS 7864447 + 8 [postgres]
//! ```
//!
//! columns: device `major,minor`, CPU, sequence, timestamp (seconds),
//! PID, action, RWBS flags, start sector, `+`, length in sectors, and
//! optionally the process name. [`import_blkparse`] turns that text
//! into a trace:
//!
//! - only lines whose action matches [`ImportOptions::action`] are kept
//!   (default `Q`, the *queued* event — the offered load, which is what
//!   open-loop replay wants);
//! - the `major,minor` pair is densely renumbered (first appearance →
//!   device 0, next distinct pair → 1, …) so the trace addresses the
//!   stack-level device space;
//! - the **CPU column becomes the stream tag**, offset by one (CPU *k*
//!   → stream *k + 1*) because stream 0 is reserved for "source did not
//!   distinguish streams" — a single-CPU trace still names one real
//!   stream;
//! - RWBS flags classify direction (`W` → write, else `R`/`A` → read);
//!   flag-only events (flush/barrier) are skipped;
//! - the result is normalized: sorted by `(arrival, stream)` and
//!   rebased so the first kept event arrives at time zero.
//!
//! Non-event lines (the per-CPU and total summary blocks `blkparse`
//! appends, blank lines) are skipped by shape: an event line starts
//! with a `major,minor` token. A line that starts like an event but
//! cannot be parsed is an error naming the line, not a silent skip.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::io::{BufRead, Write};

use trail_sim::SimTime;
use trail_telemetry::StreamId;

use crate::codec::TraceWriter;
use crate::format::{ChunkEncoding, Trace, TraceMeta, TraceOp, TraceRecord};

/// Default bounded-reorder window (records held back to re-sort nearly
/// sorted input) for [`import_blkparse_into`] when the caller passes 0.
pub const DEFAULT_REORDER_WINDOW: usize = 1 << 16;

/// How to interpret `blkparse` text.
#[derive(Clone, Copy, Debug)]
pub struct ImportOptions {
    /// Which trace action to keep (`'Q'` queued, `'D'` dispatched,
    /// `'C'` completed, …). One event per request: pick the lifecycle
    /// point you want to replay.
    pub action: char,
}

impl Default for ImportOptions {
    /// Keep `Q` (queue-insertion) events — the offered load.
    fn default() -> Self {
        ImportOptions { action: 'Q' }
    }
}

/// Why an import failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImportError {
    /// An event-shaped line could not be parsed.
    Line {
        /// One-based line number in the input.
        number: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// No event matched the options (wrong action letter, or not
    /// `blkparse` output at all).
    NoRecords,
    /// The input's timestamp disorder exceeded the bounded reorder
    /// window, so a streaming import could not reproduce the fully
    /// sorted trace.
    OutOfOrder {
        /// The window that was in effect.
        window: usize,
    },
    /// Reading the input or writing the trace failed.
    Io(String),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Line { number, reason } => {
                write!(f, "blkparse line {number}: {reason}")
            }
            ImportError::NoRecords => write!(f, "no matching events in blkparse input"),
            ImportError::OutOfOrder { window } => write!(
                f,
                "input disorder exceeds the reorder window of {window} records; \
                 raise the window"
            ),
            ImportError::Io(why) => write!(f, "blkparse import io error: {why}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// `true` when `token` has the `major,minor` shape that opens an event
/// line.
fn is_dev_token(token: &str) -> bool {
    match token.split_once(',') {
        Some((maj, min)) => {
            !maj.is_empty()
                && !min.is_empty()
                && maj.bytes().all(|b| b.is_ascii_digit())
                && min.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// One kept `blkparse` event, before device renumbering and rebasing.
struct Event {
    dev_key: (u32, u32),
    cpu: u32,
    at_ns: u64,
    op: TraceOp,
    lba: u64,
    sectors: u32,
}

/// Parses one `blkparse` line. `Ok(None)` means the line was skipped
/// (summary/blank, another lifecycle action, or a data-less event);
/// both import passes share this so they classify identically.
fn parse_event(number: usize, line: &str, action: char) -> Result<Option<Event>, ImportError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.first() {
        Some(first) if is_dev_token(first) => {}
        _ => return Ok(None), // summary block, header, or blank line
    }
    let bad = |reason: String| ImportError::Line { number, reason };
    if fields.len() < 9 {
        return Err(bad(format!(
            "expected at least 9 columns, found {}",
            fields.len()
        )));
    }
    let (maj, min) = fields[0].split_once(',').expect("dev token shape");
    let maj: u32 = maj.parse().map_err(|_| bad("bad major number".into()))?;
    let min: u32 = min.parse().map_err(|_| bad("bad minor number".into()))?;
    let cpu: u32 = fields[1]
        .parse()
        .map_err(|_| bad(format!("bad CPU column {:?}", fields[1])))?;
    let seconds: f64 = fields[3]
        .parse()
        .map_err(|_| bad(format!("bad timestamp {:?}", fields[3])))?;
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(bad(format!("bad timestamp {seconds}")));
    }
    let event_action = fields[5];
    // Multi-character actions (e.g. "UT") and non-matching single
    // ones are other lifecycle events of the same request; skip.
    if event_action.len() != 1 || !event_action.starts_with(action) {
        return Ok(None);
    }
    let rwbs = fields[6];
    let op = if rwbs.contains('W') {
        TraceOp::Write
    } else if rwbs.contains('R') || rwbs.contains('A') {
        TraceOp::Read
    } else {
        return Ok(None); // flush/barrier/discard-only event
    };
    let lba: u64 = fields[7]
        .parse()
        .map_err(|_| bad(format!("bad sector {:?}", fields[7])))?;
    if fields[8] != "+" {
        return Err(bad(format!("expected '+', found {:?}", fields[8])));
    }
    let sectors: u32 = fields
        .get(9)
        .ok_or_else(|| bad("missing sector count".into()))?
        .parse()
        .map_err(|_| bad(format!("bad sector count {:?}", fields[9])))?;
    if sectors == 0 {
        return Ok(None); // zero-length marker event
    }
    Ok(Some(Event {
        dev_key: (maj, min),
        cpu,
        at_ns: (seconds * 1e9).round() as u64,
        op,
        lba,
        sectors,
    }))
}

/// Parses `blkparse` one-line-per-event text into a trace; see the
/// module docs for the column mapping.
///
/// # Errors
///
/// [`ImportError::Line`] for a malformed event line,
/// [`ImportError::NoRecords`] when nothing matched.
pub fn import_blkparse(text: &str, opts: &ImportOptions) -> Result<Trace, ImportError> {
    let mut dev_index: HashMap<(u32, u32), u16> = HashMap::new();
    let mut records = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let Some(ev) = parse_event(number + 1, line, opts.action)? else {
            continue;
        };
        let next = dev_index.len() as u16;
        let dev = *dev_index.entry(ev.dev_key).or_insert(next);
        records.push(TraceRecord {
            at: SimTime::from_nanos(ev.at_ns),
            op: ev.op,
            dev,
            lba: ev.lba,
            sectors: ev.sectors,
            stream: StreamId(ev.cpu + 1),
        });
    }
    if records.is_empty() {
        return Err(ImportError::NoRecords);
    }
    let devices = dev_index.len() as u16;
    let mut trace = Trace {
        meta: import_meta(devices, opts.action, 0),
        records,
    };
    trace.normalize();
    Ok(trace)
}

fn import_meta(devices: u16, action: char, chunk_records: u32) -> TraceMeta {
    TraceMeta {
        source: "import:blkparse".to_string(),
        seed: 0,
        devices,
        note: format!("action '{action}'"),
        chunk_records,
        encoding: ChunkEncoding::Raw,
    }
}

/// What a first streaming pass over `blkparse` input learned: the
/// record count, the epoch (earliest kept arrival, which rebases to
/// time zero), and the distinct `major,minor` devices in first-input
/// appearance order (which fixes the dense renumbering). Feed it to
/// [`import_blkparse_into`] for the second, writing pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlkparseScan {
    /// Kept events.
    pub records: u64,
    /// Earliest kept arrival, in nanoseconds.
    pub epoch_ns: u64,
    /// Distinct `(major, minor)` pairs, first appearance first; the
    /// position is the stack-level device index.
    pub devices: Vec<(u32, u32)>,
}

/// First pass of a streaming import: scans `blkparse` lines from any
/// [`BufRead`] and collects the [`BlkparseScan`] the writing pass
/// needs, holding no records.
///
/// # Errors
///
/// [`ImportError::Line`] for a malformed event line,
/// [`ImportError::NoRecords`] when nothing matched,
/// [`ImportError::Io`] when the reader fails.
pub fn scan_blkparse<R: BufRead>(
    input: R,
    opts: &ImportOptions,
) -> Result<BlkparseScan, ImportError> {
    let mut scan = BlkparseScan {
        records: 0,
        epoch_ns: u64::MAX,
        devices: Vec::new(),
    };
    for (number, line) in input.lines().enumerate() {
        let line = line.map_err(|e| ImportError::Io(e.to_string()))?;
        let Some(ev) = parse_event(number + 1, &line, opts.action)? else {
            continue;
        };
        scan.records += 1;
        scan.epoch_ns = scan.epoch_ns.min(ev.at_ns);
        if !scan.devices.contains(&ev.dev_key) {
            scan.devices.push(ev.dev_key);
        }
    }
    if scan.records == 0 {
        return Err(ImportError::NoRecords);
    }
    Ok(scan)
}

/// A record waiting in the bounded reorder heap, ordered by
/// `(arrival, stream, input sequence)` — exactly the key the in-memory
/// path's stable `(arrival, stream)` sort realizes.
struct PendingRecord {
    key: (SimTime, StreamId, u64),
    record: TraceRecord,
}

impl PartialEq for PendingRecord {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for PendingRecord {}
impl PartialOrd for PendingRecord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingRecord {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest out.
        other.key.cmp(&self.key)
    }
}

/// Second pass of a streaming import: re-reads the `blkparse` input and
/// writes the normalized trace straight into a chunked [`TraceWriter`]
/// over `w`, re-sorting nearly sorted input through a bounded reorder
/// heap of `reorder_window` records (0 = [`DEFAULT_REORDER_WINDOW`]).
/// Memory is O(window + one chunk) regardless of input size, and the
/// output is byte-identical to `to_binary` of [`import_blkparse`] at
/// the same `chunk_records` whenever the input's timestamp disorder
/// fits the window.
///
/// # Errors
///
/// Everything [`scan_blkparse`] can return, plus
/// [`ImportError::OutOfOrder`] when the input is more disordered than
/// the window and [`ImportError::Io`] for reader/writer failures.
pub fn import_blkparse_into<R: BufRead, W: Write>(
    input: R,
    opts: &ImportOptions,
    scan: &BlkparseScan,
    chunk_records: u32,
    reorder_window: usize,
    w: W,
) -> Result<W, ImportError> {
    let window = if reorder_window == 0 {
        DEFAULT_REORDER_WINDOW
    } else {
        reorder_window
    };
    let io = |e: std::io::Error| ImportError::Io(e.to_string());
    let dev_index: HashMap<(u32, u32), u16> = scan
        .devices
        .iter()
        .enumerate()
        .map(|(i, &key)| (key, i as u16))
        .collect();
    let meta = import_meta(scan.devices.len() as u16, opts.action, chunk_records);
    let mut writer = TraceWriter::new(w, &meta).map_err(io)?;
    let mut heap: BinaryHeap<PendingRecord> = BinaryHeap::with_capacity(window + 1);
    let mut last_key: Option<(SimTime, StreamId, u64)> = None;
    let mut seq: u64 = 0;
    let mut emit = |p: PendingRecord, writer: &mut TraceWriter<W>| -> Result<(), ImportError> {
        if last_key.is_some_and(|last| p.key < last) {
            return Err(ImportError::OutOfOrder { window });
        }
        last_key = Some(p.key);
        writer.write_record(&p.record).map_err(io)
    };
    for (number, line) in input.lines().enumerate() {
        let line = line.map_err(|e| ImportError::Io(e.to_string()))?;
        let Some(ev) = parse_event(number + 1, &line, opts.action)? else {
            continue;
        };
        let dev = *dev_index
            .get(&ev.dev_key)
            .ok_or_else(|| ImportError::Line {
                number: number + 1,
                reason: "device not seen by the scan pass".to_string(),
            })?;
        let record = TraceRecord {
            at: SimTime::from_nanos(ev.at_ns.saturating_sub(scan.epoch_ns)),
            op: ev.op,
            dev,
            lba: ev.lba,
            sectors: ev.sectors,
            stream: StreamId(ev.cpu + 1),
        };
        heap.push(PendingRecord {
            key: (record.at, record.stream, seq),
            record,
        });
        seq += 1;
        if heap.len() > window {
            let p = heap.pop().expect("heap is non-empty");
            emit(p, &mut writer)?;
        }
    }
    while let Some(p) = heap.pop() {
        emit(p, &mut writer)?;
    }
    writer.finish().map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_sim::SimDuration;

    const SAMPLE: &str = "\
8,0    0        1     0.000000000  4162  Q  WS 7864447 + 8 [fio]
8,0    0        2     0.000001000  4162  G  WS 7864447 + 8 [fio]
8,0    1        3     0.000501000  4163  Q   R 1048576 + 32 [fio]
8,16   0        4     0.001000000  4162  Q   W 2048 + 16 [fio]
8,0    1        5     0.001200000  4163  C   R 1048576 + 32 [0]
CPU0 (sda):
 Reads Queued:           0,        0KiB\t Writes Queued:           2,        8KiB
Total (sda):
 Reads Queued:           1,       16KiB\t Writes Queued:           2,       12KiB
";

    #[test]
    fn import_keeps_q_events_and_maps_columns() {
        let t = import_blkparse(SAMPLE, &ImportOptions::default()).expect("import");
        assert_eq!(t.len(), 3, "only the three Q events");
        assert_eq!(t.meta.source, "import:blkparse");
        assert_eq!(t.meta.devices, 2, "8,0 and 8,16 densely renumbered");
        assert!(t.validate().is_ok(), "normalized on import");
        // First kept event rebased to zero.
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[0].op, TraceOp::Write);
        assert_eq!(t.records[0].dev, 0);
        assert_eq!(t.records[0].lba, 7_864_447);
        assert_eq!(t.records[0].sectors, 8);
        // CPU k -> stream k+1.
        assert_eq!(t.records[0].stream, StreamId(1));
        assert_eq!(t.records[1].stream, StreamId(2));
        assert_eq!(t.records[1].op, TraceOp::Read);
        // 0.000501s after the first event.
        assert_eq!(
            t.records[1].at,
            SimTime::ZERO + SimDuration::from_nanos(501_000)
        );
        // The second device appears as index 1.
        assert_eq!(t.records[2].dev, 1);
        assert_eq!(t.records[2].lba, 2048);
    }

    #[test]
    fn action_filter_selects_other_lifecycle_points() {
        let t = import_blkparse(SAMPLE, &ImportOptions { action: 'C' }).expect("import");
        assert_eq!(t.len(), 1);
        assert_eq!(t.records[0].op, TraceOp::Read);
        assert_eq!(t.records[0].sectors, 32);
    }

    #[test]
    fn malformed_event_line_is_an_error_with_its_line_number() {
        let text = "8,0 0 1 0.0 99 Q W not-a-sector + 8 [x]\n";
        match import_blkparse(text, &ImportOptions::default()) {
            Err(ImportError::Line { number: 1, reason }) => {
                assert!(reason.contains("sector"), "{reason}");
            }
            other => panic!("expected a line error, got {other:?}"),
        }
    }

    #[test]
    fn streaming_import_matches_the_in_memory_bytes() {
        let opts = ImportOptions::default();
        let in_memory = import_blkparse(SAMPLE, &opts).expect("import");
        let scan = scan_blkparse(SAMPLE.as_bytes(), &opts).expect("scan");
        assert_eq!(scan.records, 3);
        assert_eq!(scan.devices, vec![(8, 0), (8, 16)]);
        assert_eq!(scan.epoch_ns, 0);
        let bytes = import_blkparse_into(SAMPLE.as_bytes(), &opts, &scan, 0, 0, Vec::new())
            .expect("streaming import");
        assert_eq!(bytes, crate::codec::to_binary(&in_memory));
    }

    #[test]
    fn reorder_window_absorbs_bounded_disorder_and_rejects_more() {
        // Three events in strictly decreasing time order: disorder of
        // span 3, which a window of 1 cannot re-sort.
        let text = "\
8,0 0 1 0.000300000 1 Q W 100 + 8 [x]
8,0 0 2 0.000200000 1 Q W 200 + 8 [x]
8,0 0 3 0.000100000 1 Q W 300 + 8 [x]
";
        let opts = ImportOptions::default();
        let scan = scan_blkparse(text.as_bytes(), &opts).expect("scan");
        assert_eq!(scan.epoch_ns, 100_000);
        // A big enough window reproduces the in-memory sort exactly.
        let ok = import_blkparse_into(text.as_bytes(), &opts, &scan, 0, 0, Vec::new())
            .expect("wide window");
        let in_memory = import_blkparse(text, &opts).expect("import");
        assert_eq!(ok, crate::codec::to_binary(&in_memory));
        // A window of one record cannot, and says so instead of writing
        // a silently misordered trace.
        assert_eq!(
            import_blkparse_into(text.as_bytes(), &opts, &scan, 0, 1, Vec::new()).err(),
            Some(ImportError::OutOfOrder { window: 1 })
        );
    }

    #[test]
    fn non_event_text_is_no_records_not_an_error() {
        assert_eq!(
            import_blkparse("hello\nworld\n", &ImportOptions::default()),
            Err(ImportError::NoRecords)
        );
    }
}
