//! The trace format: a versioned, self-describing stream of timestamped
//! block requests.
//!
//! A [`Trace`] is what every other piece of this crate produces or
//! consumes: the capture tap fills one from a live stack, the synthetic
//! generators fabricate one from a spec, the codecs serialize one to
//! bytes or JSONL, and the replay engine drives a stack from one. The
//! unit of the format is the [`TraceRecord`] — *when* a request arrived,
//! *what* it was (read or write), and *where* it landed (device, LBA,
//! length), plus a stream tag so multi-source workloads stay separable.

use trail_disk::Lba;
use trail_sim::{SimDuration, SimTime};

/// The current trace format version, written by both codecs.
///
/// Version history:
/// - **1** — initial format: 28-byte little-endian records, JSON meta
///   header (see `DESIGN.md`, "Workload trace format").
pub const TRACE_VERSION: u16 = 1;

/// What a traced request did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// A (durable) write.
    Write,
    /// A read.
    Read,
}

impl TraceOp {
    /// `true` for [`TraceOp::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, TraceOp::Read)
    }

    /// The on-disk opcode (`0` = write, `1` = read).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            TraceOp::Write => 0,
            TraceOp::Read => 1,
        }
    }

    /// Parses an on-disk opcode.
    #[must_use]
    pub fn from_code(code: u8) -> Option<TraceOp> {
        match code {
            0 => Some(TraceOp::Write),
            1 => Some(TraceOp::Read),
            _ => None,
        }
    }

    /// The JSONL letter (`"W"` / `"R"`).
    #[must_use]
    pub fn letter(self) -> &'static str {
        match self {
            TraceOp::Write => "W",
            TraceOp::Read => "R",
        }
    }

    /// Parses the JSONL letter.
    #[must_use]
    pub fn from_letter(letter: &str) -> Option<TraceOp> {
        match letter {
            "W" => Some(TraceOp::Write),
            "R" => Some(TraceOp::Read),
            _ => None,
        }
    }
}

/// One timestamped block request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Arrival instant. In a stored trace this is relative to the trace
    /// epoch (the first record of a captured trace arrives near zero);
    /// the capture tap records absolute simulator time until
    /// [`Trace::rebase`] subtracts the epoch out.
    pub at: SimTime,
    /// Read or write.
    pub op: TraceOp,
    /// Stack-level device index.
    pub dev: u16,
    /// Starting logical block address, in sectors.
    pub lba: Lba,
    /// Request length in sectors (non-zero).
    pub sectors: u32,
    /// Workload stream tag (terminal, generator stream, …); `0` when the
    /// source does not distinguish streams.
    pub stream: u32,
}

/// Self-description carried by every trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceMeta {
    /// Where the trace came from (`"capture:tpcc"`, `"synthetic"`, …).
    pub source: String,
    /// The seed that produced it, for provenance (0 when not seeded).
    pub seed: u64,
    /// Number of stack-level devices the trace addresses.
    pub devices: u16,
    /// Free-form note.
    pub note: String,
}

/// A workload trace: metadata plus records ordered by arrival time.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// Self-description.
    pub meta: TraceMeta,
    /// The requests, sorted by `(at, stream)`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Span from the first arrival to the last.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.at.saturating_duration_since(first.at),
            _ => SimDuration::ZERO,
        }
    }

    /// Highest device index addressed, or `None` for an empty trace.
    #[must_use]
    pub fn max_dev(&self) -> Option<u16> {
        self.records.iter().map(|r| r.dev).max()
    }

    /// Shifts every arrival so that `epoch` becomes time zero (arrivals
    /// before `epoch` clamp to zero). Captured traces carry absolute
    /// simulator times; rebasing to the instant replay started makes a
    /// capture comparable to — and replayable like — a stored trace.
    pub fn rebase(&mut self, epoch: SimTime) {
        for r in &mut self.records {
            r.at = SimTime::ZERO + r.at.saturating_duration_since(epoch);
        }
    }

    /// [`Trace::rebase`] to the first record's arrival, so the trace
    /// starts at time zero.
    pub fn rebase_to_first(&mut self) {
        if let Some(first) = self.records.first() {
            let epoch = first.at;
            self.rebase(epoch);
        }
    }

    /// Stable-sorts records by `(arrival, stream)` — the canonical order
    /// both codecs and the replay engine expect.
    pub fn sort(&mut self) {
        self.records.sort_by_key(|r| (r.at, r.stream));
    }

    /// Checks the invariants stored traces must satisfy: records sorted
    /// by `(arrival, stream)` and every record non-empty.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if r.sectors == 0 {
                return Err(format!("record {i}: zero-length request"));
            }
        }
        for (i, pair) in self.records.windows(2).enumerate() {
            if (pair[0].at, pair[0].stream) > (pair[1].at, pair[1].stream) {
                return Err(format!("records {i} and {} out of order", i + 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, stream: u32) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at_ns),
            op: TraceOp::Write,
            dev: 0,
            lba: 8,
            sectors: 8,
            stream,
        }
    }

    #[test]
    fn op_codes_round_trip() {
        for op in [TraceOp::Write, TraceOp::Read] {
            assert_eq!(TraceOp::from_code(op.code()), Some(op));
            assert_eq!(TraceOp::from_letter(op.letter()), Some(op));
        }
        assert_eq!(TraceOp::from_code(7), None);
        assert_eq!(TraceOp::from_letter("x"), None);
    }

    #[test]
    fn rebase_shifts_and_clamps() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(1000, 0), rec(2500, 0)],
        };
        assert_eq!(t.duration(), SimDuration::from_nanos(1500));
        t.rebase_to_first();
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[1].at, SimTime::from_nanos(1500));
        // Rebasing past the first arrival clamps instead of wrapping.
        t.rebase(SimTime::from_nanos(1_000_000));
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[1].at, SimTime::ZERO);
    }

    #[test]
    fn validate_catches_disorder_and_empties() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(2000, 0), rec(1000, 0)],
        };
        assert!(t.validate().is_err());
        t.sort();
        assert!(t.validate().is_ok());
        t.records[0].sectors = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn sort_is_stable_within_equal_arrivals() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(5, 2), rec(5, 1), rec(1, 9)],
        };
        t.sort();
        assert_eq!(t.records[0].stream, 9);
        assert_eq!(t.records[1].stream, 1);
        assert_eq!(t.records[2].stream, 2);
    }
}
