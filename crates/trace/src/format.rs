//! The trace format: a versioned, self-describing stream of timestamped
//! block requests.
//!
//! A [`Trace`] is what every other piece of this crate produces or
//! consumes: the capture tap fills one from a live stack, the synthetic
//! generators fabricate one from a spec, the codecs serialize one to
//! bytes or JSONL, and the replay engine drives a stack from one. The
//! unit of the format is the [`TraceRecord`] — *when* a request arrived,
//! *what* it was (read or write), and *where* it landed (device, LBA,
//! length), plus a stream tag so multi-source workloads stay separable.

use trail_disk::Lba;
use trail_sim::{SimDuration, SimTime};
use trail_telemetry::StreamId;

/// The current trace format version, written by both codecs.
///
/// Version history:
/// - **1** — initial format: 28-byte little-endian records, JSON meta
///   header (see `DESIGN.md`, "Workload trace format").
/// - **2** — chunked records: the flat record array is replaced by
///   length-prefixed chunks with per-chunk CRC-32 and record count plus
///   a footer chunk index, so traces stream at bounded memory (see
///   `DESIGN.md`, "Trace format v2 (chunked)"). v1 files remain
///   readable.
/// - **3** — per-chunk encoding byte: each chunk header grows a
///   [`ChunkEncoding`] tag so chunk payloads may be delta-compressed
///   (column split + delta + zigzag/varint — see `DESIGN.md`, "Trace
///   format v3 (delta-compressed chunks)"). The CRC still covers the
///   *decoded* 28-byte record payload, so a Raw and a Delta chunk of
///   the same records carry the same checksum. v1 and v2 files remain
///   readable.
pub const TRACE_VERSION: u16 = 3;

/// How a v3 chunk's record payload is laid out on disk.
///
/// The tag travels in every chunk header, so a single file may mix
/// encodings and a reader never guesses; [`TraceMeta::encoding`] names
/// the encoding the *writer* applies to every chunk it flushes, keeping
/// encode→decode→re-encode canonical.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChunkEncoding {
    /// The flat 28-byte little-endian record array, as in v2.
    #[default]
    Raw,
    /// Column split + per-column delta + zigzag/varint. Arrival times
    /// and LBAs are near-monotone, so deltas collapse; the synthetic
    /// Poisson traces shrink to well under half their raw size.
    Delta,
}

impl ChunkEncoding {
    /// The on-disk tag byte (`0` = raw, `1` = delta).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ChunkEncoding::Raw => 0,
            ChunkEncoding::Delta => 1,
        }
    }

    /// Parses an on-disk tag byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<ChunkEncoding> {
        match code {
            0 => Some(ChunkEncoding::Raw),
            1 => Some(ChunkEncoding::Delta),
            _ => None,
        }
    }

    /// The meta-JSON name (`"raw"` / `"delta"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChunkEncoding::Raw => "raw",
            ChunkEncoding::Delta => "delta",
        }
    }

    /// Parses the meta-JSON name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<ChunkEncoding> {
        match name {
            "raw" => Some(ChunkEncoding::Raw),
            "delta" => Some(ChunkEncoding::Delta),
            _ => None,
        }
    }
}

/// What a traced request did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// A (durable) write.
    Write,
    /// A read.
    Read,
}

impl TraceOp {
    /// `true` for [`TraceOp::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, TraceOp::Read)
    }

    /// The on-disk opcode (`0` = write, `1` = read).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            TraceOp::Write => 0,
            TraceOp::Read => 1,
        }
    }

    /// Parses an on-disk opcode.
    #[must_use]
    pub fn from_code(code: u8) -> Option<TraceOp> {
        match code {
            0 => Some(TraceOp::Write),
            1 => Some(TraceOp::Read),
            _ => None,
        }
    }

    /// The JSONL letter (`"W"` / `"R"`).
    #[must_use]
    pub fn letter(self) -> &'static str {
        match self {
            TraceOp::Write => "W",
            TraceOp::Read => "R",
        }
    }

    /// Parses the JSONL letter.
    #[must_use]
    pub fn from_letter(letter: &str) -> Option<TraceOp> {
        match letter {
            "W" => Some(TraceOp::Write),
            "R" => Some(TraceOp::Read),
            _ => None,
        }
    }
}

/// One timestamped block request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Arrival instant. In a stored trace this is relative to the trace
    /// epoch (the first record of a captured trace arrives near zero);
    /// the capture tap records absolute simulator time until
    /// [`Trace::rebase`] subtracts the epoch out.
    pub at: SimTime,
    /// Read or write.
    pub op: TraceOp,
    /// Stack-level device index.
    pub dev: u16,
    /// Starting logical block address, in sectors.
    pub lba: Lba,
    /// Request length in sectors (non-zero).
    pub sectors: u32,
    /// Workload stream tag (terminal, generator stream, imported CPU, …);
    /// [`StreamId::UNTAGGED`] when the source does not distinguish
    /// streams.
    pub stream: StreamId,
}

/// Self-description carried by every trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceMeta {
    /// Where the trace came from (`"capture:tpcc"`, `"synthetic"`, …).
    pub source: String,
    /// The seed that produced it, for provenance (0 when not seeded).
    pub seed: u64,
    /// Number of stack-level devices the trace addresses.
    pub devices: u16,
    /// Free-form note.
    pub note: String,
    /// Records per chunk the binary codec flushes at; 0 means "use the
    /// codec default" and is preserved as 0 so encodings stay canonical.
    pub chunk_records: u32,
    /// Chunk payload encoding the binary codec writes (every flushed
    /// chunk gets this tag; readers honor the per-chunk byte, so the
    /// field is a writer knob plus provenance, not a reader constraint).
    pub encoding: ChunkEncoding,
}

/// A workload trace: metadata plus records ordered by arrival time.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// Self-description.
    pub meta: TraceMeta,
    /// The requests, sorted by `(at, stream)`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Span from the first arrival to the last.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.at.saturating_duration_since(first.at),
            _ => SimDuration::ZERO,
        }
    }

    /// Highest device index addressed, or `None` for an empty trace.
    #[must_use]
    pub fn max_dev(&self) -> Option<u16> {
        self.records.iter().map(|r| r.dev).max()
    }

    /// Shifts every arrival so that `epoch` becomes time zero (arrivals
    /// before `epoch` clamp to zero). Captured traces carry absolute
    /// simulator times; rebasing to the instant replay started makes a
    /// capture comparable to — and replayable like — a stored trace.
    pub fn rebase(&mut self, epoch: SimTime) {
        for r in &mut self.records {
            r.at = SimTime::ZERO + r.at.saturating_duration_since(epoch);
        }
    }

    /// [`Trace::rebase`] to the first record's arrival, so the trace
    /// starts at time zero.
    pub fn rebase_to_first(&mut self) {
        if let Some(first) = self.records.first() {
            let epoch = first.at;
            self.rebase(epoch);
        }
    }

    /// Stable-sorts records by `(arrival, stream)` — the canonical order
    /// both codecs and the replay engine expect.
    pub fn sort(&mut self) {
        self.records.sort_by_key(|r| (r.at, r.stream));
    }

    /// [`sort`](Trace::sort) then [`rebase_to_first`](Trace::rebase_to_first):
    /// the canonical form every producer ends with — records in
    /// `(arrival, stream)` order, first arrival at time zero.
    pub fn normalize(&mut self) {
        self.sort();
        self.rebase_to_first();
    }

    /// The distinct stream tags present, ascending.
    #[must_use]
    pub fn streams(&self) -> Vec<StreamId> {
        let set: std::collections::BTreeSet<StreamId> =
            self.records.iter().map(|r| r.stream).collect();
        set.into_iter().collect()
    }

    /// Splits the trace into one [`StreamView`] per stream, ascending by
    /// stream tag. Views borrow the parent — no metadata clone, no record
    /// copies, just one index per record — and preserve the parent's
    /// record order, so [`Trace::merge`] over materialized parts
    /// reconstructs the original exactly.
    #[must_use]
    pub fn split_by_stream(&self) -> Vec<StreamView<'_>> {
        let mut parts: std::collections::BTreeMap<StreamId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            parts.entry(r.stream).or_default().push(i);
        }
        parts
            .into_iter()
            .map(|(stream, indices)| StreamView {
                stream,
                trace: self,
                indices,
            })
            .collect()
    }

    /// Merges several traces into one, re-sorted to canonical
    /// `(arrival, stream)` order. Metadata comes from the first part
    /// (materialized parts of a [`Trace::split_by_stream`] all share
    /// it).
    #[must_use]
    pub fn merge(parts: impl IntoIterator<Item = Trace>) -> Trace {
        let mut parts = parts.into_iter();
        let mut out = parts.next().unwrap_or_default();
        for p in parts {
            out.records.extend(p.records);
        }
        out.sort();
        out
    }

    /// Per-stream workload breakdown, ascending by stream tag.
    #[must_use]
    pub fn per_stream_summary(&self) -> Vec<StreamSummary> {
        let mut builder = StreamSummaryBuilder::new();
        for r in &self.records {
            builder.record(r);
        }
        builder.finish()
    }

    /// Checks the invariants stored traces must satisfy: records sorted
    /// by `(arrival, stream)` and every record non-empty.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if r.sectors == 0 {
                return Err(format!("record {i}: zero-length request"));
            }
        }
        for (i, pair) in self.records.windows(2).enumerate() {
            if (pair[0].at, pair[0].stream) > (pair[1].at, pair[1].stream) {
                return Err(format!("records {i} and {} out of order", i + 1));
            }
        }
        Ok(())
    }
}

/// A borrowed, index-based view of one stream's records inside a parent
/// [`Trace`] (see [`Trace::split_by_stream`]). Holds one `usize` per
/// record instead of copying records and metadata; call
/// [`StreamView::to_trace`] only when an owned sub-trace is genuinely
/// needed.
#[derive(Clone, Debug)]
pub struct StreamView<'a> {
    stream: StreamId,
    trace: &'a Trace,
    indices: Vec<usize>,
}

impl<'a> StreamView<'a> {
    /// The stream tag this view selects.
    #[must_use]
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Number of records in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the stream holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The records of this stream, in the parent's order.
    pub fn iter(&self) -> impl Iterator<Item = &'a TraceRecord> + '_ {
        self.indices.iter().map(|&i| &self.trace.records[i])
    }

    /// Materializes the view as an owned [`Trace`] sharing the parent's
    /// metadata — this is where the clone happens, on demand.
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        Trace {
            meta: self.trace.meta.clone(),
            records: self.iter().copied().collect(),
        }
    }
}

/// Fragment budget per stream for [`StreamSummaryBuilder`]'s footprint
/// interval map. Below it the footprint is exact; past it the builder
/// coarsens its quantum (doubling it) so memory stays bounded on
/// arbitrarily long traces.
pub const FOOTPRINT_FRAGMENT_BUDGET: usize = 65_536;

/// Streaming accumulator behind [`Trace::per_stream_summary`]: feed it
/// records one at a time (in any order) and [`finish`] into the
/// per-stream summaries without ever materializing the trace. Footprints
/// are exact until a stream's interval map exceeds
/// [`FOOTPRINT_FRAGMENT_BUDGET`] fragments, after which the stream's
/// addresses are rounded to a power-of-two quantum (doubling on each
/// overflow) — bounded memory in exchange for a conservative
/// (over-counted) footprint on pathological address patterns.
///
/// [`finish`]: StreamSummaryBuilder::finish
#[derive(Debug, Default)]
pub struct StreamSummaryBuilder {
    streams: std::collections::BTreeMap<StreamId, StreamAccum>,
}

#[derive(Debug)]
struct StreamAccum {
    summary: StreamSummary,
    /// Power-of-two address rounding; 1 = exact.
    quantum: u64,
    /// Coalesced `(dev, start) → end` intervals, ends exclusive.
    intervals: std::collections::BTreeMap<(u16, Lba), Lba>,
}

impl StreamSummaryBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> StreamSummaryBuilder {
        StreamSummaryBuilder::default()
    }

    /// Folds one record into the accumulator.
    pub fn record(&mut self, r: &TraceRecord) {
        let accum = self.streams.entry(r.stream).or_insert_with(|| StreamAccum {
            summary: StreamSummary::empty(r.stream),
            quantum: 1,
            intervals: std::collections::BTreeMap::new(),
        });
        let s = &mut accum.summary;
        s.requests += 1;
        if r.op.is_read() {
            s.reads += 1;
        } else {
            s.writes += 1;
        }
        s.sectors += u64::from(r.sectors);
        s.first_at = s.first_at.min(r.at);
        s.last_at = s.last_at.max(r.at);
        accum.insert(r.dev, r.lba, r.lba.saturating_add(u64::from(r.sectors)));
        while accum.intervals.len() > FOOTPRINT_FRAGMENT_BUDGET {
            accum.coarsen();
        }
    }

    /// The accumulated summaries, ascending by stream tag.
    #[must_use]
    pub fn finish(self) -> Vec<StreamSummary> {
        self.streams
            .into_values()
            .map(|accum| {
                let mut s = accum.summary;
                s.footprint_sectors = accum
                    .intervals
                    .iter()
                    .map(|(&(_, start), &end)| end - start)
                    .sum();
                s
            })
            .collect()
    }
}

impl StreamAccum {
    /// Inserts `[start, end)` on `dev`, coalescing with any touching or
    /// overlapping neighbours.
    fn insert(&mut self, dev: u16, start: Lba, end: Lba) {
        let q = self.quantum;
        let mut start = start / q * q;
        let mut end = end.div_ceil(q) * q;
        if let Some((&(pdev, pstart), &pend)) = self.intervals.range(..=(dev, start)).next_back() {
            if pdev == dev && pend >= start {
                start = pstart;
                end = end.max(pend);
                self.intervals.remove(&(pdev, pstart));
            }
        }
        while let Some((&(ndev, nstart), &nend)) = self.intervals.range((dev, start)..).next() {
            if ndev != dev || nstart > end {
                break;
            }
            end = end.max(nend);
            self.intervals.remove(&(ndev, nstart));
        }
        self.intervals.insert((dev, start), end);
    }

    /// Doubles the quantum and re-buckets every interval; neighbours
    /// that round into each other coalesce, shrinking the map.
    fn coarsen(&mut self) {
        self.quantum = self.quantum.saturating_mul(2);
        let old = std::mem::take(&mut self.intervals);
        for ((dev, start), end) in old {
            self.insert(dev, start, end);
        }
    }
}

/// What one stream of a trace looks like (see
/// [`Trace::per_stream_summary`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamSummary {
    /// The stream tag.
    pub stream: StreamId,
    /// Requests in this stream.
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Total sectors transferred.
    pub sectors: u64,
    /// Distinct sectors addressed (overlapping requests counted once).
    pub footprint_sectors: u64,
    /// First arrival in the stream.
    pub first_at: SimTime,
    /// Last arrival in the stream.
    pub last_at: SimTime,
}

impl StreamSummary {
    fn empty(stream: StreamId) -> StreamSummary {
        StreamSummary {
            stream,
            requests: 0,
            reads: 0,
            writes: 0,
            sectors: 0,
            footprint_sectors: 0,
            first_at: SimTime::from_nanos(u64::MAX),
            last_at: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, stream: u32) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at_ns),
            op: TraceOp::Write,
            dev: 0,
            lba: 8,
            sectors: 8,
            stream: StreamId(stream),
        }
    }

    #[test]
    fn op_codes_round_trip() {
        for op in [TraceOp::Write, TraceOp::Read] {
            assert_eq!(TraceOp::from_code(op.code()), Some(op));
            assert_eq!(TraceOp::from_letter(op.letter()), Some(op));
        }
        assert_eq!(TraceOp::from_code(7), None);
        assert_eq!(TraceOp::from_letter("x"), None);
    }

    #[test]
    fn rebase_shifts_and_clamps() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(1000, 0), rec(2500, 0)],
        };
        assert_eq!(t.duration(), SimDuration::from_nanos(1500));
        t.rebase_to_first();
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[1].at, SimTime::from_nanos(1500));
        // Rebasing past the first arrival clamps instead of wrapping.
        t.rebase(SimTime::from_nanos(1_000_000));
        assert_eq!(t.records[0].at, SimTime::ZERO);
        assert_eq!(t.records[1].at, SimTime::ZERO);
    }

    #[test]
    fn validate_catches_disorder_and_empties() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(2000, 0), rec(1000, 0)],
        };
        assert!(t.validate().is_err());
        t.sort();
        assert!(t.validate().is_ok());
        t.records[0].sectors = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn sort_is_stable_within_equal_arrivals() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(5, 2), rec(5, 1), rec(1, 9)],
        };
        t.sort();
        assert_eq!(t.records[0].stream, StreamId(9));
        assert_eq!(t.records[1].stream, StreamId(1));
        assert_eq!(t.records[2].stream, StreamId(2));
    }

    #[test]
    fn split_then_merge_is_the_identity_on_normalized_traces() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(5, 2), rec(5, 1), rec(1, 2), rec(9, 0)],
        };
        t.normalize();
        let parts = t.split_by_stream();
        assert_eq!(parts.len(), 3);
        assert!(parts.windows(2).all(|w| w[0].stream() < w[1].stream()));
        let total: usize = parts.iter().map(StreamView::len).sum();
        assert_eq!(total, t.len());
        let back = Trace::merge(parts.iter().map(StreamView::to_trace));
        assert_eq!(back, t);
    }

    #[test]
    fn stream_views_borrow_rather_than_copy() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![rec(1, 0), rec(2, 1), rec(3, 0)],
        };
        t.normalize();
        let parts = t.split_by_stream();
        let zero = &parts[0];
        assert_eq!(zero.stream(), StreamId(0));
        assert_eq!(zero.len(), 2);
        assert!(!zero.is_empty());
        // The view hands out references into the parent's storage.
        let first = zero.iter().next().expect("two records");
        assert!(std::ptr::eq(first, &t.records[0]));
        assert_eq!(zero.to_trace().records, vec![t.records[0], t.records[2]]);
    }

    #[test]
    fn summary_builder_coarsens_past_the_fragment_budget() {
        let mut accum = StreamAccum {
            summary: StreamSummary::empty(StreamId(1)),
            quantum: 1,
            intervals: std::collections::BTreeMap::new(),
        };
        // Alternating singleton sectors never coalesce at quantum 1…
        for i in 0..6u64 {
            accum.insert(0, i * 2, i * 2 + 1);
        }
        assert_eq!(accum.intervals.len(), 6);
        // …but one doubling rounds them into a single run.
        accum.coarsen();
        assert_eq!(accum.quantum, 2);
        assert_eq!(accum.intervals.len(), 1);
        assert_eq!(accum.intervals.get(&(0, 0)), Some(&12));
    }

    #[test]
    fn per_stream_summary_counts_and_merges_footprint() {
        let mut t = Trace {
            meta: TraceMeta::default(),
            records: vec![
                TraceRecord {
                    at: SimTime::from_nanos(10),
                    op: TraceOp::Write,
                    dev: 0,
                    lba: 0,
                    sectors: 8,
                    stream: StreamId(1),
                },
                TraceRecord {
                    at: SimTime::from_nanos(20),
                    op: TraceOp::Read,
                    // Overlaps the first request: footprint counts the
                    // union, not the sum.
                    dev: 0,
                    lba: 4,
                    sectors: 8,
                    stream: StreamId(1),
                },
                TraceRecord {
                    at: SimTime::from_nanos(30),
                    op: TraceOp::Write,
                    dev: 1,
                    lba: 100,
                    sectors: 2,
                    stream: StreamId(2),
                },
            ],
        };
        t.normalize();
        let summary = t.per_stream_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].stream, StreamId(1));
        assert_eq!(summary[0].requests, 2);
        assert_eq!(summary[0].reads, 1);
        assert_eq!(summary[0].writes, 1);
        assert_eq!(summary[0].sectors, 16);
        assert_eq!(summary[0].footprint_sectors, 12);
        assert_eq!(summary[1].stream, StreamId(2));
        assert_eq!(summary[1].footprint_sectors, 2);
    }
}
