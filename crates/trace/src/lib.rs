//! # trail-trace: workload traces for the Trail reproduction
//!
//! The paper's evaluation drives the same storage stacks with the same
//! workloads and compares latency distributions. This crate makes the
//! *workload* a first-class, storable artifact, in four pieces:
//!
//! - [`format`] — a versioned, self-describing trace model: timestamped
//!   block requests (arrival, op, device, LBA, length, stream).
//! - [`codec`] — a compact canonical binary encoding plus a JSONL
//!   export, both round-trip exact.
//! - [`gen`] — synthetic generators: Poisson and bursty arrivals,
//!   uniform/Zipf-like/sequential-run spatial locality, configurable
//!   read mix and stream count, all seeded through [`trail_sim::rng`].
//! - [`import`] — `blkparse` text import, so real Linux block traces
//!   replay against the simulated stacks (CPU column → stream tag).
//! - [`capture`] / [`replay`] — record the offered load of any running
//!   scenario through the stack's `set_tap` hook, then replay it **open
//!   loop** at recorded arrival times (with a 0.5×–8× time-scale knob)
//!   against any stack — raw C-LOOK disks, Trail, a multi-log Trail
//!   array, or an ext2/LFS file system over either — reporting
//!   p50/p99/p99.9 latency and queue depth over time.
//!
//! One trace, any stack: capture a TPC-C run over Trail, then replay
//! the identical request stream against the standard stack and read the
//! latency gap straight off the two reports.
//!
//! ```
//! use trail_trace::{from_binary, generate, to_binary, SyntheticSpec};
//!
//! let trace = generate(&SyntheticSpec::default());
//! let bytes = to_binary(&trace);
//! assert_eq!(from_binary(&bytes).unwrap(), trace);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod codec;
pub mod format;
pub mod gen;
pub mod import;
pub mod replay;
pub mod shard;

pub use capture::{StreamingCapture, TraceCapture};
pub use codec::{
    from_binary, from_jsonl, to_binary, to_binary_v1, to_binary_v2, to_jsonl, TraceError,
    TraceReader, TraceWriter, DEFAULT_CHUNK_RECORDS, RECORD_BYTES, TRACE_MAGIC,
};
pub use format::{
    ChunkEncoding, StreamSummary, StreamSummaryBuilder, StreamView, Trace, TraceMeta, TraceOp,
    TraceRecord, TRACE_VERSION,
};
pub use gen::{generate, generate_stream, ArrivalModel, SpatialModel, SyntheticSpec};
pub use import::{
    import_blkparse, import_blkparse_into, scan_blkparse, BlkparseScan, ImportError, ImportOptions,
};
pub use replay::{
    replay, replay_stream, FailMember, ReplayError, ReplayOptions, ReplayReport, TargetKind,
};
pub use shard::{replay_stream_sharded, ShardPlan};
pub use trail_telemetry::StreamId;
