//! Synthetic workload generators.
//!
//! A [`SyntheticSpec`] fabricates a [`Trace`] from first principles:
//! arrivals from a Poisson process or an on/off burst model, addresses
//! from a uniform, power-law ("Zipf-like" hot region), or
//! sequential-run spatial model, with a configurable read fraction and
//! any number of independent streams. Everything is driven by
//! [`trail_sim::rng`], so a spec is a complete, replayable name for a
//! workload: the same spec yields the same trace, bit for bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, Write};

use rand::rngs::SmallRng;
use rand::Rng;

use trail_sim::{rng, SimDuration, SimTime};
use trail_telemetry::StreamId;

use crate::codec::TraceWriter;
use crate::format::{ChunkEncoding, Trace, TraceMeta, TraceOp, TraceRecord};

/// How request arrival instants are drawn.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalModel {
    /// A Poisson process: independent exponential inter-arrival times
    /// with the given mean.
    Poisson {
        /// Mean inter-arrival time.
        mean_iat: SimDuration,
    },
    /// An on/off burst process: `burst` back-to-back requests spaced
    /// `iat_in_burst` apart, then an idle `gap`, repeated.
    Bursty {
        /// Requests per burst (at least 1).
        burst: u32,
        /// Spacing inside a burst.
        iat_in_burst: SimDuration,
        /// Idle time between bursts.
        gap: SimDuration,
    },
}

/// How request addresses are drawn.
#[derive(Clone, Copy, Debug)]
pub enum SpatialModel {
    /// Uniformly random over the device.
    Uniform,
    /// Power-law locality: a uniform draw `u` is mapped to
    /// `u^skew · capacity`, concentrating traffic near the start of the
    /// device — a cheap stand-in for Zipf-distributed block popularity
    /// (`skew` 1.0 degenerates to uniform; 2–4 is a pronounced hot
    /// region).
    Zipf {
        /// Concentration exponent (≥ 1.0).
        skew: f64,
    },
    /// Sequential runs: each stream advances a cursor for `run_len`
    /// requests, then jumps to a fresh uniformly random start.
    SequentialRuns {
        /// Requests per sequential run (at least 1).
        run_len: u32,
    },
}

/// A complete description of a synthetic workload.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// RNG seed; the spec plus the seed fully determine the trace.
    pub seed: u64,
    /// Total number of requests across all streams.
    pub requests: usize,
    /// Number of stack-level devices, assigned round-robin by stream.
    pub devices: u16,
    /// Addressable sectors per device (requests stay below this).
    pub capacity_sectors: u64,
    /// Fraction of requests that are reads (0.0 — all writes — to 1.0).
    pub read_fraction: f64,
    /// Sectors per request.
    pub request_sectors: u32,
    /// Independent workload streams, each with its own arrival process
    /// and spatial cursor, merged in arrival order.
    pub streams: u32,
    /// The arrival model (per stream).
    pub arrivals: ArrivalModel,
    /// The spatial model (per stream).
    pub spatial: SpatialModel,
}

impl Default for SyntheticSpec {
    /// 4-KB writes with 30 % reads, Poisson arrivals at 1 ms mean, one
    /// stream, uniform over 1 GB of one device.
    fn default() -> Self {
        SyntheticSpec {
            seed: 1,
            requests: 1000,
            devices: 1,
            capacity_sectors: 2 * 1024 * 1024,
            read_fraction: 0.3,
            request_sectors: 8,
            streams: 1,
            arrivals: ArrivalModel::Poisson {
                mean_iat: SimDuration::from_millis(1),
            },
            spatial: SpatialModel::Uniform,
        }
    }
}

/// Generates the trace a spec describes.
///
/// Streams are generated independently (stream `s` draws from seed
/// `seed ⊕ mix(s)`) and stably merged by `(arrival, stream)`, so adding
/// a stream never perturbs the others.
///
/// # Panics
///
/// Panics on a degenerate spec: zero streams/devices, zero-length
/// requests, a `read_fraction` outside `0.0..=1.0`, or a capacity too
/// small to hold one request.
#[must_use]
pub fn generate(spec: &SyntheticSpec) -> Trace {
    Trace {
        meta: spec_meta(spec, 0),
        records: merged(spec).collect(),
    }
}

/// Streams the trace a spec describes straight into a chunked
/// [`TraceWriter`] over `w`, never materializing more than one record
/// per stream plus one output chunk. Produces exactly the bytes
/// `to_binary(&generate(spec))` would (with `chunk_records` in the
/// metadata), but at bounded memory for any request count.
///
/// Returns the inner writer, flushed and finished.
///
/// # Errors
///
/// Any I/O error from `w`.
///
/// # Panics
///
/// Panics on a degenerate spec, like [`generate`].
pub fn generate_stream<W: Write>(spec: &SyntheticSpec, chunk_records: u32, w: W) -> io::Result<W> {
    let mut writer = TraceWriter::new(w, &spec_meta(spec, chunk_records))?;
    for record in merged(spec) {
        writer.write_record(&record)?;
    }
    writer.finish()
}

fn spec_meta(spec: &SyntheticSpec, chunk_records: u32) -> TraceMeta {
    TraceMeta {
        source: "synthetic".to_string(),
        seed: spec.seed,
        devices: spec.devices,
        note: format!(
            "{} requests, {} stream(s), {:?}, {:?}",
            spec.requests, spec.streams, spec.arrivals, spec.spatial
        ),
        chunk_records,
        encoding: ChunkEncoding::Raw,
    }
}

/// The spec's records in canonical `(arrival, stream)` order, lazily:
/// one [`StreamGen`] per stream plus a k-way merge heap, so memory is
/// O(streams) regardless of `spec.requests`. Within a stream arrivals
/// are non-decreasing and only one record per stream is pending at a
/// time, so heap keys never tie — the merge reproduces exactly what a
/// stable `(at, stream)` sort of the concatenated per-stream runs
/// produced before generation streamed.
fn merged(spec: &SyntheticSpec) -> Merged<'_> {
    assert!(spec.streams >= 1, "at least one stream");
    assert!(spec.devices >= 1, "at least one device");
    assert!(spec.request_sectors >= 1, "non-empty requests");
    assert!(
        (0.0..=1.0).contains(&spec.read_fraction),
        "read fraction in [0, 1]"
    );
    assert!(
        spec.capacity_sectors > u64::from(spec.request_sectors),
        "capacity must exceed one request"
    );
    let usable = spec.capacity_sectors - u64::from(spec.request_sectors);
    let mut gens: Vec<StreamGen> = (0..spec.streams)
        .map(|stream| StreamGen::new(spec, stream))
        .collect();
    let mut pending: Vec<Option<TraceRecord>> = Vec::with_capacity(gens.len());
    let mut heap = BinaryHeap::with_capacity(gens.len());
    for (slot, g) in gens.iter_mut().enumerate() {
        let first = g.step(spec, usable);
        if let Some(r) = &first {
            heap.push(Reverse((r.at, r.stream, slot)));
        }
        pending.push(first);
    }
    Merged {
        spec,
        usable,
        gens,
        pending,
        heap,
    }
}

struct Merged<'a> {
    spec: &'a SyntheticSpec,
    usable: u64,
    gens: Vec<StreamGen>,
    /// Each stream's next (already drawn) record.
    pending: Vec<Option<TraceRecord>>,
    /// Min-heap over the pending records, keyed `(at, stream)`.
    heap: BinaryHeap<Reverse<(SimTime, StreamId, usize)>>,
}

impl Iterator for Merged<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let Reverse((_, _, slot)) = self.heap.pop()?;
        let record = self.pending[slot].take().expect("heap entry has a record");
        if let Some(next) = self.gens[slot].step(self.spec, self.usable) {
            self.heap.push(Reverse((next.at, next.stream, slot)));
            self.pending[slot] = Some(next);
        }
        Some(record)
    }
}

/// One stream's lazy generator state: its RNG, arrival clock, and
/// spatial cursor.
struct StreamGen {
    rng: SmallRng,
    stream: u32,
    dev: u16,
    remaining: usize,
    index: usize,
    now: SimTime,
    cursor: u64,
    run_left: u32,
}

impl StreamGen {
    fn new(spec: &SyntheticSpec, stream: u32) -> StreamGen {
        StreamGen {
            rng: rng(spec
                .seed
                .wrapping_add(u64::from(stream).wrapping_mul(0x9E37_79B9_7F4A_7C15))),
            stream,
            dev: (stream % u32::from(spec.devices)) as u16,
            remaining: per_stream_count(spec.requests, spec.streams, stream),
            index: 0,
            now: SimTime::ZERO,
            cursor: 0,
            run_left: 0,
        }
    }

    fn step(&mut self, spec: &SyntheticSpec, usable: u64) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.now += next_iat(&mut self.rng, &spec.arrivals, self.index);
        self.index += 1;
        let lba = next_lba(
            &mut self.rng,
            &spec.spatial,
            usable,
            spec.request_sectors,
            &mut self.cursor,
            &mut self.run_left,
        );
        let op = if self.rng.gen::<f64>() < spec.read_fraction {
            TraceOp::Read
        } else {
            TraceOp::Write
        };
        Some(TraceRecord {
            at: self.now,
            op,
            dev: self.dev,
            lba,
            sectors: spec.request_sectors,
            stream: StreamId(self.stream),
        })
    }
}

/// Splits `total` requests over `streams`, earlier streams taking the
/// remainder.
fn per_stream_count(total: usize, streams: u32, stream: u32) -> usize {
    let streams = streams as usize;
    let stream = stream as usize;
    total / streams + usize::from(stream < total % streams)
}

fn next_iat(r: &mut impl Rng, model: &ArrivalModel, index: usize) -> SimDuration {
    match model {
        ArrivalModel::Poisson { mean_iat } => {
            // Inverse-CDF exponential draw; u < 1 keeps ln finite.
            let u: f64 = r.gen();
            SimDuration::from_nanos((mean_iat.as_nanos() as f64 * -(1.0 - u).ln()) as u64)
        }
        ArrivalModel::Bursty {
            burst,
            iat_in_burst,
            gap,
        } => {
            let burst = (*burst).max(1) as usize;
            if index > 0 && index.is_multiple_of(burst) {
                *gap
            } else {
                *iat_in_burst
            }
        }
    }
}

fn next_lba(
    r: &mut impl Rng,
    model: &SpatialModel,
    usable: u64,
    sectors: u32,
    cursor: &mut u64,
    run_left: &mut u32,
) -> u64 {
    match model {
        SpatialModel::Uniform => r.gen_range(0..=usable),
        SpatialModel::Zipf { skew } => {
            let u: f64 = r.gen();
            ((u.powf(skew.max(1.0)) * usable as f64) as u64).min(usable)
        }
        SpatialModel::SequentialRuns { run_len } => {
            if *run_left == 0 {
                *run_left = (*run_len).max(1);
                *cursor = r.gen_range(0..=usable);
            } else {
                *cursor = (*cursor + u64::from(sectors)) % (usable + 1);
            }
            *run_left -= 1;
            *cursor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec {
            streams: 3,
            requests: 300,
            devices: 2,
            ..SyntheticSpec::default()
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        assert!(a.validate().is_ok());
        assert_eq!(a.max_dev(), Some(1));
    }

    #[test]
    fn streamed_generation_matches_the_in_memory_bytes() {
        let spec = SyntheticSpec {
            streams: 3,
            requests: 300,
            devices: 2,
            ..SyntheticSpec::default()
        };
        let in_memory = generate(&spec);
        let streamed = generate_stream(&spec, 0, Vec::new()).expect("vec sink");
        assert_eq!(streamed, crate::codec::to_binary(&in_memory));
        // A non-default chunk size changes the layout, not the records.
        let chunked = generate_stream(&spec, 7, Vec::new()).expect("vec sink");
        let back = crate::codec::from_binary(&chunked).expect("decode");
        assert_eq!(back.records, in_memory.records);
        assert_eq!(back.meta.chunk_records, 7);
    }

    #[test]
    fn adding_a_stream_leaves_existing_streams_alone() {
        let one = generate(&SyntheticSpec {
            streams: 1,
            requests: 100,
            ..SyntheticSpec::default()
        });
        let two = generate(&SyntheticSpec {
            streams: 2,
            requests: 200,
            ..SyntheticSpec::default()
        });
        let stream0: Vec<_> = two
            .records
            .iter()
            .filter(|r| r.stream == StreamId(0))
            .collect();
        assert_eq!(stream0.len(), 100);
        for (a, b) in one.records.iter().zip(stream0) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let all_writes = generate(&SyntheticSpec {
            read_fraction: 0.0,
            ..SyntheticSpec::default()
        });
        assert!(all_writes.records.iter().all(|r| r.op == TraceOp::Write));
        let all_reads = generate(&SyntheticSpec {
            read_fraction: 1.0,
            ..SyntheticSpec::default()
        });
        assert!(all_reads.records.iter().all(|r| r.op == TraceOp::Read));
    }

    #[test]
    fn zipf_concentrates_low_addresses() {
        let base = SyntheticSpec {
            requests: 2000,
            ..SyntheticSpec::default()
        };
        let uniform = generate(&SyntheticSpec {
            spatial: SpatialModel::Uniform,
            ..base.clone()
        });
        let zipf = generate(&SyntheticSpec {
            spatial: SpatialModel::Zipf { skew: 3.0 },
            ..base
        });
        let median = |t: &Trace| {
            let mut lbas: Vec<u64> = t.records.iter().map(|r| r.lba).collect();
            lbas.sort_unstable();
            lbas[lbas.len() / 2]
        };
        assert!(median(&zipf) < median(&uniform) / 4);
    }

    #[test]
    fn sequential_runs_advance_by_request_size() {
        let t = generate(&SyntheticSpec {
            spatial: SpatialModel::SequentialRuns { run_len: 8 },
            requests: 64,
            ..SyntheticSpec::default()
        });
        let sequential_steps = t
            .records
            .windows(2)
            .filter(|w| w[1].lba == w[0].lba + u64::from(w[0].sectors))
            .count();
        // 8-long runs: at least ~3/4 of the steps are sequential.
        assert!(sequential_steps >= 48, "{sequential_steps} of 63");
    }

    #[test]
    fn bursty_arrivals_alternate_bursts_and_gaps() {
        let t = generate(&SyntheticSpec {
            arrivals: ArrivalModel::Bursty {
                burst: 4,
                iat_in_burst: SimDuration::from_micros(10),
                gap: SimDuration::from_millis(5),
            },
            requests: 16,
            ..SyntheticSpec::default()
        });
        let gaps = t
            .records
            .windows(2)
            .filter(|w| w[1].at - w[0].at >= SimDuration::from_millis(5))
            .count();
        assert_eq!(gaps, 3);
    }
}
