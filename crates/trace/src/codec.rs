//! Binary and JSONL codecs for [`Trace`], streaming and in-memory.
//!
//! Two encodings of the same model, both self-describing and versioned:
//!
//! - **Binary** (`.trace`): an 8-byte magic, a little-endian header, a
//!   canonical-JSON metadata blob, then the records in **length-prefixed
//!   chunks** (format v3) — each chunk carries its record count, a
//!   CRC-32 over its *decoded* payload, and a [`ChunkEncoding`] tag
//!   ([`ChunkEncoding::Delta`] chunks store a column-split
//!   delta/zigzag/varint compression of the records); a footer chunk
//!   index closes the file. Encoding is canonical, so decode → re-encode
//!   reproduces the input byte for byte. Version-2 files (12-byte chunk
//!   headers, raw payloads only) and version-1 files (a bare `u64`
//!   record count followed by a flat record array) remain readable.
//! - **JSONL** (`.jsonl`): the first line is the metadata object, each
//!   following line one record. This is the greppable/diffable export;
//!   it is exact for values below 2⁵³ (encoding larger timestamps or
//!   LBAs is rejected rather than silently rounded).
//!
//! The streaming entry points are [`TraceWriter`] and [`TraceReader`]:
//! a writer accepts records one at a time over any [`io::Write`] and
//! never buffers more than one chunk; a reader decodes one chunk at a
//! time over any [`io::Read`] and hands records out through
//! [`TraceReader::next_record`] / [`TraceReader::records`]. The
//! in-memory [`to_binary`] / [`from_binary`] pair are thin adapters
//! over them for small traces and tests.
//!
//! Layout of one binary record (offsets in bytes):
//!
//! | 0..8 | 8..16 | 16..20 | 20..24 | 24..26 | 26 | 27 |
//! |---|---|---|---|---|---|---|
//! | `at_ns` u64 | `lba` u64 | `sectors` u32 | `stream` u32 | `dev` u16 | `op` u8 | reserved (0) |
//!
//! Layout of a v3 chunk frame (all little-endian; v2 frames are the
//! same minus the `encoding` byte):
//!
//! | 0..4 | 4..8 | 8..12 | 12 | 13.. |
//! |---|---|---|---|---|
//! | `records` u32 | `payload_len` u32 | `crc32` u32 | `encoding` u8 | payload |
//!
//! A data chunk has `records ≥ 1`; a raw chunk has `payload_len =
//! records × 28`, a delta chunk any `payload_len ≤ records × 34`. The
//! `crc32` always covers the **decoded** record payload, so a raw and a
//! delta chunk of the same records carry the same checksum and a
//! corrupted compressed payload is caught either by the delta decoder
//! or by the CRC. The file ends with one **footer** frame with
//! `records = 0` (always raw) whose payload is the chunk index:
//! `total_records` u64, `chunk_count` u32, then one
//! `(file_offset u64, records u32)` pair per data chunk.

use std::fmt;
use std::io::{self, Read, Write};

use trail_sim::SimTime;
use trail_telemetry::{JsonValue, StreamId};

use crate::format::{ChunkEncoding, Trace, TraceMeta, TraceOp, TraceRecord, TRACE_VERSION};

/// The binary magic: `b"TRAILTRC"`.
pub const TRACE_MAGIC: [u8; 8] = *b"TRAILTRC";

/// Size of one binary record in bytes.
pub const RECORD_BYTES: usize = 28;

/// Records per chunk when [`TraceMeta::chunk_records`] is 0.
pub const DEFAULT_CHUNK_RECORDS: u32 = 4096;

/// Hard ceiling on records per chunk (bounds a reader's allocation no
/// matter what the frame header claims).
pub const MAX_CHUNK_RECORDS: u32 = 1 << 20;

/// Size of a v3 chunk frame header (`records`, `payload_len`, `crc32`,
/// `encoding`).
const CHUNK_HEADER_BYTES: usize = 13;

/// Size of a v2 chunk frame header (no `encoding` byte).
const V2_CHUNK_HEADER_BYTES: usize = 12;

/// Worst-case delta-encoded size of one record: two 10-byte varints
/// (`at`, `lba`), two 5-byte varints (`sectors`, `stream`), one 3-byte
/// varint (`dev`), one raw op byte. Bounds a reader's allocation for a
/// delta chunk no matter what the frame header claims.
const MAX_DELTA_RECORD_BYTES: usize = 34;

/// Largest integer JSONL can carry exactly (2⁵³).
const JSON_EXACT_MAX: u64 = 1 << 53;

/// Why a trace failed to decode (or encode to JSONL).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceError {
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The input's version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The input ended before the declared content did.
    Truncated(String),
    /// The metadata header is malformed.
    BadMeta(String),
    /// A record is malformed.
    BadRecord {
        /// Zero-based record index.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A chunk (v2/v3) is malformed: truncated payload, CRC mismatch,
    /// an unknown encoding, a malformed delta payload, or an impossible
    /// frame header.
    BadChunk {
        /// Zero-based chunk index (the footer counts as the chunk after
        /// the last data chunk).
        chunk: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The underlying reader or writer failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trail trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "trace version {v} unsupported (max {TRACE_VERSION})")
            }
            TraceError::Truncated(what) => write!(f, "truncated trace: {what}"),
            TraceError::BadMeta(why) => write!(f, "bad trace metadata: {why}"),
            TraceError::BadRecord { index, reason } => {
                write!(f, "bad trace record {index}: {reason}")
            }
            TraceError::BadChunk { chunk, reason } => {
                write!(f, "bad trace chunk {chunk}: {reason}")
            }
            TraceError::Io(why) => write!(f, "trace io error: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Maps an I/O failure while reading `what`: a clean EOF mid-item is a
/// truncation, anything else is an I/O error.
fn read_err(what: &str, e: &io::Error) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        TraceError::Truncated(what.to_string())
    } else {
        TraceError::Io(format!("reading {what}: {e}"))
    }
}

// ----------------------------------------------------------------- crc

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), table-driven. Kept
/// local: the workspace vendors no checksum crate, and 20 lines beat a
/// dependency.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 each chunk frame carries over its payload.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------- meta

/// The canonical metadata object both codecs embed. `seed` is carried as
/// a decimal string so 64-bit seeds survive the f64 JSON number space.
/// `records` is present when the producer knows the total up front (the
/// JSONL codec and the legacy v1 binary); a streaming v2 writer leaves
/// it out — the total lives in the footer index instead.
fn meta_json(meta: &TraceMeta, version: u16, records: Option<u64>) -> JsonValue {
    let mut fields = vec![
        ("format", JsonValue::str("trail-trace")),
        ("version", JsonValue::Num(f64::from(version))),
        ("source", JsonValue::str(meta.source.clone())),
        ("seed", JsonValue::str(meta.seed.to_string())),
        ("devices", JsonValue::Num(f64::from(meta.devices))),
        ("note", JsonValue::str(meta.note.clone())),
    ];
    if version >= 2 {
        fields.push((
            "chunk_records",
            JsonValue::Num(f64::from(meta.chunk_records)),
        ));
    }
    if version >= 3 {
        fields.push(("encoding", JsonValue::str(meta.encoding.name())));
    }
    if let Some(records) = records {
        fields.push(("records", JsonValue::Num(records as f64)));
    }
    JsonValue::obj(fields)
}

fn parse_meta(v: &JsonValue) -> Result<(TraceMeta, Option<u64>), TraceError> {
    let bad = |why: &str| TraceError::BadMeta(why.to_string());
    let format = v
        .get("format")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing format"))?;
    if format != "trail-trace" {
        return Err(bad(&format!("format is {format:?}, not \"trail-trace\"")));
    }
    let version = v
        .get("version")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad("missing version"))? as u16;
    if version == 0 || version > TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let seed = match v.get("seed") {
        Some(JsonValue::Str(s)) => s
            .parse::<u64>()
            .map_err(|_| bad(&format!("seed {s:?} is not a u64")))?,
        Some(JsonValue::Num(n)) => *n as u64,
        _ => 0,
    };
    let devices = v.get("devices").and_then(JsonValue::as_f64).unwrap_or(0.0) as u16;
    let chunk_records = v
        .get("chunk_records")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as u32;
    let encoding = match v.get("encoding") {
        None => ChunkEncoding::Raw,
        Some(JsonValue::Str(s)) => {
            ChunkEncoding::from_name(s).ok_or_else(|| bad(&format!("unknown encoding {s:?}")))?
        }
        Some(_) => return Err(bad("encoding is not a string")),
    };
    let records = v
        .get("records")
        .and_then(JsonValue::as_f64)
        .map(|n| n as u64);
    Ok((
        TraceMeta {
            source: v
                .get("source")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            seed,
            devices,
            note: v
                .get("note")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            chunk_records,
            encoding,
        },
        records,
    ))
}

// ------------------------------------------------------------- records

fn encode_record(out: &mut Vec<u8>, r: &TraceRecord) {
    out.extend_from_slice(&r.at.as_nanos().to_le_bytes());
    out.extend_from_slice(&r.lba.to_le_bytes());
    out.extend_from_slice(&r.sectors.to_le_bytes());
    out.extend_from_slice(&r.stream.0.to_le_bytes());
    out.extend_from_slice(&r.dev.to_le_bytes());
    out.push(r.op.code());
    out.push(0); // reserved
}

/// Decodes one 28-byte record; `index` is the zero-based position in
/// the whole trace (for error messages).
fn decode_record(bytes: &[u8], index: u64) -> Result<TraceRecord, TraceError> {
    debug_assert_eq!(bytes.len(), RECORD_BYTES);
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let op_code = bytes[26];
    let op = TraceOp::from_code(op_code).ok_or_else(|| TraceError::BadRecord {
        index: index as usize,
        reason: format!("unknown op code {op_code}"),
    })?;
    Ok(TraceRecord {
        at: SimTime::from_nanos(u64_at(0)),
        op,
        dev: u16::from_le_bytes(bytes[24..26].try_into().expect("2 bytes")),
        lba: u64_at(8),
        sectors: u32_at(16),
        stream: StreamId(u32_at(20)),
    })
}

// --------------------------------------------------------- delta chunks
//
// The domain codec behind `ChunkEncoding::Delta`. A chunk's records are
// split into columns in field order (`at`, `lba`, `sectors`, `stream`,
// `dev`, then the raw op bytes); each numeric column stores the
// difference from the previous value in the same column (the first
// value differs from 0), zigzag-mapped and LEB128-varint-coded. Arrival
// times are monotone and LBAs near-monotone per stream, so the deltas
// collapse: the synthetic Poisson traces land near 11 bytes/record
// against 28 raw. The reserved byte is not stored — it is 0 by
// construction — and the op byte rides raw (it is a 0/1 enum).

/// The numeric columns as `(byte offset, width)` pairs, in storage
/// order. The op byte (offset 26) follows as a raw column; the reserved
/// byte (offset 27) is implicit.
const DELTA_COLUMNS: [(usize, usize); 5] = [(0, 8), (8, 8), (16, 4), (20, 4), (24, 2)];

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Delta-encodes one chunk's raw record payload (`raw.len()` a multiple
/// of [`RECORD_BYTES`]).
fn encode_delta_chunk(raw: &[u8]) -> Vec<u8> {
    let n = raw.len() / RECORD_BYTES;
    let mut out = Vec::with_capacity(raw.len() / 2);
    for (off, width) in DELTA_COLUMNS {
        let mut prev = 0u64;
        for i in 0..n {
            let base = i * RECORD_BYTES + off;
            let mut v = 0u64;
            for k in 0..width {
                v |= u64::from(raw[base + k]) << (8 * k);
            }
            // Wrapping subtraction in u64 then a cast is the exact
            // signed difference for any pair of column values.
            let d = v.wrapping_sub(prev) as i64;
            put_varint(&mut out, ((d << 1) ^ (d >> 63)) as u64);
            prev = v;
        }
    }
    for i in 0..n {
        out.push(raw[i * RECORD_BYTES + 26]);
    }
    out
}

/// Reconstructs a chunk's raw record payload from its delta encoding
/// into `raw`. Returns `false` on any malformation: a truncated or
/// over-long varint, a column value outside its field's range, or
/// trailing bytes after the last column.
fn decode_delta_chunk(encoded: &[u8], records: usize, raw: &mut Vec<u8>) -> bool {
    raw.clear();
    raw.resize(records * RECORD_BYTES, 0);
    let mut pos = 0usize;
    for (off, width) in DELTA_COLUMNS {
        let mut prev = 0u64;
        let max = if width == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * width)) - 1
        };
        for i in 0..records {
            let Some(z) = get_varint(encoded, &mut pos) else {
                return false;
            };
            let d = ((z >> 1) as i64) ^ -((z & 1) as i64);
            let v = prev.wrapping_add(d as u64);
            if v > max {
                return false;
            }
            let base = i * RECORD_BYTES + off;
            for k in 0..width {
                raw[base + k] = (v >> (8 * k)) as u8;
            }
            prev = v;
        }
    }
    for i in 0..records {
        let Some(&b) = encoded.get(pos) else {
            return false;
        };
        pos += 1;
        raw[i * RECORD_BYTES + 26] = b;
    }
    pos == encoded.len()
}

// -------------------------------------------------------------- writer

/// Streaming chunked encoder: accepts records one at a time over any
/// [`io::Write`], buffering at most one chunk
/// ([`TraceMeta::chunk_records`] records, [`DEFAULT_CHUNK_RECORDS`]
/// when 0). The header is written on construction; [`finish`] flushes
/// the trailing partial chunk and the footer index. Dropping a writer
/// without calling [`finish`] leaves the output without a footer — a
/// reader will reject it as truncated rather than silently shorten the
/// trace.
///
/// [`finish`]: TraceWriter::finish
pub struct TraceWriter<W: Write> {
    w: W,
    chunk_records: u32,
    encoding: ChunkEncoding,
    buf: Vec<u8>,
    buf_records: u32,
    scratch: Vec<u8>,
    offset: u64,
    index: Vec<(u64, u32)>,
    total: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the v3 header (magic, version, flags, metadata) and
    /// returns a writer ready for records. Every flushed chunk is
    /// encoded per [`TraceMeta::encoding`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn new(mut w: W, meta: &TraceMeta) -> io::Result<TraceWriter<W>> {
        let chunk_records = if meta.chunk_records == 0 {
            DEFAULT_CHUNK_RECORDS
        } else {
            meta.chunk_records.min(MAX_CHUNK_RECORDS)
        };
        let meta_text = meta_json(meta, TRACE_VERSION, None).to_json();
        let meta_bytes = meta_text.as_bytes();
        w.write_all(&TRACE_MAGIC)?;
        w.write_all(&TRACE_VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?; // flags, reserved
        w.write_all(&(meta_bytes.len() as u32).to_le_bytes())?;
        w.write_all(meta_bytes)?;
        Ok(TraceWriter {
            w,
            chunk_records,
            encoding: meta.encoding,
            buf: Vec::with_capacity(chunk_records as usize * RECORD_BYTES),
            buf_records: 0,
            scratch: Vec::new(),
            offset: 16 + meta_bytes.len() as u64,
            index: Vec::new(),
            total: 0,
        })
    }

    /// The resolved records-per-chunk this writer flushes at.
    #[must_use]
    pub fn chunk_records(&self) -> u32 {
        self.chunk_records
    }

    /// Records accepted so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.total + u64::from(self.buf_records)
    }

    /// Switches the encoding applied to subsequently flushed chunks,
    /// flushing the current partial chunk first.
    ///
    /// The encoding tag travels in every chunk header, so files mixing
    /// Raw and Delta chunks are legal to *read*; the canonical writers
    /// keep one encoding per file (this is an interop/testing knob, and
    /// using it forfeits decode→re-encode byte identity).
    ///
    /// # Errors
    ///
    /// Any I/O error from flushing the partial chunk.
    pub fn set_encoding(&mut self, encoding: ChunkEncoding) -> io::Result<()> {
        self.flush_chunk()?;
        self.encoding = encoding;
        Ok(())
    }

    /// Appends one record, flushing a full chunk to the writer.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn write_record(&mut self, r: &TraceRecord) -> io::Result<()> {
        encode_record(&mut self.buf, r);
        self.buf_records += 1;
        if self.buf_records >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buf_records == 0 {
            return Ok(());
        }
        let payload: &[u8] = match self.encoding {
            ChunkEncoding::Raw => &self.buf,
            ChunkEncoding::Delta => {
                self.scratch = encode_delta_chunk(&self.buf);
                &self.scratch
            }
        };
        self.w.write_all(&self.buf_records.to_le_bytes())?;
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        // The CRC covers the decoded record payload, whatever the chunk
        // encoding — see the module docs.
        self.w.write_all(&crc32(&self.buf).to_le_bytes())?;
        self.w.write_all(&[self.encoding.code()])?;
        self.w.write_all(payload)?;
        self.index.push((self.offset, self.buf_records));
        self.offset += (CHUNK_HEADER_BYTES + payload.len()) as u64;
        self.total += u64::from(self.buf_records);
        self.buf.clear();
        self.buf_records = 0;
        Ok(())
    }

    /// Flushes the trailing partial chunk and the footer chunk index,
    /// returning the inner writer (flushed).
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        let mut footer = Vec::with_capacity(12 + self.index.len() * 12);
        footer.extend_from_slice(&self.total.to_le_bytes());
        footer.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for (offset, records) in &self.index {
            footer.extend_from_slice(&offset.to_le_bytes());
            footer.extend_from_slice(&records.to_le_bytes());
        }
        self.w.write_all(&0u32.to_le_bytes())?; // records = 0: footer
        self.w.write_all(&(footer.len() as u32).to_le_bytes())?;
        self.w.write_all(&crc32(&footer).to_le_bytes())?;
        self.w.write_all(&[ChunkEncoding::Raw.code()])?; // footers are raw
        self.w.write_all(&footer)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

// -------------------------------------------------------------- reader

/// Streaming chunked decoder over any [`io::Read`]: the header and
/// metadata are parsed on construction, records are decoded one chunk
/// at a time as [`next_record`] / [`records`] demand them, and the
/// footer index is verified against the records actually read. Reads
/// both format versions — v1 files are streamed in
/// [`DEFAULT_CHUNK_RECORDS`]-sized bites, so memory stays bounded by
/// one chunk either way.
///
/// [`next_record`]: TraceReader::next_record
/// [`records`]: TraceReader::records
pub struct TraceReader<R: Read> {
    r: R,
    meta: TraceMeta,
    version: u16,
    /// v1 only: the record count the header declared.
    declared: Option<u64>,
    chunk: Vec<u8>,
    scratch: Vec<u8>,
    pos: usize,
    chunks_read: u64,
    records_read: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header and metadata.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`],
    /// [`TraceError::BadMeta`], or truncation/IO while reading them.
    pub fn new(mut r: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|e| read_err("magic", &e))?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut halves = [0u8; 4];
        r.read_exact(&mut halves)
            .map_err(|e| read_err("version", &e))?;
        let version = u16::from_le_bytes(halves[0..2].try_into().expect("2 bytes"));
        if version == 0 || version > TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut len = [0u8; 4];
        r.read_exact(&mut len)
            .map_err(|e| read_err("meta length", &e))?;
        let meta_len = u32::from_le_bytes(len) as usize;
        let mut meta_bytes = vec![0u8; meta_len];
        r.read_exact(&mut meta_bytes)
            .map_err(|e| read_err("metadata blob", &e))?;
        let meta_text = std::str::from_utf8(&meta_bytes)
            .map_err(|_| TraceError::BadMeta("metadata is not UTF-8".to_string()))?;
        let meta_value =
            JsonValue::parse(meta_text).map_err(|e| TraceError::BadMeta(e.to_string()))?;
        let (meta, _) = parse_meta(&meta_value)?;
        let declared = if version == 1 {
            let mut count = [0u8; 8];
            r.read_exact(&mut count)
                .map_err(|e| read_err("record count", &e))?;
            Some(u64::from_le_bytes(count))
        } else {
            None
        };
        Ok(TraceReader {
            r,
            meta,
            version,
            declared,
            chunk: Vec::new(),
            scratch: Vec::new(),
            pos: 0,
            chunks_read: 0,
            records_read: 0,
            done: false,
        })
    }

    /// The trace's metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The on-disk format version (1, 2, or 3).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Records decoded so far.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Upper bound on the records this reader holds decoded at once —
    /// the chunk it is currently walking.
    #[must_use]
    pub fn buffered_records(&self) -> u32 {
        (self.chunk.len() / RECORD_BYTES) as u32
    }

    /// Loads the next chunk into `self.chunk`, or marks the stream done
    /// at a clean footer (v2) / declared count (v1).
    fn refill(&mut self) -> Result<(), TraceError> {
        if self.version == 1 {
            let remaining = self
                .declared
                .expect("v1 declares a count")
                .saturating_sub(self.records_read);
            if remaining == 0 {
                self.done = true;
                return Ok(());
            }
            let take = remaining.min(u64::from(DEFAULT_CHUNK_RECORDS)) as usize;
            self.chunk.resize(take * RECORD_BYTES, 0);
            self.r
                .read_exact(&mut self.chunk)
                .map_err(|e| read_err("record data", &e))?;
            self.pos = 0;
            self.chunks_read += 1;
            return Ok(());
        }
        let chunk = self.chunks_read as usize;
        let header_len = if self.version >= 3 {
            CHUNK_HEADER_BYTES
        } else {
            V2_CHUNK_HEADER_BYTES
        };
        let mut header = [0u8; CHUNK_HEADER_BYTES];
        self.r
            .read_exact(&mut header[..header_len])
            .map_err(|e| read_err("chunk header (unfinished trace is missing its footer)", &e))?;
        let records = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let bad = |reason: String| TraceError::BadChunk { chunk, reason };
        let encoding = if self.version >= 3 {
            ChunkEncoding::from_code(header[12])
                .ok_or_else(|| bad(format!("unknown chunk encoding {}", header[12])))?
        } else {
            ChunkEncoding::Raw
        };
        if records == 0 {
            // Footer: verify the index against what was actually read.
            if encoding != ChunkEncoding::Raw {
                return Err(bad("footer frame is not raw".to_string()));
            }
            if !(12..=12 + (1 << 28)).contains(&payload_len) {
                return Err(bad(format!("impossible footer length {payload_len}")));
            }
            let mut footer = vec![0u8; payload_len];
            self.r
                .read_exact(&mut footer)
                .map_err(|e| read_err("chunk index", &e))?;
            let computed = crc32(&footer);
            if computed != stored_crc {
                return Err(bad(format!(
                    "footer crc mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
                )));
            }
            let total = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes"));
            if u64::from(count) != self.chunks_read || total != self.records_read {
                return Err(bad(format!(
                    "footer declares {count} chunks / {total} records, read {} / {}",
                    self.chunks_read, self.records_read
                )));
            }
            self.done = true;
            return Ok(());
        }
        if records > MAX_CHUNK_RECORDS {
            return Err(bad(format!(
                "chunk claims {records} records (max {MAX_CHUNK_RECORDS})"
            )));
        }
        match encoding {
            ChunkEncoding::Raw => {
                if payload_len != records as usize * RECORD_BYTES {
                    return Err(bad(format!(
                        "payload length {payload_len} does not match {records} records"
                    )));
                }
            }
            ChunkEncoding::Delta => {
                if payload_len == 0 || payload_len > records as usize * MAX_DELTA_RECORD_BYTES {
                    return Err(bad(format!(
                        "impossible delta payload length {payload_len} for {records} records"
                    )));
                }
            }
        }
        let into = match encoding {
            ChunkEncoding::Raw => &mut self.chunk,
            ChunkEncoding::Delta => &mut self.scratch,
        };
        into.resize(payload_len, 0);
        if let Err(e) = self.r.read_exact(into) {
            return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                bad("truncated mid-chunk".to_string())
            } else {
                TraceError::Io(format!("reading chunk {chunk}: {e}"))
            });
        }
        if encoding == ChunkEncoding::Delta
            && !decode_delta_chunk(&self.scratch, records as usize, &mut self.chunk)
        {
            return Err(bad("malformed delta payload".to_string()));
        }
        let computed = crc32(&self.chunk);
        if computed != stored_crc {
            return Err(bad(format!(
                "crc mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            )));
        }
        self.pos = 0;
        self.chunks_read += 1;
        Ok(())
    }

    /// Decodes the next record; `None` at a clean end of trace. After an
    /// error the reader is fused (returns `None` from then on).
    pub fn next_record(&mut self) -> Option<Result<TraceRecord, TraceError>> {
        if self.done {
            return None;
        }
        if self.pos >= self.chunk.len() {
            if let Err(e) = self.refill() {
                self.done = true;
                return Some(Err(e));
            }
            if self.done {
                return None;
            }
        }
        let bytes = &self.chunk[self.pos..self.pos + RECORD_BYTES];
        match decode_record(bytes, self.records_read) {
            Ok(r) => {
                self.pos += RECORD_BYTES;
                self.records_read += 1;
                Some(Ok(r))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }

    /// The records as an iterator (chunk-at-a-time under the hood).
    pub fn records(&mut self) -> Records<'_, R> {
        Records { reader: self }
    }

    /// Drains the reader into an in-memory [`Trace`].
    ///
    /// # Errors
    ///
    /// The first decode error, if any.
    pub fn into_trace(mut self) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        while let Some(r) = self.next_record() {
            records.push(r?);
        }
        Ok(Trace {
            meta: self.meta,
            records,
        })
    }
}

/// Iterator over a [`TraceReader`]'s records; see
/// [`TraceReader::records`].
pub struct Records<'a, R: Read> {
    reader: &'a mut TraceReader<R>,
}

impl<R: Read> Iterator for Records<'_, R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record()
    }
}

// -------------------------------------------------- in-memory adapters

/// Encodes a trace to the canonical (v3 chunked) binary form — a thin
/// adapter over [`TraceWriter`] for small traces and tests. Chunk
/// payloads follow [`TraceMeta::encoding`].
#[must_use]
pub fn to_binary(trace: &Trace) -> Vec<u8> {
    let cap = 64 + trace.records.len() * RECORD_BYTES;
    let mut w =
        TraceWriter::new(Vec::with_capacity(cap), &trace.meta).expect("Vec writes are infallible");
    for r in &trace.records {
        w.write_record(r).expect("Vec writes are infallible");
    }
    w.finish().expect("Vec writes are infallible")
}

/// Encodes a trace in the legacy v1 layout (flat record array, no
/// chunks). Kept so compatibility with already-stored v1 files stays
/// testable; new code should write v2 via [`to_binary`] or
/// [`TraceWriter`].
#[must_use]
pub fn to_binary_v1(trace: &Trace) -> Vec<u8> {
    let meta = meta_json(&trace.meta, 1, Some(trace.records.len() as u64)).to_json();
    let meta = meta.as_bytes();
    let mut out = Vec::with_capacity(24 + meta.len() + RECORD_BYTES * trace.records.len());
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(meta);
    out.extend_from_slice(&(trace.records.len() as u64).to_le_bytes());
    for r in &trace.records {
        encode_record(&mut out, r);
    }
    out
}

/// Encodes a trace in the v2 layout (12-byte chunk headers, raw
/// payloads only, no encoding byte). Kept so compatibility with
/// already-stored v2 files stays testable; new code should write v3 via
/// [`to_binary`] or [`TraceWriter`].
#[must_use]
pub fn to_binary_v2(trace: &Trace) -> Vec<u8> {
    let chunk_records = if trace.meta.chunk_records == 0 {
        DEFAULT_CHUNK_RECORDS
    } else {
        trace.meta.chunk_records.min(MAX_CHUNK_RECORDS)
    };
    let meta = meta_json(&trace.meta, 2, None).to_json();
    let meta = meta.as_bytes();
    let mut out = Vec::with_capacity(64 + meta.len() + RECORD_BYTES * trace.records.len());
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&2u16.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(meta);
    let mut index = Vec::new();
    let mut payload = Vec::new();
    for chunk in trace.records.chunks(chunk_records as usize) {
        payload.clear();
        for r in chunk {
            encode_record(&mut payload, r);
        }
        index.push((out.len() as u64, chunk.len() as u32));
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    let mut footer = Vec::with_capacity(12 + index.len() * 12);
    footer.extend_from_slice(&(trace.records.len() as u64).to_le_bytes());
    footer.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for (offset, records) in &index {
        footer.extend_from_slice(&offset.to_le_bytes());
        footer.extend_from_slice(&records.to_le_bytes());
    }
    out.extend_from_slice(&0u32.to_le_bytes()); // records = 0: footer
    out.extend_from_slice(&(footer.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&footer).to_le_bytes());
    out.extend_from_slice(&footer);
    out
}

/// Decodes a binary trace (either format version) — a thin adapter over
/// [`TraceReader`].
///
/// # Errors
///
/// Any [`TraceError`]: bad magic, unsupported version, truncation, or a
/// malformed metadata blob, chunk, or record.
pub fn from_binary(bytes: &[u8]) -> Result<Trace, TraceError> {
    TraceReader::new(bytes)?.into_trace()
}

// --------------------------------------------------------------- jsonl

/// The JSONL metadata line. Pass `records` when the total is known up
/// front (in-memory export); a streaming producer may omit it — readers
/// only cross-check the count when it is present.
#[must_use]
pub fn jsonl_meta_line(meta: &TraceMeta, records: Option<u64>) -> String {
    meta_json(meta, TRACE_VERSION, records).to_json()
}

/// One JSONL record line (no trailing newline).
///
/// # Errors
///
/// [`TraceError::BadRecord`] if the arrival or LBA exceeds 2⁵³ and
/// would lose precision as a JSON number; `index` names the record in
/// the error.
pub fn jsonl_record_line(index: u64, r: &TraceRecord) -> Result<String, TraceError> {
    for (what, v) in [("arrival", r.at.as_nanos()), ("lba", r.lba)] {
        if v >= JSON_EXACT_MAX {
            return Err(TraceError::BadRecord {
                index: index as usize,
                reason: format!("{what} {v} exceeds the exact JSON number range"),
            });
        }
    }
    Ok(JsonValue::obj(vec![
        ("at_ns", JsonValue::Num(r.at.as_nanos() as f64)),
        ("op", JsonValue::str(r.op.letter())),
        ("dev", JsonValue::Num(f64::from(r.dev))),
        ("lba", JsonValue::Num(r.lba as f64)),
        ("sectors", JsonValue::Num(f64::from(r.sectors))),
        ("stream", JsonValue::Num(f64::from(r.stream.0))),
    ])
    .to_json())
}

/// Parses a JSONL metadata line into the metadata plus the declared
/// record count, when present.
///
/// # Errors
///
/// [`TraceError::BadMeta`] or [`TraceError::UnsupportedVersion`].
pub fn parse_jsonl_meta(line: &str) -> Result<(TraceMeta, Option<u64>), TraceError> {
    let meta_value = JsonValue::parse(line).map_err(|e| TraceError::BadMeta(e.to_string()))?;
    parse_meta(&meta_value)
}

/// Parses one JSONL record line; `index` is the zero-based record
/// position (for error messages).
///
/// # Errors
///
/// [`TraceError::BadRecord`] naming the malformed field.
pub fn parse_jsonl_record(index: u64, line: &str) -> Result<TraceRecord, TraceError> {
    let bad = |reason: String| TraceError::BadRecord {
        index: index as usize,
        reason,
    };
    let v = JsonValue::parse(line).map_err(|e| bad(e.to_string()))?;
    let num = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad(format!("missing {key}")))
    };
    let op_letter = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing op".to_string()))?;
    let op = TraceOp::from_letter(op_letter).ok_or_else(|| bad(format!("bad op {op_letter:?}")))?;
    Ok(TraceRecord {
        at: SimTime::from_nanos(num("at_ns")? as u64),
        op,
        dev: num("dev")? as u16,
        lba: num("lba")? as u64,
        sectors: num("sectors")? as u32,
        stream: StreamId(num("stream")? as u32),
    })
}

/// Encodes a trace to JSONL (metadata line, then one record per line).
///
/// # Errors
///
/// [`TraceError::BadRecord`] if an arrival or LBA exceeds 2⁵³ and would
/// lose precision as a JSON number.
pub fn to_jsonl(trace: &Trace) -> Result<String, TraceError> {
    let mut out = jsonl_meta_line(&trace.meta, Some(trace.records.len() as u64));
    out.push('\n');
    for (index, r) in trace.records.iter().enumerate() {
        out.push_str(&jsonl_record_line(index as u64, r)?);
        out.push('\n');
    }
    Ok(out)
}

/// Decodes a JSONL trace.
///
/// # Errors
///
/// [`TraceError::BadMeta`] or [`TraceError::BadRecord`] describing the
/// first malformed line.
pub fn from_jsonl(text: &str) -> Result<Trace, TraceError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let meta_line = lines
        .next()
        .ok_or_else(|| TraceError::Truncated("empty input".to_string()))?;
    let (meta, declared) = parse_jsonl_meta(meta_line)?;
    let mut records = Vec::new();
    for (index, line) in lines.enumerate() {
        records.push(parse_jsonl_record(index as u64, line)?);
    }
    if let Some(declared) = declared {
        if declared != records.len() as u64 {
            return Err(TraceError::Truncated(format!(
                "metadata declares {declared} records, found {}",
                records.len()
            )));
        }
    }
    Ok(Trace { meta, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            meta: TraceMeta {
                source: "test".to_string(),
                seed: u64::MAX - 1,
                devices: 3,
                note: "with \"quotes\"".to_string(),
                chunk_records: 0,
                encoding: ChunkEncoding::Raw,
            },
            records: vec![
                TraceRecord {
                    at: SimTime::from_nanos(0),
                    op: TraceOp::Write,
                    dev: 0,
                    lba: 8,
                    sectors: 8,
                    stream: StreamId::UNTAGGED,
                },
                TraceRecord {
                    at: SimTime::from_nanos(1_500_000),
                    op: TraceOp::Read,
                    dev: 2,
                    lba: 123_456_789,
                    sectors: 16,
                    stream: StreamId(7),
                },
            ],
        }
    }

    #[test]
    fn binary_round_trips_byte_identically() {
        let t = sample();
        let bytes = to_binary(&t);
        let back = from_binary(&bytes).expect("decode");
        assert_eq!(back, t);
        // Canonical encoding: decode → re-encode is the identity.
        assert_eq!(to_binary(&back), bytes);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The classic "123456789" check value for reflected 0xEDB88320.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn chunk_records_knob_changes_layout_not_content() {
        let mut t = sample();
        t.meta.chunk_records = 1; // one record per chunk
        let bytes = to_binary(&t);
        let back = from_binary(&bytes).expect("decode");
        assert_eq!(back, t);
        assert_eq!(to_binary(&back), bytes, "canonical at any chunking");
        let mut one_chunk = t.clone();
        one_chunk.meta.chunk_records = 0;
        assert_ne!(
            to_binary(&one_chunk),
            bytes,
            "different chunking, different bytes"
        );
    }

    #[test]
    fn v1_files_remain_readable() {
        let t = sample();
        let v1 = to_binary_v1(&t);
        let back = from_binary(&v1).expect("v1 decode");
        assert_eq!(back, t);
        // And re-encoding a v1 decode produces the canonical v2 bytes.
        assert_eq!(to_binary(&back), to_binary(&t));
    }

    #[test]
    fn streaming_reader_decodes_one_chunk_at_a_time() {
        let mut t = sample();
        t.meta.chunk_records = 1;
        let bytes = to_binary(&t);
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.meta().devices, 3);
        assert_eq!(reader.version(), TRACE_VERSION);
        let records: Vec<TraceRecord> = reader.records().map(|r| r.expect("record")).collect();
        assert_eq!(records, t.records);
        assert_eq!(reader.records_read(), 2);
        assert!(reader.buffered_records() <= 1, "at most one chunk resident");
    }

    #[test]
    fn jsonl_round_trips_through_binary() {
        let t = sample();
        let text = to_jsonl(&t).expect("encode");
        let back = from_jsonl(&text).expect("decode");
        assert_eq!(back, t);
        // The cross-codec loop is also the identity on bytes.
        assert_eq!(to_binary(&back), to_binary(&t));
    }

    #[test]
    fn seed_survives_the_f64_number_space() {
        let t = sample();
        let back = from_jsonl(&to_jsonl(&t).unwrap()).unwrap();
        assert_eq!(back.meta.seed, u64::MAX - 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            from_binary(b"not a trace..."),
            Err(TraceError::BadMagic)
        ));
        let mut bytes = to_binary(&sample());
        bytes[8] = 0xFF; // version
        assert!(matches!(
            from_binary(&bytes),
            Err(TraceError::UnsupportedVersion(_))
        ));
        let bytes = to_binary(&sample());
        assert!(matches!(
            from_binary(&bytes[..bytes.len() - 3]),
            Err(TraceError::Truncated(_))
        ));
    }

    #[test]
    fn corrupt_chunk_payload_is_rejected_with_its_chunk_index() {
        let mut t = sample();
        t.meta.chunk_records = 1;
        let mut bytes = to_binary(&t);
        // Flip one payload byte of the second chunk: frames start after
        // the 16-byte header + meta blob; chunk 0 is header + 28 bytes.
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let second_chunk_payload =
            16 + meta_len + (CHUNK_HEADER_BYTES + RECORD_BYTES) + CHUNK_HEADER_BYTES;
        bytes[second_chunk_payload] ^= 0x40;
        match from_binary(&bytes) {
            Err(TraceError::BadChunk { chunk: 1, reason }) => {
                assert!(reason.contains("crc mismatch"), "{reason}");
            }
            other => panic!("expected a chunk-1 crc error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_chunk_is_rejected_with_its_chunk_index() {
        let mut t = sample();
        t.meta.chunk_records = 1;
        let bytes = to_binary(&t);
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        // Cut the file mid-way through the second chunk's payload.
        let cut = 16 + meta_len + (CHUNK_HEADER_BYTES + RECORD_BYTES) + CHUNK_HEADER_BYTES + 5;
        match from_binary(&bytes[..cut]) {
            Err(TraceError::BadChunk { chunk: 1, reason }) => {
                assert!(reason.contains("truncated"), "{reason}");
            }
            other => panic!("expected a chunk-1 truncation error, got {other:?}"),
        }
    }

    #[test]
    fn missing_footer_is_a_truncation() {
        // A writer dropped without finish(): header plus data chunks but
        // no footer frame.
        let t = sample();
        let mut w = TraceWriter::new(Vec::new(), &t.meta).expect("writer");
        for r in &t.records {
            w.write_record(r).expect("write");
        }
        // Reach inside via finish, then strip the footer frame.
        let bytes = w.finish().expect("finish");
        let footer_len = CHUNK_HEADER_BYTES + 12 + 12; // one data chunk in the index
        let unfinished = &bytes[..bytes.len() - footer_len];
        match from_binary(unfinished) {
            Err(TraceError::Truncated(what)) => {
                assert!(what.contains("footer"), "{what}");
            }
            other => panic!("expected a missing-footer truncation, got {other:?}"),
        }
    }

    fn delta_sample() -> Trace {
        let mut t = sample();
        t.meta.encoding = ChunkEncoding::Delta;
        // Extremes exercise the wrapping delta arithmetic: a backwards
        // u64 jump and full-width field values.
        t.records.push(TraceRecord {
            at: SimTime::from_nanos(u64::MAX),
            op: TraceOp::Write,
            dev: u16::MAX,
            lba: u64::MAX,
            sectors: u32::MAX,
            stream: StreamId(u32::MAX),
        });
        t.records.push(TraceRecord {
            at: SimTime::from_nanos(3),
            op: TraceOp::Read,
            dev: 1,
            lba: 0,
            sectors: 1,
            stream: StreamId(0),
        });
        t
    }

    #[test]
    fn delta_round_trips_byte_identically() {
        let t = delta_sample();
        let bytes = to_binary(&t);
        let back = from_binary(&bytes).expect("decode");
        assert_eq!(back, t);
        assert_eq!(to_binary(&back), bytes, "canonical delta encoding");
        // The records are encoding-independent: the raw twin decodes to
        // the same trace apart from the meta knob.
        let mut raw_twin = t.clone();
        raw_twin.meta.encoding = ChunkEncoding::Raw;
        let raw_back = from_binary(&to_binary(&raw_twin)).expect("raw decode");
        assert_eq!(raw_back.records, back.records);
    }

    #[test]
    fn delta_collapses_a_monotone_trace() {
        // Poisson-ish arrivals and a sequential scan: exactly the shape
        // the column codec targets. The ci gate enforces ≤ 60% on the
        // real synthetic trace; this is the in-tree canary.
        let mut t = Trace {
            meta: TraceMeta {
                encoding: ChunkEncoding::Delta,
                ..TraceMeta::default()
            },
            records: Vec::new(),
        };
        for i in 0..1000u64 {
            t.records.push(TraceRecord {
                at: SimTime::from_nanos(i * 19_731),
                op: if i % 3 == 0 {
                    TraceOp::Read
                } else {
                    TraceOp::Write
                },
                dev: (i % 2) as u16,
                lba: 4096 + i * 8,
                sectors: 8,
                stream: StreamId((i % 4) as u32),
            });
        }
        let delta = to_binary(&t);
        t.meta.encoding = ChunkEncoding::Raw;
        let raw = to_binary(&t);
        assert!(
            delta.len() * 10 < raw.len() * 6,
            "delta {} bytes vs raw {} bytes",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn mixed_encoding_chunks_interop_within_one_file() {
        let t = delta_sample();
        let mut meta = t.meta.clone();
        meta.chunk_records = 2;
        meta.encoding = ChunkEncoding::Raw;
        let mut w = TraceWriter::new(Vec::new(), &meta).expect("writer");
        w.write_record(&t.records[0]).expect("write");
        w.write_record(&t.records[1]).expect("write");
        w.set_encoding(ChunkEncoding::Delta).expect("switch");
        for r in &t.records[2..] {
            w.write_record(r).expect("write");
        }
        let bytes = w.finish().expect("finish");
        let back = from_binary(&bytes).expect("mixed decode");
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn corrupt_delta_chunk_is_rejected_with_its_chunk_index() {
        let mut t = delta_sample();
        t.meta.chunk_records = 1;
        let mut bytes = to_binary(&t);
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        // Chunk 0's payload length lives right after the header+meta.
        let chunk0_payload_len = u32::from_le_bytes(
            bytes[16 + meta_len + 4..16 + meta_len + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        let second_chunk_payload =
            16 + meta_len + (CHUNK_HEADER_BYTES + chunk0_payload_len) + CHUNK_HEADER_BYTES;
        bytes[second_chunk_payload] ^= 0x40;
        match from_binary(&bytes) {
            Err(TraceError::BadChunk { chunk: 1, reason }) => {
                assert!(
                    reason.contains("crc mismatch") || reason.contains("delta"),
                    "{reason}"
                );
            }
            other => panic!("expected a chunk-1 error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_delta_chunk_is_rejected() {
        let mut t = delta_sample();
        t.meta.chunk_records = 1;
        let bytes = to_binary(&t);
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let chunk0_payload_len = u32::from_le_bytes(
            bytes[16 + meta_len + 4..16 + meta_len + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        // Cut mid-way through the second chunk's payload.
        let cut =
            16 + meta_len + (CHUNK_HEADER_BYTES + chunk0_payload_len) + CHUNK_HEADER_BYTES + 2;
        match from_binary(&bytes[..cut]) {
            Err(TraceError::BadChunk { chunk: 1, reason }) => {
                assert!(reason.contains("truncated"), "{reason}");
            }
            other => panic!("expected a chunk-1 truncation error, got {other:?}"),
        }
    }

    #[test]
    fn v2_files_remain_readable() {
        let t = sample();
        let v2 = to_binary_v2(&t);
        let back = from_binary(&v2).expect("v2 decode");
        assert_eq!(back, t);
        // And re-encoding a v2 decode produces the canonical v3 bytes.
        assert_eq!(to_binary(&back), to_binary(&t));
    }

    #[test]
    fn unknown_chunk_encoding_is_rejected() {
        let mut t = sample();
        t.meta.chunk_records = 1;
        let mut bytes = to_binary(&t);
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        bytes[16 + meta_len + 12] = 9; // chunk 0's encoding byte
        match from_binary(&bytes) {
            Err(TraceError::BadChunk { chunk: 0, reason }) => {
                assert!(reason.contains("unknown chunk encoding"), "{reason}");
            }
            other => panic!("expected an unknown-encoding error, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_rejects_imprecise_values() {
        let mut t = sample();
        t.records[0].lba = 1 << 60;
        assert!(matches!(
            to_jsonl(&t),
            Err(TraceError::BadRecord { index: 0, .. })
        ));
    }

    #[test]
    fn jsonl_rejects_count_mismatch() {
        let t = sample();
        let text = to_jsonl(&t).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            from_jsonl(&truncated),
            Err(TraceError::Truncated(_))
        ));
    }
}
