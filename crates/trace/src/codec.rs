//! Binary and JSONL codecs for [`Trace`].
//!
//! Two encodings of the same model, both self-describing and versioned:
//!
//! - **Binary** (`.trace`): an 8-byte magic, a little-endian header, a
//!   JSON metadata blob, then fixed 28-byte little-endian records. This
//!   is the compact interchange format; encoding is canonical, so
//!   decode → re-encode reproduces the input byte for byte.
//! - **JSONL** (`.jsonl`): the first line is the metadata object, each
//!   following line one record. This is the greppable/diffable export;
//!   it is exact for values below 2⁵³ (encoding larger timestamps or
//!   LBAs is rejected rather than silently rounded).
//!
//! Layout of one binary record (offsets in bytes):
//!
//! | 0..8 | 8..16 | 16..20 | 20..24 | 24..26 | 26 | 27 |
//! |---|---|---|---|---|---|---|
//! | `at_ns` u64 | `lba` u64 | `sectors` u32 | `stream` u32 | `dev` u16 | `op` u8 | reserved (0) |

use std::fmt;

use trail_sim::SimTime;
use trail_telemetry::{JsonValue, StreamId};

use crate::format::{Trace, TraceMeta, TraceOp, TraceRecord, TRACE_VERSION};

/// The binary magic: `b"TRAILTRC"`.
pub const TRACE_MAGIC: [u8; 8] = *b"TRAILTRC";

/// Size of one binary record in bytes.
pub const RECORD_BYTES: usize = 28;

/// Largest integer JSONL can carry exactly (2⁵³).
const JSON_EXACT_MAX: u64 = 1 << 53;

/// Why a trace failed to decode (or encode to JSONL).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceError {
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The input's version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The input ended before the declared content did.
    Truncated(String),
    /// The metadata header is malformed.
    BadMeta(String),
    /// A record is malformed.
    BadRecord {
        /// Zero-based record index.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trail trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "trace version {v} unsupported (max {TRACE_VERSION})")
            }
            TraceError::Truncated(what) => write!(f, "truncated trace: {what}"),
            TraceError::BadMeta(why) => write!(f, "bad trace metadata: {why}"),
            TraceError::BadRecord { index, reason } => {
                write!(f, "bad trace record {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The canonical metadata object both codecs embed. `seed` is carried as
/// a decimal string so 64-bit seeds survive the f64 JSON number space.
fn meta_json(meta: &TraceMeta, records: usize) -> JsonValue {
    JsonValue::obj(vec![
        ("format", JsonValue::str("trail-trace")),
        ("version", JsonValue::Num(f64::from(TRACE_VERSION))),
        ("source", JsonValue::str(meta.source.clone())),
        ("seed", JsonValue::str(meta.seed.to_string())),
        ("devices", JsonValue::Num(f64::from(meta.devices))),
        ("note", JsonValue::str(meta.note.clone())),
        ("records", JsonValue::Num(records as f64)),
    ])
}

fn parse_meta(v: &JsonValue) -> Result<(TraceMeta, Option<usize>), TraceError> {
    let bad = |why: &str| TraceError::BadMeta(why.to_string());
    let format = v
        .get("format")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing format"))?;
    if format != "trail-trace" {
        return Err(bad(&format!("format is {format:?}, not \"trail-trace\"")));
    }
    let version = v
        .get("version")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad("missing version"))? as u16;
    if version == 0 || version > TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let seed = match v.get("seed") {
        Some(JsonValue::Str(s)) => s
            .parse::<u64>()
            .map_err(|_| bad(&format!("seed {s:?} is not a u64")))?,
        Some(JsonValue::Num(n)) => *n as u64,
        _ => 0,
    };
    let devices = v.get("devices").and_then(JsonValue::as_f64).unwrap_or(0.0) as u16;
    let records = v
        .get("records")
        .and_then(JsonValue::as_f64)
        .map(|n| n as usize);
    Ok((
        TraceMeta {
            source: v
                .get("source")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            seed,
            devices,
            note: v
                .get("note")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
        },
        records,
    ))
}

/// Encodes a trace to the canonical binary form.
#[must_use]
pub fn to_binary(trace: &Trace) -> Vec<u8> {
    let meta = meta_json(&trace.meta, trace.records.len()).to_json();
    let meta = meta.as_bytes();
    let mut out = Vec::with_capacity(24 + meta.len() + RECORD_BYTES * trace.records.len());
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(meta);
    out.extend_from_slice(&(trace.records.len() as u64).to_le_bytes());
    for r in &trace.records {
        out.extend_from_slice(&r.at.as_nanos().to_le_bytes());
        out.extend_from_slice(&r.lba.to_le_bytes());
        out.extend_from_slice(&r.sectors.to_le_bytes());
        out.extend_from_slice(&r.stream.0.to_le_bytes());
        out.extend_from_slice(&r.dev.to_le_bytes());
        out.push(r.op.code());
        out.push(0); // reserved
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TraceError::Truncated(what.to_string()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self, what: &str) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Decodes a binary trace.
///
/// # Errors
///
/// Any [`TraceError`]: bad magic, unsupported version, truncation, or a
/// malformed metadata blob or record.
pub fn from_binary(bytes: &[u8]) -> Result<Trace, TraceError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8, "magic")? != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = r.u16("version")?;
    if version == 0 || version > TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let _flags = r.u16("flags")?;
    let meta_len = r.u32("meta length")? as usize;
    let meta_bytes = r.take(meta_len, "metadata blob")?;
    let meta_text = std::str::from_utf8(meta_bytes)
        .map_err(|_| TraceError::BadMeta("metadata is not UTF-8".to_string()))?;
    let meta_value = JsonValue::parse(meta_text).map_err(|e| TraceError::BadMeta(e.to_string()))?;
    let (meta, _) = parse_meta(&meta_value)?;
    let count = r.u64("record count")? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for index in 0..count {
        let at_ns = r.u64("record arrival")?;
        let lba = r.u64("record lba")?;
        let sectors = r.u32("record sectors")?;
        let stream = StreamId(r.u32("record stream")?);
        let dev = r.u16("record device")?;
        let op_code = r.take(2, "record op")?[0];
        let op = TraceOp::from_code(op_code).ok_or_else(|| TraceError::BadRecord {
            index,
            reason: format!("unknown op code {op_code}"),
        })?;
        records.push(TraceRecord {
            at: SimTime::from_nanos(at_ns),
            op,
            dev,
            lba,
            sectors,
            stream,
        });
    }
    Ok(Trace { meta, records })
}

/// Encodes a trace to JSONL (metadata line, then one record per line).
///
/// # Errors
///
/// [`TraceError::BadRecord`] if an arrival or LBA exceeds 2⁵³ and would
/// lose precision as a JSON number.
pub fn to_jsonl(trace: &Trace) -> Result<String, TraceError> {
    let mut out = meta_json(&trace.meta, trace.records.len()).to_json();
    out.push('\n');
    for (index, r) in trace.records.iter().enumerate() {
        for (what, v) in [("arrival", r.at.as_nanos()), ("lba", r.lba)] {
            if v >= JSON_EXACT_MAX {
                return Err(TraceError::BadRecord {
                    index,
                    reason: format!("{what} {v} exceeds the exact JSON number range"),
                });
            }
        }
        out.push_str(
            &JsonValue::obj(vec![
                ("at_ns", JsonValue::Num(r.at.as_nanos() as f64)),
                ("op", JsonValue::str(r.op.letter())),
                ("dev", JsonValue::Num(f64::from(r.dev))),
                ("lba", JsonValue::Num(r.lba as f64)),
                ("sectors", JsonValue::Num(f64::from(r.sectors))),
                ("stream", JsonValue::Num(f64::from(r.stream.0))),
            ])
            .to_json(),
        );
        out.push('\n');
    }
    Ok(out)
}

/// Decodes a JSONL trace.
///
/// # Errors
///
/// [`TraceError::BadMeta`] or [`TraceError::BadRecord`] describing the
/// first malformed line.
pub fn from_jsonl(text: &str) -> Result<Trace, TraceError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let meta_line = lines
        .next()
        .ok_or_else(|| TraceError::Truncated("empty input".to_string()))?;
    let meta_value = JsonValue::parse(meta_line).map_err(|e| TraceError::BadMeta(e.to_string()))?;
    let (meta, declared) = parse_meta(&meta_value)?;
    let mut records = Vec::new();
    for (index, line) in lines.enumerate() {
        let bad = |reason: String| TraceError::BadRecord { index, reason };
        let v = JsonValue::parse(line).map_err(|e| bad(e.to_string()))?;
        let num = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad(format!("missing {key}")))
        };
        let op_letter = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing op".to_string()))?;
        let op =
            TraceOp::from_letter(op_letter).ok_or_else(|| bad(format!("bad op {op_letter:?}")))?;
        records.push(TraceRecord {
            at: SimTime::from_nanos(num("at_ns")? as u64),
            op,
            dev: num("dev")? as u16,
            lba: num("lba")? as u64,
            sectors: num("sectors")? as u32,
            stream: StreamId(num("stream")? as u32),
        });
    }
    if let Some(declared) = declared {
        if declared != records.len() {
            return Err(TraceError::Truncated(format!(
                "metadata declares {declared} records, found {}",
                records.len()
            )));
        }
    }
    Ok(Trace { meta, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            meta: TraceMeta {
                source: "test".to_string(),
                seed: u64::MAX - 1,
                devices: 3,
                note: "with \"quotes\"".to_string(),
            },
            records: vec![
                TraceRecord {
                    at: SimTime::from_nanos(0),
                    op: TraceOp::Write,
                    dev: 0,
                    lba: 8,
                    sectors: 8,
                    stream: StreamId::UNTAGGED,
                },
                TraceRecord {
                    at: SimTime::from_nanos(1_500_000),
                    op: TraceOp::Read,
                    dev: 2,
                    lba: 123_456_789,
                    sectors: 16,
                    stream: StreamId(7),
                },
            ],
        }
    }

    #[test]
    fn binary_round_trips_byte_identically() {
        let t = sample();
        let bytes = to_binary(&t);
        let back = from_binary(&bytes).expect("decode");
        assert_eq!(back, t);
        // Canonical encoding: decode → re-encode is the identity.
        assert_eq!(to_binary(&back), bytes);
    }

    #[test]
    fn jsonl_round_trips_through_binary() {
        let t = sample();
        let text = to_jsonl(&t).expect("encode");
        let back = from_jsonl(&text).expect("decode");
        assert_eq!(back, t);
        // The cross-codec loop is also the identity on bytes.
        assert_eq!(to_binary(&back), to_binary(&t));
    }

    #[test]
    fn seed_survives_the_f64_number_space() {
        let t = sample();
        let back = from_jsonl(&to_jsonl(&t).unwrap()).unwrap();
        assert_eq!(back.meta.seed, u64::MAX - 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(from_binary(b"not a trace..."), Err(TraceError::BadMagic));
        let mut bytes = to_binary(&sample());
        bytes[8] = 0xFF; // version
        assert!(matches!(
            from_binary(&bytes),
            Err(TraceError::UnsupportedVersion(_))
        ));
        let bytes = to_binary(&sample());
        assert!(matches!(
            from_binary(&bytes[..bytes.len() - 3]),
            Err(TraceError::Truncated(_))
        ));
    }

    #[test]
    fn jsonl_rejects_imprecise_values() {
        let mut t = sample();
        t.records[0].lba = 1 << 60;
        assert!(matches!(
            to_jsonl(&t),
            Err(TraceError::BadRecord { index: 0, .. })
        ));
    }

    #[test]
    fn jsonl_rejects_count_mismatch() {
        let t = sample();
        let text = to_jsonl(&t).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            from_jsonl(&truncated),
            Err(TraceError::Truncated(_))
        ));
    }
}
