//! Parallel sharded replay: partition a trace by stream, replay each
//! shard on its own OS thread against its own simulator and target
//! stack, then merge the per-shard reports deterministically.
//!
//! # Why sharding is sound
//!
//! The simulated stacks are shared-nothing per *device*: a request only
//! interacts with other requests through the queues of the devices it
//! touches. Partitioning records by stream therefore reproduces the
//! single-engine timeline exactly when streams do not share devices
//! (each shard's simulator sees precisely the traffic its devices would
//! have seen), and approximates it otherwise — the same trade every
//! trace-driven parallel simulator makes. What the merge *guarantees*,
//! regardless of routing, is determinism: the merged report is a pure
//! function of the trace, the options and the shard count. Worker
//! thread count never appears in any artifact — threads only decide
//! which shard runs when, and every shard's result is computed in its
//! own sealed simulator.
//!
//! # What the merge does
//!
//! - **Summed**: request/read/write/error counts; latency histograms
//!   (bucket-wise — a histogram is order-free by construction).
//! - **Concatenated**: per-stream metrics (streams are partitioned
//!   across shards, so each lane comes from exactly one shard);
//!   per-volume stats, in shard order.
//! - **Order-independent fold**: the latency fingerprint, a
//!   wrapping sum of per-record mixes over *global* record indices —
//!   shard cursors preserve file-order indices (see
//!   [`crate::replay`]), so the fold commutes with partitioning.
//! - **Maxed**: duration (last completion over all shards), plus the
//!   concurrency witnesses `max_queue_depth` and
//!   `peak_resident_records`, which become per-shard maxima —
//!   documented as such, since no single engine observed the union.
//! - **Sampled union**: queue-depth samples are summed by instant
//!   across the shards that sampled that instant.

use std::collections::BTreeMap;
use std::io::Read;

use trail_sim::parallel_map;

use crate::codec::{TraceError, TraceReader};
use crate::replay::{run_engine, ReplayError, ReplayOptions, ReplayReport, ShardCursor};

/// How to split and schedule a sharded replay.
#[derive(Clone, Copy, Debug)]
pub struct ShardPlan {
    /// Number of shards the trace is partitioned into (records route by
    /// `stream mod shards`). Determines the merged report; `0` is
    /// raised to 1.
    pub shards: u32,
    /// Worker threads to run shards on. Affects wall-clock only — the
    /// merged report is identical for any thread count. `0` is raised
    /// to 1; more threads than shards are not spawned.
    pub threads: usize,
}

impl ShardPlan {
    /// A plan with one worker thread per shard.
    #[must_use]
    pub fn new(shards: u32) -> ShardPlan {
        ShardPlan {
            shards,
            threads: shards.max(1) as usize,
        }
    }
}

/// Replays a binary trace stream sharded by stream tag, one engine per
/// shard on [`ShardPlan::threads`] worker threads, and merges the
/// per-shard reports into one [`ReplayReport`] (see the module docs for
/// the exact merge rules).
///
/// `open` is called once per shard to produce an independent reader
/// over the same bytes — each shard decodes (and CRC-checks) the whole
/// file and feeds only its own records to its engine, so memory stays
/// bounded by queue depth per shard, never O(trace).
///
/// The merged report depends on the trace, the options and
/// [`ShardPlan::shards`] — never on [`ShardPlan::threads`]. With
/// `shards == 1` it is byte-identical to [`crate::replay_stream`];
/// with shared-nothing routing (no two streams touching one device) the
/// latency artifacts match the single-engine replay for any shard
/// count. Both properties are held by `cargo test -p trail-trace`.
///
/// # Errors
///
/// As [`crate::replay_stream`]; shards that see no records are skipped,
/// and only if *every* shard is empty does the call fail with
/// [`ReplayError::EmptyTrace`]. The first failing shard (in shard
/// order) decides the error.
///
/// # Panics
///
/// Panics if `opts.recorder` or `opts.tap` is set — those handles are
/// single-simulator channels (`Rc`-based) and cannot span the per-shard
/// engines. Capture a sharded replay by capturing the shards'
/// input trace instead.
pub fn replay_stream_sharded<R, F>(
    open: F,
    plan: ShardPlan,
    opts: &ReplayOptions,
) -> Result<ReplayReport, ReplayError>
where
    R: Read + 'static,
    F: Fn() -> Result<TraceReader<R>, TraceError> + Sync,
{
    assert!(
        opts.recorder.is_none() && opts.tap.is_none(),
        "sharded replay cannot host a recorder or tap: the handles are \
         single-simulator channels; capture the input trace instead"
    );
    let shards = plan.shards.max(1);
    // The handles above are `Rc`-based, so `ReplayOptions` itself is
    // not `Sync`; carry the plain-data fields across threads and
    // rebuild the options per worker.
    let base = PlainOpts::of(opts);
    let results = parallel_map(
        (0..shards).collect::<Vec<u32>>(),
        plan.threads.max(1),
        |shard| -> Result<Option<ReplayReport>, ReplayError> {
            let reader = open().map_err(ReplayError::Trace)?;
            let devices_hint = usize::from(reader.meta().devices).max(1);
            let opts = base.to_options();
            match run_engine(
                Box::new(ShardCursor::new(reader, shard, shards)),
                devices_hint,
                &opts,
            ) {
                Ok(report) => Ok(Some(report)),
                Err(ReplayError::EmptyTrace) => Ok(None),
                Err(e) => Err(e),
            }
        },
    );
    let mut merged: Option<ReplayReport> = None;
    for r in results {
        let Some(report) = r? else { continue };
        merged = Some(match merged {
            None => report,
            Some(acc) => merge_reports(acc, &report),
        });
    }
    merged.ok_or(ReplayError::EmptyTrace)
}

/// The `Send + Sync` subset of [`ReplayOptions`] a shard worker needs.
struct PlainOpts {
    target: crate::replay::TargetKind,
    data_disks: Option<usize>,
    speed: f64,
    sample_every: trail_sim::SimDuration,
    fs_file_blocks: u32,
    faults: trail_sim::FaultPlan,
    max_in_flight: Option<u32>,
    fail_member: Option<crate::replay::FailMember>,
}

impl PlainOpts {
    fn of(opts: &ReplayOptions) -> PlainOpts {
        PlainOpts {
            target: opts.target,
            data_disks: opts.data_disks,
            speed: opts.speed,
            sample_every: opts.sample_every,
            fs_file_blocks: opts.fs_file_blocks,
            faults: opts.faults.clone(),
            max_in_flight: opts.max_in_flight,
            fail_member: opts.fail_member,
        }
    }

    fn to_options(&self) -> ReplayOptions {
        ReplayOptions {
            target: self.target,
            data_disks: self.data_disks,
            speed: self.speed,
            sample_every: self.sample_every,
            fs_file_blocks: self.fs_file_blocks,
            recorder: None,
            tap: None,
            faults: self.faults.clone(),
            max_in_flight: self.max_in_flight,
            fail_member: self.fail_member,
        }
    }
}

/// Folds `b` into `a` per the module-doc merge rules. Merging a single
/// report is the identity, which is what makes `shards == 1`
/// byte-identical to the unsharded path.
fn merge_reports(mut a: ReplayReport, b: &ReplayReport) -> ReplayReport {
    assert_eq!(
        a.target, b.target,
        "shards replayed against different targets"
    );
    assert_eq!(
        a.started_at, b.started_at,
        "shard simulators booted to different start instants; the \
         deterministic boot invariant is broken"
    );
    a.requests += b.requests;
    a.reads += b.reads;
    a.writes += b.writes;
    a.errors += b.errors;
    a.duration = a.duration.max(b.duration);
    a.latency.merge(&b.latency);
    a.read_latency.merge(&b.read_latency);
    a.write_latency.merge(&b.write_latency);
    a.streams.merge(&b.streams);
    a.latency_fingerprint = a.latency_fingerprint.wrapping_add(b.latency_fingerprint);
    a.peak_resident_records = a.peak_resident_records.max(b.peak_resident_records);
    a.max_queue_depth = a.max_queue_depth.max(b.max_queue_depth);
    let mut by_instant: BTreeMap<trail_sim::SimTime, u32> = BTreeMap::new();
    for (at, depth) in a.queue_depth.iter().chain(b.queue_depth.iter()) {
        *by_instant.entry(*at).or_insert(0) += depth;
    }
    a.queue_depth = by_instant.into_iter().collect();
    a.volume_stats.extend(b.volume_stats.iter().cloned());
    a
}
