//! Capturing a live workload from a running stack.
//!
//! [`TraceCapture`] implements [`SubmitTap`], the observation hook every
//! stack exposes through `set_tap` (on `BlockStack`, `TrailDriver`,
//! `MultiTrail`, `StandardDriver`, and the umbrella `BuiltStack`).
//! Install one before driving a scenario and every request submitted to
//! the stack — directly, from a file system, or from the database
//! engine — is recorded at its arrival instant. The result is the
//! *offered* workload, independent of how the stack serviced it, which
//! is exactly what open-loop replay needs.

use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

use trail_blockio::{StreamId, SubmitTap, TapHandle};
use trail_disk::Lba;
use trail_sim::SimTime;

use crate::codec::TraceWriter;
use crate::format::{Trace, TraceMeta, TraceOp, TraceRecord};

/// A [`SubmitTap`] that accumulates every submission as a
/// [`TraceRecord`] with **absolute** simulator arrival times. Call
/// [`Trace::rebase`] (or [`Trace::rebase_to_first`]) on the taken trace
/// to anchor it at an epoch of your choosing.
#[derive(Debug, Default)]
pub struct TraceCapture {
    records: RefCell<Vec<TraceRecord>>,
}

impl TraceCapture {
    /// Creates an empty capture, shareable as a [`TapHandle`].
    #[must_use]
    pub fn new() -> Rc<TraceCapture> {
        Rc::new(TraceCapture::default())
    }

    /// This capture as the [`TapHandle`] the `set_tap` methods take.
    #[must_use]
    pub fn handle(self: &Rc<Self>) -> TapHandle {
        Rc::clone(self) as TapHandle
    }

    /// Number of requests captured so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// `true` when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.borrow().is_empty()
    }

    /// Drains the captured records into a [`Trace`] under `meta`
    /// (`meta.devices` is raised to cover every captured device index).
    /// Times are absolute; rebase before storing.
    #[must_use]
    pub fn take(&self, mut meta: TraceMeta) -> Trace {
        let records = std::mem::take(&mut *self.records.borrow_mut());
        if let Some(max_dev) = records.iter().map(|r| r.dev).max() {
            meta.devices = meta.devices.max(max_dev + 1);
        }
        Trace { meta, records }
    }
}

impl SubmitTap for TraceCapture {
    fn on_submit(
        &self,
        at: SimTime,
        dev: u32,
        lba: Lba,
        sectors: u32,
        is_read: bool,
        stream: StreamId,
    ) {
        self.records.borrow_mut().push(TraceRecord {
            at,
            op: if is_read {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            dev: dev.min(u32::from(u16::MAX)) as u16,
            lba,
            sectors,
            stream,
        });
    }
}

/// A [`SubmitTap`] that streams every submission straight into a
/// chunked [`TraceWriter`] instead of accumulating a `Vec` — the
/// bounded-memory counterpart of [`TraceCapture`] for captures too big
/// to hold. Arrivals are rebased on the fly against a fixed `epoch`
/// chosen at construction (pass the simulator's current time to anchor
/// the capture at "now"), so no end-of-run rewrite pass is needed.
///
/// [`SubmitTap::on_submit`] cannot return errors, so the first write
/// failure is latched: later submissions are dropped and
/// [`StreamingCapture::finish`] returns the latched error instead of a
/// silently short trace. Because records are written as they arrive,
/// the stored trace is in submission order — sorted by arrival, but
/// same-instant submissions from different streams may not be in
/// `(arrival, stream)` order; normalize after decoding if a canonical
/// trace is required.
pub struct StreamingCapture<W: Write> {
    inner: RefCell<StreamingInner<W>>,
    epoch: SimTime,
}

struct StreamingInner<W: Write> {
    writer: Option<TraceWriter<W>>,
    error: Option<String>,
}

impl<W: Write + 'static> StreamingCapture<W> {
    /// Opens a streaming capture over `w`: writes the v2 header for
    /// `meta` immediately and returns the tap, shareable as a
    /// [`TapHandle`]. `meta.devices` must already cover the devices the
    /// stack will submit to (a streamed header cannot be patched
    /// afterwards the way [`TraceCapture::take`] patches its metadata).
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the header.
    pub fn new(w: W, meta: &TraceMeta, epoch: SimTime) -> io::Result<Rc<StreamingCapture<W>>> {
        let writer = TraceWriter::new(w, meta)?;
        Ok(Rc::new(StreamingCapture {
            inner: RefCell::new(StreamingInner {
                writer: Some(writer),
                error: None,
            }),
            epoch,
        }))
    }

    /// This capture as the [`TapHandle`] the `set_tap` methods take.
    #[must_use]
    pub fn handle(self: &Rc<Self>) -> TapHandle {
        Rc::clone(self) as TapHandle
    }

    /// Requests written so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.inner
            .borrow()
            .writer
            .as_ref()
            .map_or(0, TraceWriter::records_written)
    }

    /// Closes the capture: flushes the tail chunk and footer and
    /// returns the inner writer.
    ///
    /// # Errors
    ///
    /// The first latched submission-time write error, or any error from
    /// finishing the writer. Calling twice is an error.
    pub fn finish(&self) -> io::Result<W> {
        let mut inner = self.inner.borrow_mut();
        if let Some(error) = inner.error.take() {
            return Err(io::Error::other(error));
        }
        let writer = inner
            .writer
            .take()
            .ok_or_else(|| io::Error::other("streaming capture already finished"))?;
        writer.finish()
    }
}

impl<W: Write> SubmitTap for StreamingCapture<W> {
    fn on_submit(
        &self,
        at: SimTime,
        dev: u32,
        lba: Lba,
        sectors: u32,
        is_read: bool,
        stream: StreamId,
    ) {
        let mut inner = self.inner.borrow_mut();
        if inner.error.is_some() {
            return;
        }
        let Some(writer) = inner.writer.as_mut() else {
            inner.error = Some("submission after finish".to_string());
            return;
        };
        let record = TraceRecord {
            at: SimTime::ZERO + at.saturating_duration_since(self.epoch),
            op: if is_read {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            dev: dev.min(u32::from(u16::MAX)) as u16,
            lba,
            sectors,
            stream,
        };
        if let Err(e) = writer.write_record(&record) {
            inner.error = Some(e.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::from_binary;

    #[test]
    fn capture_records_in_submission_order() {
        let cap = TraceCapture::new();
        let tap = cap.handle();
        tap.on_submit(SimTime::from_nanos(500), 1, 64, 8, false, StreamId(3));
        tap.on_submit(SimTime::from_nanos(900), 0, 32, 8, true, StreamId::UNTAGGED);
        assert_eq!(cap.len(), 2);
        let t = cap.take(TraceMeta {
            source: "capture:test".to_string(),
            ..TraceMeta::default()
        });
        assert_eq!(t.meta.devices, 2);
        assert_eq!(t.records[0].op, TraceOp::Write);
        assert_eq!(t.records[1].op, TraceOp::Read);
        assert_eq!(t.records[1].at, SimTime::from_nanos(900));
        assert_eq!(t.records[0].stream, StreamId(3));
        assert!(t.records[1].stream.is_untagged());
        // Taking drains.
        assert!(cap.is_empty());
    }

    #[test]
    fn streaming_capture_writes_rebased_records_through_the_codec() {
        let meta = TraceMeta {
            source: "capture:test".to_string(),
            devices: 2,
            ..TraceMeta::default()
        };
        let cap =
            StreamingCapture::new(Vec::new(), &meta, SimTime::from_nanos(400)).expect("header");
        let tap = cap.handle();
        tap.on_submit(SimTime::from_nanos(500), 1, 64, 8, false, StreamId(3));
        tap.on_submit(SimTime::from_nanos(900), 0, 32, 8, true, StreamId::UNTAGGED);
        assert_eq!(cap.records_written(), 2);
        let bytes = cap.finish().expect("finish");
        let t = from_binary(&bytes).expect("decode");
        assert_eq!(t.meta, meta);
        assert_eq!(t.len(), 2);
        // Rebased against the fixed epoch at capture time.
        assert_eq!(t.records[0].at, SimTime::from_nanos(100));
        assert_eq!(t.records[1].at, SimTime::from_nanos(500));
        assert_eq!(t.records[0].stream, StreamId(3));
        // Finishing twice is an error, not a panic.
        assert!(cap.finish().is_err());
    }
}
