//! Capturing a live workload from a running stack.
//!
//! [`TraceCapture`] implements [`SubmitTap`], the observation hook every
//! stack exposes through `set_tap` (on `BlockStack`, `TrailDriver`,
//! `MultiTrail`, `StandardDriver`, and the umbrella `BuiltStack`).
//! Install one before driving a scenario and every request submitted to
//! the stack — directly, from a file system, or from the database
//! engine — is recorded at its arrival instant. The result is the
//! *offered* workload, independent of how the stack serviced it, which
//! is exactly what open-loop replay needs.

use std::cell::RefCell;
use std::rc::Rc;

use trail_blockio::{StreamId, SubmitTap, TapHandle};
use trail_disk::Lba;
use trail_sim::SimTime;

use crate::format::{Trace, TraceMeta, TraceOp, TraceRecord};

/// A [`SubmitTap`] that accumulates every submission as a
/// [`TraceRecord`] with **absolute** simulator arrival times. Call
/// [`Trace::rebase`] (or [`Trace::rebase_to_first`]) on the taken trace
/// to anchor it at an epoch of your choosing.
#[derive(Debug, Default)]
pub struct TraceCapture {
    records: RefCell<Vec<TraceRecord>>,
}

impl TraceCapture {
    /// Creates an empty capture, shareable as a [`TapHandle`].
    #[must_use]
    pub fn new() -> Rc<TraceCapture> {
        Rc::new(TraceCapture::default())
    }

    /// This capture as the [`TapHandle`] the `set_tap` methods take.
    #[must_use]
    pub fn handle(self: &Rc<Self>) -> TapHandle {
        Rc::clone(self) as TapHandle
    }

    /// Number of requests captured so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// `true` when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.borrow().is_empty()
    }

    /// Drains the captured records into a [`Trace`] under `meta`
    /// (`meta.devices` is raised to cover every captured device index).
    /// Times are absolute; rebase before storing.
    #[must_use]
    pub fn take(&self, mut meta: TraceMeta) -> Trace {
        let records = std::mem::take(&mut *self.records.borrow_mut());
        if let Some(max_dev) = records.iter().map(|r| r.dev).max() {
            meta.devices = meta.devices.max(max_dev + 1);
        }
        Trace { meta, records }
    }
}

impl SubmitTap for TraceCapture {
    fn on_submit(
        &self,
        at: SimTime,
        dev: u32,
        lba: Lba,
        sectors: u32,
        is_read: bool,
        stream: StreamId,
    ) {
        self.records.borrow_mut().push(TraceRecord {
            at,
            op: if is_read {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            dev: dev.min(u32::from(u16::MAX)) as u16,
            lba,
            sectors,
            stream,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_records_in_submission_order() {
        let cap = TraceCapture::new();
        let tap = cap.handle();
        tap.on_submit(SimTime::from_nanos(500), 1, 64, 8, false, StreamId(3));
        tap.on_submit(SimTime::from_nanos(900), 0, 32, 8, true, StreamId::UNTAGGED);
        assert_eq!(cap.len(), 2);
        let t = cap.take(TraceMeta {
            source: "capture:test".to_string(),
            ..TraceMeta::default()
        });
        assert_eq!(t.meta.devices, 2);
        assert_eq!(t.records[0].op, TraceOp::Write);
        assert_eq!(t.records[1].op, TraceOp::Read);
        assert_eq!(t.records[1].at, SimTime::from_nanos(900));
        assert_eq!(t.records[0].stream, StreamId(3));
        assert!(t.records[1].stream.is_untagged());
        // Taking drains.
        assert!(cap.is_empty());
    }
}
