//! Properties of the streaming replay dispatcher and the stream
//! utilities on `Trace`.
//!
//! The load-bearing claim: replacing the pre-scheduled O(trace) issue
//! path with the bounded-memory dispatcher changes *nothing
//! observable* — the dispatcher produces a byte-identical report to a
//! single issuer pre-scheduling the sorted trace, because batches issue
//! in file order and the simulator breaks equal-instant ties by
//! scheduling order.

use std::io::Cursor;

use proptest::prelude::*;

use trail_sim::{Fault, FaultKind, FaultPlan, FaultTarget, SimDuration, SimTime};
use trail_trace::replay::replay_single_issuer;
use trail_trace::{
    from_binary, generate, generate_stream, import_blkparse, replay, replay_stream,
    replay_stream_sharded, to_binary, to_binary_v1, ArrivalModel, ChunkEncoding, ImportOptions,
    ReplayOptions, ShardPlan, StreamId, StreamView, SyntheticSpec, TargetKind, Trace, TraceMeta,
    TraceOp, TraceReader, TraceRecord,
};

fn four_stream_trace(requests: usize) -> Trace {
    generate(&SyntheticSpec {
        requests,
        streams: 4,
        devices: 2,
        read_fraction: 0.3,
        ..SyntheticSpec::default()
    })
}

#[test]
fn streaming_replay_is_byte_identical_to_single_issuer() {
    let trace = four_stream_trace(80);
    for target in [TargetKind::Standard, TargetKind::TrailMulti { logs: 2 }] {
        let opts = ReplayOptions {
            target,
            ..ReplayOptions::default()
        };
        let streamed = replay(&trace, &opts).expect("dispatcher");
        let single = replay_single_issuer(&trace, &opts).expect("single issuer");
        assert_eq!(
            streamed.latency_fingerprint, single.latency_fingerprint,
            "{target:?}: latency fingerprints diverge"
        );
        assert_eq!(
            streamed.to_json().to_json(),
            single.to_json().to_json(),
            "{target:?}: reports diverge"
        );
    }
}

#[test]
fn streaming_replay_is_byte_identical_at_colliding_arrival_instants() {
    // Equal-timestamp arrivals across streams are exactly where a
    // sharding bug would reorder tie-breaks; burst arrivals with a
    // fixed in-burst spacing manufacture collisions on purpose.
    let mut trace = generate(&SyntheticSpec {
        requests: 60,
        streams: 3,
        arrivals: ArrivalModel::Bursty {
            burst: 5,
            iat_in_burst: trail_sim::SimDuration::ZERO,
            gap: trail_sim::SimDuration::from_millis(4),
        },
        read_fraction: 0.2,
        ..SyntheticSpec::default()
    });
    trace.normalize();
    let opts = ReplayOptions {
        target: TargetKind::Trail,
        ..ReplayOptions::default()
    };
    let streamed = replay(&trace, &opts).expect("dispatcher");
    let single = replay_single_issuer(&trace, &opts).expect("single issuer");
    assert_eq!(streamed.to_json().to_json(), single.to_json().to_json());
}

#[test]
fn replay_reports_per_stream_percentiles_for_a_four_stream_trace() {
    // The acceptance shape: a 4-stream synthetic trace against
    // trail_multi2 reports per-stream latency percentiles.
    let trace = four_stream_trace(60);
    let report = replay(
        &trace,
        &ReplayOptions {
            target: TargetKind::TrailMulti { logs: 2 },
            ..ReplayOptions::default()
        },
    )
    .expect("replay");
    assert_eq!(report.streams.streams(), 4);
    let json = report.to_json();
    let streams = json.get("streams").expect("streams section");
    for stream in ["0", "1", "2", "3"] {
        let lane = streams
            .get(stream)
            .unwrap_or_else(|| panic!("lane {stream}"));
        for key in ["p50_ms", "p95_ms", "p99_ms", "p999_ms"] {
            assert!(
                lane.get("latency").and_then(|l| l.get(key)).is_some(),
                "stream {stream} missing {key}"
            );
        }
    }
}

#[test]
fn imported_fixture_replays_with_cpu_streams() {
    let trace = import_blkparse(
        include_str!("data/sample.blkparse"),
        &ImportOptions::default(),
    )
    .expect("import fixture");
    assert_eq!(trace.meta.devices, 2);
    let summary = trace.per_stream_summary();
    assert_eq!(summary.len(), 4, "four CPUs in the fixture");
    assert!(summary.iter().all(|s| !s.stream.is_untagged()));
    let report = replay(&trace, &ReplayOptions::default()).expect("replay import");
    assert_eq!(report.requests, trace.len() as u64);
    assert_eq!(report.streams.streams(), 4);
}

/// A 1-shard sharded replay is the unsharded engine plus an identity
/// merge: every field of the report — queue-depth samples and
/// concurrency witnesses included — must match byte for byte.
#[test]
fn sharded_replay_with_one_shard_is_byte_identical_to_streaming() {
    let spec = SyntheticSpec {
        requests: 150,
        streams: 4,
        devices: 2,
        ..SyntheticSpec::default()
    };
    let bytes = generate_stream(&spec, 16, Vec::new()).expect("encode");
    let opts = ReplayOptions {
        target: TargetKind::TrailMulti { logs: 2 },
        ..ReplayOptions::default()
    };
    let plain = replay_stream(
        TraceReader::new(Cursor::new(bytes.clone())).expect("header"),
        &opts,
    )
    .expect("plain replay");
    let one = replay_stream_sharded(
        || TraceReader::new(Cursor::new(bytes.clone())),
        ShardPlan::new(1),
        &opts,
    )
    .expect("sharded replay");
    assert_eq!(one.to_json().to_json(), plain.to_json().to_json());
}

/// Worker thread count is a scheduling knob, not a semantic one: the
/// merged report is byte-identical however many threads run the shards.
#[test]
fn sharded_replay_is_byte_identical_for_any_thread_count() {
    let spec = SyntheticSpec {
        requests: 200,
        streams: 6,
        devices: 3,
        ..SyntheticSpec::default()
    };
    let bytes = generate_stream(&spec, 32, Vec::new()).expect("encode");
    let opts = ReplayOptions {
        target: TargetKind::Standard,
        ..ReplayOptions::default()
    };
    let run = |threads: usize| {
        replay_stream_sharded(
            || TraceReader::new(Cursor::new(bytes.clone())),
            ShardPlan { shards: 3, threads },
            &opts,
        )
        .expect("sharded replay")
        .to_json()
        .to_json()
    };
    let one = run(1);
    assert_eq!(one, run(2));
    assert_eq!(one, run(3));
}

/// First exercise of the fault plane's non-fatal kinds over a replay:
/// a burst of transient I/O errors plus a latency spike, both armed
/// through the one [`FaultPlan`] grammar. The faulted replay is
/// deterministic (byte-identical across runs), counts the rejected
/// commands, and measurably diverges from the unfaulted timeline.
#[test]
fn transient_error_and_latency_spike_faults_replay_deterministically() {
    let trace = four_stream_trace(150);
    let faults = FaultPlan::new()
        .with(Fault {
            at: SimDuration::from_millis(5),
            target: FaultTarget::Data(0),
            kind: FaultKind::TransientError { count: 3 },
        })
        .with(Fault {
            at: SimDuration::from_millis(10),
            target: FaultTarget::Data(1),
            kind: FaultKind::LatencySpike {
                extra: SimDuration::from_millis(2),
                count: 5,
            },
        });
    let opts = ReplayOptions {
        target: TargetKind::Standard,
        faults: faults.clone(),
        ..ReplayOptions::default()
    };
    let a = replay(&trace, &opts).expect("faulted replay");
    let b = replay(&trace, &opts).expect("faulted replay again");
    assert_eq!(
        a.to_json().to_json(),
        b.to_json().to_json(),
        "a faulted replay must be as deterministic as a clean one"
    );
    assert!(
        a.errors >= 1,
        "transient errors should surface as counted request errors"
    );
    let clean = replay(
        &trace,
        &ReplayOptions {
            target: TargetKind::Standard,
            ..ReplayOptions::default()
        },
    )
    .expect("clean replay");
    assert_eq!(clean.errors, 0);
    assert_ne!(
        a.latency_fingerprint, clean.latency_fingerprint,
        "the armed faults never touched the timeline"
    );
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..5_000_000,
        any::<bool>(),
        0u16..3,
        0u64..100_000,
        1u32..64,
        0u32..5,
    )
        .prop_map(|(at_ns, is_read, dev, lba, sectors, stream)| TraceRecord {
            at: SimTime::from_nanos(at_ns),
            op: if is_read {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            dev,
            lba,
            sectors,
            stream: StreamId(stream),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `normalize` puts any record soup into canonical `(at, stream)`
    /// order, and that order survives a split-by-stream / merge round
    /// trip exactly.
    #[test]
    fn normalize_order_survives_split_merge_round_trips(
        records in proptest::collection::vec(arb_record(), 1..80)
    ) {
        let mut trace = Trace { meta: TraceMeta::default(), records };
        trace.normalize();
        prop_assert!(trace.validate().is_ok());
        let parts = trace.split_by_stream();
        // Views are keyed ascending and preserve within-stream order.
        for part in &parts {
            prop_assert!(part.iter().all(|r| r.stream == part.stream()));
            let ats: Vec<_> = part.iter().map(|r| r.at).collect();
            prop_assert!(ats.windows(2).all(|w| w[0] <= w[1]));
        }
        let merged = Trace::merge(parts.iter().map(StreamView::to_trace));
        prop_assert_eq!(merged, trace);
    }

    /// Splitting never loses or invents records.
    #[test]
    fn split_partitions_the_records(
        records in proptest::collection::vec(arb_record(), 0..60)
    ) {
        let trace = Trace { meta: TraceMeta::default(), records };
        let parts = trace.split_by_stream();
        let total: usize = parts.iter().map(StreamView::len).sum();
        prop_assert_eq!(total, trace.len());
        prop_assert_eq!(parts.len(), trace.streams().len());
    }

    /// Any record soup encodes through the chunked codec and decodes
    /// back exactly, at every chunk size — and re-encoding the decoded
    /// trace reproduces the bytes.
    #[test]
    fn chunked_codec_round_trips_byte_identically(
        records in proptest::collection::vec(arb_record(), 1..120),
        chunk in 1u32..16,
    ) {
        let mut trace = Trace {
            meta: TraceMeta { chunk_records: chunk, ..TraceMeta::default() },
            records,
        };
        trace.normalize();
        let bytes = to_binary(&trace);
        let decoded = from_binary(&bytes).unwrap();
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(to_binary(&decoded), bytes);
    }

    /// A v1 (flat) encoding and a v2 (chunked) encoding of the same
    /// trace decode to the same trace — the convert path cannot lose
    /// anything either way.
    #[test]
    fn v1_and_v2_encodings_decode_identically(
        records in proptest::collection::vec(arb_record(), 1..80)
    ) {
        let mut trace = Trace { meta: TraceMeta::default(), records };
        trace.normalize();
        let via_v1 = from_binary(&to_binary_v1(&trace)).unwrap();
        let via_v2 = from_binary(&to_binary(&trace)).unwrap();
        prop_assert_eq!(&via_v1, &trace);
        prop_assert_eq!(via_v1, via_v2);
    }

    /// Any record soup survives the delta chunk codec exactly, at every
    /// chunk size: decode(encode(t)) == t, re-encoding reproduces the
    /// bytes, and the records agree with a raw encoding of the same
    /// trace.
    #[test]
    fn delta_chunks_round_trip_byte_identically(
        records in proptest::collection::vec(arb_record(), 1..120),
        chunk in 1u32..16,
    ) {
        let mut trace = Trace {
            meta: TraceMeta {
                chunk_records: chunk,
                encoding: ChunkEncoding::Delta,
                ..TraceMeta::default()
            },
            records,
        };
        trace.normalize();
        let bytes = to_binary(&trace);
        let decoded = from_binary(&bytes).unwrap();
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(to_binary(&decoded), bytes);
        let mut raw = trace.clone();
        raw.meta.encoding = ChunkEncoding::Raw;
        let via_raw = from_binary(&to_binary(&raw)).unwrap();
        prop_assert_eq!(via_raw.records, trace.records);
    }

    /// With shared-nothing routing — as many devices as streams, so no
    /// two streams share a disk queue — partitioning by stream cannot
    /// change what any request observes: the sharded replay's merged
    /// latency artifacts equal the single engine's for ANY shard count.
    /// (Concurrency witnesses like max queue depth become per-shard and
    /// are excluded; see the shard module docs.)
    #[test]
    fn sharded_replay_matches_the_single_engine_on_shared_nothing_routing(
        requests in 30usize..120,
        shards in 2u32..6,
        seed in 1u64..500,
    ) {
        let spec = SyntheticSpec {
            seed,
            requests,
            streams: 4,
            devices: 4,
            ..SyntheticSpec::default()
        };
        let bytes = generate_stream(&spec, 16, Vec::new()).expect("encode");
        let opts = ReplayOptions {
            target: TargetKind::Standard,
            ..ReplayOptions::default()
        };
        let single = replay_stream(
            TraceReader::new(Cursor::new(bytes.clone())).expect("header"),
            &opts,
        )
        .expect("single replay");
        let merged = replay_stream_sharded(
            || TraceReader::new(Cursor::new(bytes.clone())),
            ShardPlan { shards, threads: 2 },
            &opts,
        )
        .expect("sharded replay");
        prop_assert_eq!(merged.requests, single.requests);
        prop_assert_eq!(merged.reads, single.reads);
        prop_assert_eq!(merged.writes, single.writes);
        prop_assert_eq!(merged.errors, single.errors);
        prop_assert_eq!(merged.duration, single.duration);
        prop_assert_eq!(merged.latency_fingerprint, single.latency_fingerprint);
        prop_assert_eq!(
            merged.latency.to_json().to_json(),
            single.latency.to_json().to_json()
        );
        prop_assert_eq!(
            merged.read_latency.to_json().to_json(),
            single.read_latency.to_json().to_json()
        );
        prop_assert_eq!(
            merged.write_latency.to_json().to_json(),
            single.write_latency.to_json().to_json()
        );
        prop_assert_eq!(
            merged.streams.to_json().to_json(),
            single.streams.to_json().to_json()
        );
    }
}
