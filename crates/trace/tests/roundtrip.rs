//! Capture→replay round-trip determinism.
//!
//! The contract these tests pin down: replaying a trace at 1× while
//! capturing the replayed submissions yields the *same trace back*
//! (open loop — the stack cannot perturb the offered load), and
//! replaying that capture on a fresh identical stack reproduces the
//! original latency fingerprint and report byte for byte.

use trail_trace::{
    from_binary, generate, replay, to_binary, ReplayOptions, SyntheticSpec, TargetKind,
    TraceCapture, TraceMeta,
};

fn spec() -> SyntheticSpec {
    SyntheticSpec {
        seed: 77,
        requests: 60,
        read_fraction: 0.2,
        ..SyntheticSpec::default()
    }
}

#[test]
fn capture_of_a_replay_reproduces_the_trace() {
    let trace = generate(&spec());
    let cap = TraceCapture::new();
    let report = replay(
        &trace,
        &ReplayOptions {
            target: TargetKind::Trail,
            tap: Some(cap.handle()),
            ..ReplayOptions::default()
        },
    )
    .expect("replay");
    let mut captured = cap.take(TraceMeta {
        source: "capture:replay".to_string(),
        seed: trace.meta.seed,
        ..TraceMeta::default()
    });
    // Captured times are absolute; anchor them at the replay start and
    // the original timeline reappears exactly (1× replay, open loop).
    captured.rebase(report.started_at);
    assert_eq!(captured.len(), trace.len());
    for (got, want) in captured.records.iter().zip(&trace.records) {
        assert_eq!(got.at, want.at);
        assert_eq!(got.op, want.op);
        assert_eq!(got.dev, want.dev);
        assert_eq!(got.lba, want.lba);
        assert_eq!(got.sectors, want.sectors);
    }
}

#[test]
fn captured_trace_replays_with_byte_identical_latencies() {
    let trace = generate(&spec());
    for target in [TargetKind::Standard, TargetKind::Trail] {
        let cap = TraceCapture::new();
        let original = replay(
            &trace,
            &ReplayOptions {
                target,
                tap: Some(cap.handle()),
                ..ReplayOptions::default()
            },
        )
        .expect("first replay");
        let mut captured = cap.take(TraceMeta::default());
        captured.rebase(original.started_at);
        // Round-trip the capture through the binary codec on the way —
        // storage must not perturb it either.
        let captured = from_binary(&to_binary(&captured)).expect("codec");
        let again = replay(
            &captured,
            &ReplayOptions {
                target,
                ..ReplayOptions::default()
            },
        )
        .expect("second replay");
        assert_eq!(
            original.latency_fingerprint, again.latency_fingerprint,
            "{target:?}: capture→replay must reproduce latencies exactly"
        );
        assert_eq!(
            original.to_json().to_json(),
            again.to_json().to_json(),
            "{target:?}: capture→replay must reproduce the report exactly"
        );
        assert_eq!(original.errors, 0);
        assert_eq!(again.errors, 0);
    }
}

#[test]
fn replay_reports_identical_json_across_reruns() {
    // The scenario registry relies on replay JSON being a pure function
    // of (trace, options); exercise that through the public API.
    let trace = generate(&spec());
    let opts = ReplayOptions {
        target: TargetKind::TrailMulti { logs: 2 },
        ..ReplayOptions::default()
    };
    let a = replay(&trace, &opts).expect("a").to_json().to_json();
    let b = replay(&trace, &opts).expect("b").to_json().to_json();
    assert_eq!(a, b);
}
