//! # trail-tpcc: the TPC-C workload for the Trail reproduction
//!
//! Generates the paper's database workload (DSN 2002, §5.2): the standard
//! TPC-C transaction mix over a w = 1 warehouse, driven by closed-loop
//! terminals against the [`trail_db`] engine. Tables 2 and 3 of the paper
//! come out of [`run`] with different storage stacks and flush policies:
//!
//! - `EXT2+Trail`: [`trail_db::TrailStack`], every-commit forces,
//!   terminals chain on durability;
//! - `EXT2`: [`trail_db::StandardStack`], every-commit forces, terminals
//!   chain on durability;
//! - `EXT2+GC`: [`trail_db::StandardStack`], group commit by log-buffer
//!   size, terminals chain on control (the commit returns before the
//!   force — which is why its *response time* balloons).
//!
//! Population is an untimed "restore from backup" ([`populate`]) followed
//! by cache warming, substituting for the paper's 200 000 warm-up
//! transactions (see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
pub mod schema;
mod terminal;
mod workload;

pub use gen::{nurand, TxnType};
pub use schema::{row, Scale};
pub use terminal::{run, ChainOn, RunConfig, TpccReport};
pub use workload::{populate, CpuModel, Workload};
