//! TPC-C random-input helpers: the non-uniform NURand distribution and the
//! transaction-type mix.

use rand::rngs::SmallRng;
use rand::Rng;

/// TPC-C's NURand(A, x, y): a non-uniform distribution over `[x, y]` with
/// a hot set, used for customer and item selection (spec §2.1.6).
///
/// `c` is the per-field constant (any fixed value is spec-conformant for a
/// given run).
pub fn nurand(rng: &mut SmallRng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// The five TPC-C transaction types.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TxnType {
    /// New-Order (45 % of the mix; the tpmC-counted transaction).
    NewOrder,
    /// Payment (43 %).
    Payment,
    /// Order-Status (4 %).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-Level (4 %).
    StockLevel,
}

impl TxnType {
    /// Draws a transaction type from the spec's standard mix.
    pub fn draw(rng: &mut SmallRng) -> TxnType {
        match rng.gen_range(0..100u32) {
            0..=44 => TxnType::NewOrder,
            45..=87 => TxnType::Payment,
            88..=91 => TxnType::OrderStatus,
            92..=95 => TxnType::Delivery,
            _ => TxnType::StockLevel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range_and_is_nonuniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            let v = nurand(&mut rng, 255, 42, 1, 100);
            assert!((1..=100).contains(&v));
            counts[(v - 1) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) > 1.5,
            "NURand should be visibly skewed: max {max} min {min}"
        );
    }

    #[test]
    fn mix_approximates_spec_percentages() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(TxnType::draw(&mut rng)).or_insert(0u32) += 1;
        }
        let pct = |t: TxnType| f64::from(counts[&t]) * 100.0 / n as f64;
        assert!((pct(TxnType::NewOrder) - 45.0).abs() < 1.0);
        assert!((pct(TxnType::Payment) - 43.0).abs() < 1.0);
        assert!((pct(TxnType::OrderStatus) - 4.0).abs() < 0.5);
        assert!((pct(TxnType::Delivery) - 4.0).abs() < 0.5);
        assert!((pct(TxnType::StockLevel) - 4.0).abs() < 0.5);
    }
}
