//! Transaction-profile generation and database population.
//!
//! Each profile emits the op list a real TPC-C implementation would issue
//! against the storage engine: the reads it performs, the rows it updates
//! or inserts, and the CPU it burns. Row sizes follow the spec, so the log
//! volume per transaction (~4.4 KB average with before-images) matches
//! what the paper's Berkeley DB setup produced (Table 3's group-commit
//! counts corroborate this).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::Rng;
use trail_db::{Op, TxnSpec};
use trail_sim::SimDuration;

use crate::gen::{nurand, TxnType};
use crate::schema::{key, row, row_size, table, Scale};

/// Per-transaction-type CPU cost (a 300-MHz-Pentium-II-era pathlength;
/// the paper notes CPU time per transaction is much smaller than the
/// logging I/O delay).
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// New-Order CPU.
    pub new_order: SimDuration,
    /// Payment CPU.
    pub payment: SimDuration,
    /// Order-Status CPU.
    pub order_status: SimDuration,
    /// Delivery CPU.
    pub delivery: SimDuration,
    /// Stock-Level CPU.
    pub stock_level: SimDuration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            new_order: SimDuration::from_micros(4_000),
            payment: SimDuration::from_micros(2_000),
            order_status: SimDuration::from_micros(2_000),
            delivery: SimDuration::from_micros(5_000),
            stock_level: SimDuration::from_micros(3_000),
        }
    }
}

/// Mutable workload state: order counters, delivery queue positions, the
/// RNG, and the CPU model.
pub struct Workload {
    scale: Scale,
    rng: SmallRng,
    cpu: CpuModel,
    next_o_id: HashMap<(u32, u32), u64>,
    next_delivery: HashMap<(u32, u32), u64>,
    history_seq: u64,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("scale", &self.scale)
            .finish()
    }
}

impl Workload {
    /// Creates a workload generator; `initial_orders` per district must
    /// match what [`populate`] loaded.
    pub fn new(scale: Scale, seed: u64, cpu: CpuModel) -> Self {
        let mut next_o_id = HashMap::new();
        let mut next_delivery = HashMap::new();
        for w in 1..=scale.warehouses {
            for d in 1..=scale.districts {
                next_o_id.insert((w, d), u64::from(scale.initial_orders_per_district));
                next_delivery.insert((w, d), u64::from(scale.initial_orders_per_district) / 2);
            }
        }
        Workload {
            scale,
            rng: trail_sim::rng(seed),
            cpu,
            next_o_id,
            next_delivery,
            history_seq: 0,
        }
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    fn pick_wd(&mut self) -> (u32, u32) {
        let w = self.rng.gen_range(1..=self.scale.warehouses);
        let d = self.rng.gen_range(1..=self.scale.districts);
        (w, d)
    }

    fn pick_customer(&mut self, w: u32, d: u32) -> u64 {
        let c = nurand(
            &mut self.rng,
            1023,
            259,
            1,
            u64::from(self.scale.customers_per_district),
        ) as u32;
        key::customer(&self.scale, w, d, c)
    }

    fn pick_item(&mut self) -> u32 {
        nurand(&mut self.rng, 8191, 7911, 1, u64::from(self.scale.items)) as u32
    }

    /// Draws the next transaction from the standard mix.
    pub fn next_txn(&mut self) -> (TxnType, TxnSpec) {
        let ty = TxnType::draw(&mut self.rng);
        let spec = match ty {
            TxnType::NewOrder => self.new_order(),
            TxnType::Payment => self.payment(),
            TxnType::OrderStatus => self.order_status(),
            TxnType::Delivery => self.delivery(),
            TxnType::StockLevel => self.stock_level(),
        };
        (ty, spec)
    }

    /// The New-Order profile (spec §2.4).
    pub fn new_order(&mut self) -> TxnSpec {
        let (w, d) = self.pick_wd();
        let cust = self.pick_customer(w, d);
        let ol_cnt = self.rng.gen_range(5..=15u32);
        let o = {
            let e = self.next_o_id.get_mut(&(w, d)).expect("district exists");
            let o = *e;
            *e += 1;
            o
        };
        let mut ops = vec![
            Op::Read(table::WAREHOUSE, key::warehouse(w)),
            Op::Read(table::DISTRICT, key::district(w, d)),
            Op::Read(table::CUSTOMER, cust),
        ];
        let mut line_writes = Vec::new();
        for line in 0..ol_cnt {
            let i = self.pick_item();
            ops.push(Op::Read(table::ITEM, key::item(i)));
            ops.push(Op::Read(table::STOCK, key::stock(w, i)));
            line_writes.push(Op::Write(
                table::STOCK,
                key::stock(w, i),
                row(key::stock(w, i), row_size::STOCK),
            ));
            line_writes.push(Op::Write(
                table::ORDER_LINE,
                key::order_line(w, d, o, line),
                row(key::order_line(w, d, o, line), row_size::ORDER_LINE),
            ));
        }
        ops.push(Op::Write(
            table::DISTRICT,
            key::district(w, d),
            row(key::district(w, d), row_size::DISTRICT),
        ));
        ops.push(Op::Write(
            table::ORDERS,
            key::order(w, d, o),
            row(key::order(w, d, o), row_size::ORDERS),
        ));
        ops.push(Op::Write(
            table::NEW_ORDER,
            key::new_order(w, d, o),
            row(key::new_order(w, d, o), row_size::NEW_ORDER),
        ));
        ops.extend(line_writes);
        TxnSpec {
            cpu: self.cpu.new_order,
            ops,
        }
    }

    /// The Payment profile (spec §2.5).
    pub fn payment(&mut self) -> TxnSpec {
        let (w, d) = self.pick_wd();
        let cust = self.pick_customer(w, d);
        let h = self.history_seq;
        self.history_seq += 1;
        TxnSpec {
            cpu: self.cpu.payment,
            ops: vec![
                Op::Read(table::WAREHOUSE, key::warehouse(w)),
                Op::Read(table::DISTRICT, key::district(w, d)),
                Op::Read(table::CUSTOMER, cust),
                Op::Write(
                    table::WAREHOUSE,
                    key::warehouse(w),
                    row(key::warehouse(w), row_size::WAREHOUSE),
                ),
                Op::Write(
                    table::DISTRICT,
                    key::district(w, d),
                    row(key::district(w, d), row_size::DISTRICT),
                ),
                Op::Write(table::CUSTOMER, cust, row(cust, row_size::CUSTOMER)),
                Op::Write(table::HISTORY, h, row(h, row_size::HISTORY)),
            ],
        }
    }

    /// The Order-Status profile (spec §2.6, read-only).
    pub fn order_status(&mut self) -> TxnSpec {
        let (w, d) = self.pick_wd();
        let cust = self.pick_customer(w, d);
        let newest = self.next_o_id[&(w, d)];
        let back = self.rng.gen_range(1..=10u64).min(newest.max(1));
        let o = newest.saturating_sub(back);
        let mut ops = vec![
            Op::Read(table::CUSTOMER, cust),
            Op::Read(table::ORDERS, key::order(w, d, o)),
        ];
        for line in 0..10 {
            ops.push(Op::Read(table::ORDER_LINE, key::order_line(w, d, o, line)));
        }
        TxnSpec {
            cpu: self.cpu.order_status,
            ops,
        }
    }

    /// The Delivery profile (spec §2.7): the oldest undelivered order of
    /// every district.
    pub fn delivery(&mut self) -> TxnSpec {
        let w = self.rng.gen_range(1..=self.scale.warehouses);
        let mut ops = Vec::new();
        for d in 1..=self.scale.districts {
            let oldest = {
                let e = self.next_delivery.get_mut(&(w, d)).expect("district");
                if *e >= self.next_o_id[&(w, d)] {
                    continue; // nothing undelivered in this district
                }
                let o = *e;
                *e += 1;
                o
            };
            let cust = self.pick_customer(w, d);
            ops.push(Op::Read(table::NEW_ORDER, key::new_order(w, d, oldest)));
            ops.push(Op::Delete(table::NEW_ORDER, key::new_order(w, d, oldest)));
            ops.push(Op::Write(
                table::ORDERS,
                key::order(w, d, oldest),
                row(key::order(w, d, oldest), row_size::ORDERS),
            ));
            for line in 0..10 {
                ops.push(Op::Write(
                    table::ORDER_LINE,
                    key::order_line(w, d, oldest, line),
                    row(key::order_line(w, d, oldest, line), row_size::ORDER_LINE),
                ));
            }
            ops.push(Op::Write(
                table::CUSTOMER,
                cust,
                row(cust, row_size::CUSTOMER),
            ));
        }
        TxnSpec {
            cpu: self.cpu.delivery,
            ops,
        }
    }

    /// The Stock-Level profile (spec §2.8, read-only): lines of the last
    /// orders joined with their stock rows (thinned from the spec's 200
    /// lines to bound read volume; see `DESIGN.md`).
    pub fn stock_level(&mut self) -> TxnSpec {
        let (w, d) = self.pick_wd();
        let newest = self.next_o_id[&(w, d)];
        let mut ops = vec![Op::Read(table::DISTRICT, key::district(w, d))];
        for back in 1..=20u64 {
            let o = newest.saturating_sub(back);
            for line in 0..2 {
                ops.push(Op::Read(table::ORDER_LINE, key::order_line(w, d, o, line)));
            }
            let i = self.pick_item();
            ops.push(Op::Read(table::STOCK, key::stock(w, i)));
        }
        TxnSpec {
            cpu: self.cpu.stock_level,
            ops,
        }
    }
}

/// Populates the database with the initial TPC-C image (untimed "restore
/// from backup"). Returns the page images the caller must place on the
/// devices and warm into the cache.
pub fn populate(db: &trail_db::Database, scale: &Scale) -> Vec<(trail_db::PageId, Vec<u8>)> {
    let mut images = Vec::new();
    images.extend(db.load(
        table::ITEM,
        (1..=scale.items).map(|i| (key::item(i), row(key::item(i), row_size::ITEM))),
    ));
    for w in 1..=scale.warehouses {
        images.extend(db.load(
            table::WAREHOUSE,
            [(
                key::warehouse(w),
                row(key::warehouse(w), row_size::WAREHOUSE),
            )],
        ));
        images.extend(
            db.load(
                table::STOCK,
                (1..=scale.items)
                    .map(move |i| (key::stock(w, i), row(key::stock(w, i), row_size::STOCK))),
            ),
        );
        for d in 1..=scale.districts {
            images.extend(db.load(
                table::DISTRICT,
                [(
                    key::district(w, d),
                    row(key::district(w, d), row_size::DISTRICT),
                )],
            ));
            images.extend(db.load(
                table::CUSTOMER,
                (1..=scale.customers_per_district).map(move |c| {
                    let k = key::customer(scale, w, d, c);
                    (k, row(k, row_size::CUSTOMER))
                }),
            ));
            let orders = u64::from(scale.initial_orders_per_district);
            images.extend(db.load(
                table::ORDERS,
                (0..orders).map(move |o| {
                    (
                        key::order(w, d, o),
                        row(key::order(w, d, o), row_size::ORDERS),
                    )
                }),
            ));
            images.extend(db.load(
                table::ORDER_LINE,
                (0..orders).flat_map(move |o| {
                    (0..10u32).map(move |l| {
                        let k = key::order_line(w, d, o, l);
                        (k, row(k, row_size::ORDER_LINE))
                    })
                }),
            ));
            images.extend(db.load(
                table::NEW_ORDER,
                (orders / 2..orders).map(move |o| {
                    (
                        key::new_order(w, d, o),
                        row(key::new_order(w, d, o), row_size::NEW_ORDER),
                    )
                }),
            ));
        }
    }
    images
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::new(Scale::tiny(), 11, CpuModel::default())
    }

    #[test]
    fn new_order_shape() {
        let mut w = workload();
        let spec = w.new_order();
        let reads = spec
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Read(..)))
            .count();
        let writes = spec
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Write(..)))
            .count();
        // 3 + 2·ol_cnt reads; 3 + 2·ol_cnt writes, ol_cnt in 5..=15.
        assert!((13..=33).contains(&reads), "reads {reads}");
        assert!((13..=33).contains(&writes), "writes {writes}");
        assert!(!spec.cpu.is_zero());
    }

    #[test]
    fn order_ids_advance_per_district() {
        let mut w = workload();
        let before: u64 = w.next_o_id.values().sum();
        for _ in 0..10 {
            w.new_order();
        }
        let after: u64 = w.next_o_id.values().sum();
        assert_eq!(after - before, 10);
    }

    #[test]
    fn payment_writes_history_with_fresh_keys() {
        let mut w = workload();
        let a = w.payment();
        let b = w.payment();
        let hkey = |s: &TxnSpec| {
            s.ops
                .iter()
                .find_map(|o| match o {
                    Op::Write(t, k, _) if *t == table::HISTORY => Some(*k),
                    _ => None,
                })
                .expect("payment writes history")
        };
        assert_ne!(hkey(&a), hkey(&b));
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let mut w = workload();
        let spec = w.delivery();
        let deletes = spec
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Delete(t, _) if *t == table::NEW_ORDER))
            .count();
        assert_eq!(deletes, w.scale.districts as usize);
        // Eventually the backlog drains and deliveries shrink.
        for _ in 0..100 {
            w.delivery();
        }
        let late = w.delivery();
        assert!(late.ops.len() <= spec.ops.len());
    }

    #[test]
    fn read_only_profiles_write_nothing() {
        let mut w = workload();
        for spec in [w.order_status(), w.stock_level()] {
            assert!(
                spec.ops.iter().all(|o| matches!(o, Op::Read(..))),
                "read-only profile wrote"
            );
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let mut a = Workload::new(Scale::tiny(), 5, CpuModel::default());
        let mut b = Workload::new(Scale::tiny(), 5, CpuModel::default());
        for _ in 0..20 {
            let (ta, sa) = a.next_txn();
            let (tb, sb) = b.next_txn();
            assert_eq!(ta, tb);
            assert_eq!(sa.ops.len(), sb.ops.len());
        }
    }
}
