//! The closed-loop terminal driver and the benchmark report.
//!
//! `concurrency` terminals each run transactions back to back. Under
//! group commit a terminal proceeds as soon as the engine accepts the
//! commit (the paper's simulated Berkeley DB behavior); without group
//! commit it waits for durability — exactly the difference that produces
//! Table 2's response-time column.

use std::cell::RefCell;
use std::rc::Rc;

use trail_db::{Database, TxnResult};
use trail_sim::{Delivered, LatencySummary, SimDuration, SimTime, Simulator};

use crate::gen::TxnType;
use crate::workload::Workload;

/// When a terminal starts its next transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainOn {
    /// As soon as the engine finishes processing (group-commit style).
    Control,
    /// Only when the previous commit is durable (`O_SYNC` style).
    Durable,
}

/// Benchmark-run parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Total transactions to run.
    pub transactions: usize,
    /// Concurrent terminals (the paper's "degree of concurrency").
    pub concurrency: usize,
    /// Next-transaction chaining policy.
    pub chain_on: ChainOn,
}

/// What a run measured.
#[derive(Clone, Debug)]
pub struct TpccReport {
    /// Transactions completed (durable).
    pub transactions: u64,
    /// New-Order transactions among them.
    pub new_orders: u64,
    /// Wall (virtual) time from first issue to last durability.
    pub elapsed: SimDuration,
    /// Transactions per minute, counting all types (the measure the
    /// paper's Table 2 reports as tpmC; see `EXPERIMENTS.md`).
    pub tpmc: f64,
    /// New-Order-only transactions per minute.
    pub tpmc_new_order: f64,
    /// Response times (start → durable).
    pub response: LatencySummary,
    /// Synchronous log forces during the run (Table 3's "number of group
    /// commits").
    pub group_commits: u64,
    /// Total time a log force was outstanding (Table 2's "disk I/O time
    /// for logging").
    pub logging_io_time: SimDuration,
}

struct RunState {
    workload: Workload,
    to_issue: usize,
    completed: u64,
    new_orders: u64,
    response: LatencySummary,
    started_at: SimTime,
    last_durable: SimTime,
}

/// Runs a TPC-C measurement interval to completion (blocking: drives the
/// simulator until every transaction is durable).
///
/// # Panics
///
/// Panics if `config.concurrency` or `config.transactions` is zero.
pub fn run(
    sim: &mut Simulator,
    db: &Database,
    workload: Workload,
    config: RunConfig,
) -> TpccReport {
    assert!(config.transactions > 0, "need at least one transaction");
    assert!(config.concurrency > 0, "need at least one terminal");
    let wal_before = db.wal_stats();
    let state = Rc::new(RefCell::new(RunState {
        workload,
        to_issue: config.transactions,
        completed: 0,
        new_orders: 0,
        response: LatencySummary::new(),
        started_at: sim.now(),
        last_durable: sim.now(),
    }));
    for _ in 0..config.concurrency {
        issue_next(sim, db.clone(), Rc::clone(&state), config.chain_on);
    }
    let total = config.transactions as u64;
    loop {
        if state.borrow().completed >= total {
            break;
        }
        if !sim.step() {
            // A partial group is parked in the log buffer; force it.
            db.force_log(sim);
            assert!(
                db.pending_work() > 0 || state.borrow().completed >= total,
                "terminals stalled with no pending work"
            );
        }
    }
    db.run_until_quiescent(sim);
    let wal_after = db.wal_stats();
    let s = state.borrow();
    let elapsed = s.last_durable.duration_since(s.started_at);
    let minutes = (elapsed.as_secs_f64() / 60.0).max(1e-9);
    TpccReport {
        transactions: s.completed,
        new_orders: s.new_orders,
        elapsed,
        tpmc: s.completed as f64 / minutes,
        tpmc_new_order: s.new_orders as f64 / minutes,
        response: s.response.clone(),
        group_commits: wal_after.flushes - wal_before.flushes,
        logging_io_time: wal_after.logging_io_time - wal_before.logging_io_time,
    }
}

fn issue_next(sim: &mut Simulator, db: Database, state: Rc<RefCell<RunState>>, chain: ChainOn) {
    let (ty, spec) = {
        let mut s = state.borrow_mut();
        if s.to_issue == 0 {
            return;
        }
        s.to_issue -= 1;
        s.workload.next_txn()
    };
    let db2 = db.clone();
    let state_c = Rc::clone(&state);
    let on_control = sim.completion(move |sim: &mut Simulator, del: Delivered<()>| {
        if del.is_ok() && chain == ChainOn::Control {
            issue_next(sim, db2, state_c, chain);
        }
    });
    let db3 = db.clone();
    let state_d = Rc::clone(&state);
    let on_durable = sim.completion(move |sim: &mut Simulator, del: Delivered<TxnResult>| {
        let Ok(res) = del else { return };
        {
            let mut s = state_d.borrow_mut();
            s.completed += 1;
            if ty == TxnType::NewOrder {
                s.new_orders += 1;
            }
            s.response.record(res.response());
            s.last_durable = sim.now();
        }
        if chain == ChainOn::Durable {
            issue_next(sim, db3, state_d, chain);
        }
    });
    db.execute(sim, spec, on_control, on_durable)
        .expect("engine accepts transactions");
}
