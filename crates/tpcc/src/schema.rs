//! The TPC-C schema: table ids, row sizes, and composite-key encodings.
//!
//! Row payloads are synthetic (the experiments measure I/O, not SQL), but
//! their *sizes* follow the TPC-C specification's average row widths, so
//! log volume and page counts match a real kit's.

use trail_db::TableId;

/// TPC-C tables.
pub mod table {
    use super::TableId;
    /// WAREHOUSE.
    pub const WAREHOUSE: TableId = 0;
    /// DISTRICT.
    pub const DISTRICT: TableId = 1;
    /// CUSTOMER.
    pub const CUSTOMER: TableId = 2;
    /// ITEM.
    pub const ITEM: TableId = 3;
    /// STOCK.
    pub const STOCK: TableId = 4;
    /// ORDERS.
    pub const ORDERS: TableId = 5;
    /// ORDER-LINE.
    pub const ORDER_LINE: TableId = 6;
    /// NEW-ORDER.
    pub const NEW_ORDER: TableId = 7;
    /// HISTORY.
    pub const HISTORY: TableId = 8;
}

/// Average row widths in bytes (per the TPC-C specification's row
/// layouts).
pub mod row_size {
    /// WAREHOUSE row.
    pub const WAREHOUSE: usize = 89;
    /// DISTRICT row.
    pub const DISTRICT: usize = 95;
    /// CUSTOMER row.
    pub const CUSTOMER: usize = 655;
    /// ITEM row.
    pub const ITEM: usize = 82;
    /// STOCK row.
    pub const STOCK: usize = 306;
    /// ORDERS row.
    pub const ORDERS: usize = 24;
    /// ORDER-LINE row.
    pub const ORDER_LINE: usize = 54;
    /// NEW-ORDER row.
    pub const NEW_ORDER: usize = 8;
    /// HISTORY row.
    pub const HISTORY: usize = 46;
}

/// Scale parameters. `standard_w1()` matches the paper's w = 1 run;
/// `tiny()` is for fast tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Warehouses (the paper uses 1).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u32,
    /// Items in the catalog (spec: 100 000).
    pub items: u32,
    /// Initial orders per district (spec: 3000; fewer keeps population
    /// memory modest while preserving access patterns).
    pub initial_orders_per_district: u32,
}

impl Scale {
    /// The paper's configuration: one warehouse at full spec scale except
    /// the initial order backlog, which is thinned (it only seeds
    /// Order-Status/Stock-Level reads).
    pub fn standard_w1() -> Self {
        Scale {
            warehouses: 1,
            districts: 10,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders_per_district: 300,
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        Scale {
            warehouses: 1,
            districts: 2,
            customers_per_district: 30,
            items: 200,
            initial_orders_per_district: 10,
        }
    }

    /// Total customers.
    pub fn total_customers(&self) -> u64 {
        u64::from(self.warehouses)
            * u64::from(self.districts)
            * u64::from(self.customers_per_district)
    }
}

/// Key encodings: composite TPC-C keys packed into `u64`.
pub mod key {
    use super::Scale;

    /// WAREHOUSE(w).
    pub fn warehouse(w: u32) -> u64 {
        u64::from(w)
    }

    /// DISTRICT(w, d).
    pub fn district(w: u32, d: u32) -> u64 {
        u64::from(w) * 100 + u64::from(d)
    }

    /// CUSTOMER(w, d, c).
    pub fn customer(scale: &Scale, w: u32, d: u32, c: u32) -> u64 {
        district(w, d) * u64::from(scale.customers_per_district.max(1)) * 2 + u64::from(c)
    }

    /// ITEM(i).
    pub fn item(i: u32) -> u64 {
        u64::from(i)
    }

    /// STOCK(w, i).
    pub fn stock(w: u32, i: u32) -> u64 {
        u64::from(w) * 1_000_000 + u64::from(i)
    }

    /// ORDERS(w, d, o).
    pub fn order(w: u32, d: u32, o: u64) -> u64 {
        (district(w, d) << 40) | o
    }

    /// ORDER-LINE(w, d, o, line).
    pub fn order_line(w: u32, d: u32, o: u64, line: u32) -> u64 {
        (order(w, d, o) << 4) | u64::from(line & 0xF)
    }

    /// NEW-ORDER(w, d, o).
    pub fn new_order(w: u32, d: u32, o: u64) -> u64 {
        order(w, d, o)
    }
}

/// A synthetic row image: `size` bytes stamped with the key so data flows
/// are distinguishable in tests.
pub fn row(key: u64, size: usize) -> Vec<u8> {
    let mut v = vec![(key % 251) as u8; size];
    let stamp = key.to_le_bytes();
    let n = stamp.len().min(size);
    v[..n].copy_from_slice(&stamp[..n]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_within_and_across_tables_scope() {
        let s = Scale::tiny();
        let mut seen = std::collections::HashSet::new();
        for w in 1..=s.warehouses {
            for d in 1..=s.districts {
                assert!(seen.insert(key::district(w, d)));
                for c in 1..=s.customers_per_district {
                    assert!(seen.insert(key::customer(&s, w, d, c)), "cust {w}/{d}/{c}");
                }
                for o in 0..20u64 {
                    assert!(seen.insert(key::order(w, d, o)));
                    for l in 0..15 {
                        assert!(seen.insert(key::order_line(w, d, o, l)), "ol {o}/{l}");
                    }
                }
            }
        }
    }

    #[test]
    fn stock_keys_do_not_collide_across_warehouses() {
        assert_ne!(key::stock(1, 5), key::stock(2, 5));
        assert_ne!(key::stock(1, 5), key::stock(1, 6));
    }

    #[test]
    fn row_is_stamped_and_sized() {
        let r = row(0xABCD, 100);
        assert_eq!(r.len(), 100);
        assert_eq!(u16::from_le_bytes([r[0], r[1]]), 0xABCD);
    }

    #[test]
    fn standard_scale_matches_spec() {
        let s = Scale::standard_w1();
        assert_eq!(s.total_customers(), 30_000);
        assert_eq!(s.items, 100_000);
    }
}
