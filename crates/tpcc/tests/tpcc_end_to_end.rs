//! End-to-end TPC-C runs at test scale: the Table 2/3 shapes must already
//! be visible in miniature.

use std::collections::HashMap;
use std::rc::Rc;

use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_db::{Database, DbConfig, FlushPolicy, StandardStack, TrailStack};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::Simulator;
use trail_tpcc::{populate, run, ChainOn, CpuModel, RunConfig, Scale, TpccReport, Workload};

const LOG_DEV: usize = 0;
const LOG_REGION_START: u64 = 64;
const LOG_REGION_SECTORS: u64 = 60_000;

fn db_config(policy: FlushPolicy) -> DbConfig {
    DbConfig {
        // Large enough that the ~35-page working set mostly fits, as the
        // paper's 300-MB cache did after warm-up; dirty evictions still
        // happen but do not flood Trail's log disk the way a tiny cache
        // would (cache pressure is exercised at full scale in the bench).
        cache_pages: 48,
        flush_policy: policy,
        log_dev: LOG_DEV,
        log_region_start: LOG_REGION_START,
        log_region_sectors: LOG_REGION_SECTORS,
        flush_write_bytes: 8 * 1024,
        table_devices: vec![1, 2],
        // The paper's 300-MB cache never hit checkpoint pressure during a
        // 5000-txn run; dirty pages leave only via eviction. Mirror that.
        dirty_high_watermark: 10_000,
        flush_batch: 8,
        log_before_images: true,
        single_cpu: false,
    }
}

/// Builds devices, populates, warms, runs. `trail` selects the stack.
fn run_tpcc(
    trail: bool,
    policy: FlushPolicy,
    chain: ChainOn,
    txns: usize,
    conc: usize,
) -> TpccReport {
    let mut sim = Simulator::new();
    let disks: Vec<Disk> = (0..3)
        .map(|i| Disk::new(format!("d{i}"), profiles::wd_caviar_10gb()))
        .collect();
    let db = if trail {
        let log = Disk::new("trail-log", profiles::seagate_st41601n());
        format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
        let (drv, _) =
            TrailDriver::start(&mut sim, log, disks.clone(), TrailConfig::default()).unwrap();
        Database::new(Rc::new(TrailStack::new(drv, 3)), db_config(policy))
    } else {
        Database::new(
            Rc::new(StandardStack::new(disks.clone())),
            db_config(policy),
        )
    };
    let scale = Scale::tiny();
    let images = populate(&db, &scale);
    let by_dev: HashMap<usize, &Disk> = disks.iter().enumerate().collect();
    for (pid, bytes) in &images {
        let disk = by_dev[&(pid.dev as usize)];
        for (i, chunk) in bytes.chunks(SECTOR_SIZE).enumerate() {
            let mut sector = [0u8; SECTOR_SIZE];
            sector.copy_from_slice(chunk);
            disk.poke_sector(pid.first_lba() + i as u64, &sector);
        }
        db.warm(*pid, bytes);
    }
    let workload = Workload::new(scale, 42, CpuModel::default());
    run(
        &mut sim,
        &db,
        workload,
        RunConfig {
            transactions: txns,
            concurrency: conc,
            chain_on: chain,
        },
    )
}

#[test]
fn table2_shape_trail_beats_gc_beats_plain() {
    let trail = run_tpcc(true, FlushPolicy::EveryCommit, ChainOn::Durable, 150, 1);
    let plain = run_tpcc(false, FlushPolicy::EveryCommit, ChainOn::Durable, 150, 1);
    let gc = run_tpcc(
        false,
        FlushPolicy::GroupCommit {
            buffer_bytes: 50 * 1024,
        },
        ChainOn::Control,
        150,
        1,
    );
    assert_eq!(trail.transactions, 150);
    assert_eq!(plain.transactions, 150);
    assert_eq!(gc.transactions, 150);

    // Throughput: Trail beats both baselines clearly (Table 2's tpmC row;
    // the GC-vs-plain gap is only ~8 % in the paper and is below noise at
    // this miniature scale — the full-scale bench reports it).
    assert!(
        trail.tpmc > gc.tpmc && trail.tpmc > plain.tpmc * 1.2,
        "tpmC ordering violated: trail {:.0}, gc {:.0}, plain {:.0}",
        trail.tpmc,
        gc.tpmc,
        plain.tpmc
    );
    // Response time: Trail < plain < GC (GC delays commits to fill groups).
    let (t_ms, p_ms, g_ms) = (
        trail.response.mean().as_millis_f64(),
        plain.response.mean().as_millis_f64(),
        gc.response.mean().as_millis_f64(),
    );
    assert!(
        t_ms < p_ms && p_ms < g_ms,
        "response ordering violated: trail {t_ms:.1} ms, plain {p_ms:.1} ms, gc {g_ms:.1} ms"
    );
    // Logging I/O time: Trail far below both baselines (Table 2's middle
    // row; the paper's 42 % reduction versus plain must hold with margin).
    let (t_log, p_log, g_log) = (
        trail.logging_io_time.as_secs_f64(),
        plain.logging_io_time.as_secs_f64(),
        gc.logging_io_time.as_secs_f64(),
    );
    // At this miniature scale Trail's WAL flushes share the log disk with
    // an eviction-writeback stream far heavier (relative to commits) than
    // the paper's big-cache setup ever produced, so demand a clear win
    // rather than the paper's full 42 % margin (the full-scale bench
    // reports the calibrated numbers).
    assert!(
        t_log < 0.8 * g_log && t_log < 0.8 * p_log,
        "logging I/O ordering violated: trail {t_log:.2} s, gc {g_log:.2} s, plain {p_log:.2} s"
    );
    // Group commit batches forces; Trail/plain force every commit.
    assert!(gc.group_commits < plain.group_commits / 2);
}

#[test]
fn table3_shape_group_commits_fall_with_buffer_size() {
    let counts: Vec<u64> = [1usize, 8, 64]
        .iter()
        .map(|&kb| {
            let report = run_tpcc(
                false,
                FlushPolicy::GroupCommit {
                    buffer_bytes: kb * 1024,
                },
                ChainOn::Control,
                120,
                4,
            );
            assert_eq!(report.transactions, 120);
            report.group_commits
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] >= w[1]),
        "group commits must not rise with the buffer: {counts:?}"
    );
    assert!(
        counts[2] * 2 < counts[0],
        "a 64x larger buffer must at least halve the forces: {counts:?}"
    );
}

#[test]
fn concurrency_increases_trail_track_utilization() {
    // §5.2: bursty concurrent commits batch more payload per record, so
    // per-track utilization rises with concurrency.
    let util_at = |conc: usize| -> f64 {
        let mut sim = Simulator::new();
        let disks: Vec<Disk> = (0..3)
            .map(|i| Disk::new(format!("d{i}"), profiles::wd_caviar_10gb()))
            .collect();
        let log = Disk::new("trail-log", profiles::seagate_st41601n());
        format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
        let (drv, _) =
            TrailDriver::start(&mut sim, log, disks.clone(), TrailConfig::default()).unwrap();
        let db = Database::new(
            Rc::new(TrailStack::new(drv.clone(), 3)),
            db_config(FlushPolicy::EveryCommit),
        );
        let scale = Scale::tiny();
        let images = populate(&db, &scale);
        for (pid, bytes) in &images {
            let disk = &disks[pid.dev as usize];
            for (i, chunk) in bytes.chunks(SECTOR_SIZE).enumerate() {
                let mut sector = [0u8; SECTOR_SIZE];
                sector.copy_from_slice(chunk);
                disk.poke_sector(pid.first_lba() + i as u64, &sector);
            }
            db.warm(*pid, bytes);
        }
        let workload = Workload::new(scale, 4242, CpuModel::default());
        run(
            &mut sim,
            &db,
            workload,
            RunConfig {
                transactions: 100,
                concurrency: conc,
                chain_on: ChainOn::Durable,
            },
        );
        drv.with_stats(|s| {
            if s.track_utilization.is_empty() {
                0.0
            } else {
                s.track_utilization.iter().sum::<f64>() / s.track_utilization.len() as f64
            }
        })
    };
    let low = util_at(1);
    let high = util_at(8);
    assert!(
        high > low,
        "utilization should rise with concurrency: c=1 -> {low:.3}, c=8 -> {high:.3}"
    );
}
