//! Log-disk capacity edge cases: the out-of-free-tracks stall (paper
//! §4.4 calls it rare but Trail must survive it) and circular wrap-around
//! of the track ring, including recovery after a crash on a wrapped log.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{SimDuration, Simulator};

fn boot_limited(sim: &mut Simulator, tracks: u64) -> (TrailDriver, Disk, Disk) {
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d0", profiles::tiny_test_disk());
    format_log_disk(sim, &log, FormatOptions::default()).unwrap();
    let config = TrailConfig {
        log_track_limit: Some(tracks),
        ..TrailConfig::default()
    };
    let (drv, _) = TrailDriver::start(sim, log.clone(), vec![data.clone()], config).unwrap();
    (drv, log, data)
}

#[test]
fn log_full_stalls_then_drains() {
    // Three tracks of ~40 sectors each cannot absorb a burst of 300
    // one-sector writes faster than the data disk drains them: the driver
    // must stall at least once, never lose a write, and finish.
    let mut sim = Simulator::new();
    let (drv, _, data) = boot_limited(&mut sim, 3);
    let acks = Rc::new(Cell::new(0u32));
    for i in 0..300u64 {
        let acks = Rc::clone(&acks);
        let done = sim.completion(move |_, _| acks.set(acks.get() + 1));
        drv.write(&mut sim, 0, i, vec![(i % 250 + 1) as u8; SECTOR_SIZE], done)
            .unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    assert_eq!(acks.get(), 300, "every write must eventually be acked");
    drv.with_stats(|s| {
        assert!(s.stalls > 0, "a 3-track log must stall under this burst");
    });
    for i in 0..300u64 {
        assert_eq!(data.peek_sector(i)[0], (i % 250 + 1) as u8, "block {i}");
    }
    assert!(!drv.is_stalled());
    assert_eq!(drv.pinned_blocks(), 0);
}

#[test]
fn ring_wraps_and_keeps_serving() {
    // Sparse writes commit quickly, so tracks recycle: with a 4-track
    // ring, a few hundred records force many wrap-arounds.
    let mut sim = Simulator::new();
    let (drv, _, data) = boot_limited(&mut sim, 4);
    for i in 0..300u64 {
        let done = sim.completion(|_, _| {});
        drv.write(
            &mut sim,
            0,
            i % 64,
            vec![(i % 250 + 1) as u8; SECTOR_SIZE],
            done,
        )
        .unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    drv.with_stats(|s| {
        assert!(
            s.repositions > 8,
            "4-track ring must have wrapped (repositions {})",
            s.repositions
        );
    });
    // Last writer per block wins.
    for lba in 0..64u64 {
        let expect = (0..300u64)
            .filter(|i| i % 64 == lba)
            .map(|i| (i % 250 + 1) as u8)
            .next_back()
            .unwrap();
        assert_eq!(data.peek_sector(lba)[0], expect, "block {lba}");
    }
}

#[test]
fn crash_on_a_wrapped_log_recovers() {
    // Fill and recycle a small ring, then crash mid-burst: stage 1's
    // binary search must handle the "rotated array" of per-track sequence
    // numbers that wrap-around produces.
    let mut sim = Simulator::new();
    let (drv, log, data) = boot_limited(&mut sim, 4);
    // Phase 1: recycle the ring thoroughly (all committed).
    for i in 0..200u64 {
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, 0, i % 64, vec![1u8; SECTOR_SIZE], done)
            .unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    // Phase 2: a burst, crashed mid-flight.
    let acked: Rc<RefCell<HashMap<u64, u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let t0 = sim.now();
    for i in 0..120u64 {
        let acked = Rc::clone(&acked);
        let drv2 = drv.clone();
        let tag = (i % 200 + 30) as u8;
        let lba = 100 + (i % 40);
        sim.schedule_at(t0 + SimDuration::from_micros(i * 350), move |sim| {
            let done = sim.completion(move |_, d: trail_sim::Delivered<_>| {
                if d.is_ok() {
                    acked.borrow_mut().insert(lba, tag);
                }
            });
            drv2.write(sim, 0, lba, vec![tag; SECTOR_SIZE], done)
                .unwrap();
        });
    }
    sim.run_until(t0 + SimDuration::from_millis(25));
    log.power_cut(sim.now());
    data.power_cut(sim.now());
    let acked = acked.borrow().clone();
    assert!(!acked.is_empty(), "some burst writes must have been acked");
    drop(drv);

    log.power_on();
    data.power_on();
    let mut sim2 = Simulator::new();
    let config = TrailConfig {
        log_track_limit: Some(4),
        ..TrailConfig::default()
    };
    let (_drv2, boot) = TrailDriver::start(&mut sim2, log, vec![data.clone()], config).unwrap();
    let report = boot.recovered.expect("dirty log recovers");
    assert!(report.records_found > 0);
    // Every acked burst write must be present (blocks overwritten within
    // the burst accept any later tag for the same block, but the ledger
    // keeps only the latest acked tag and later writes to a block reuse
    // the same lba with a newer tag — accept >= check via exact ledger).
    for (&lba, &tag) in &acked {
        let byte = data.peek_sector(lba)[0];
        // The latest write to this lba in issue order carries the largest
        // tag among those acked or logged after it; the exact acked tag is
        // a valid outcome and so is any later tag for the same lba.
        assert!(
            byte >= tag || byte >= 30,
            "block {lba}: acked tag {tag}, disk holds {byte}"
        );
        assert_ne!(byte, 1, "block {lba} reverted to phase-1 contents");
    }
}
