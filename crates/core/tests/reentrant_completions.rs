//! Re-entrant completion handlers: a handler that immediately submits new
//! I/O through the same driver must not panic or double-borrow, because
//! delivery is deferred — the firing component has fully unwound before
//! the handler runs. These tests chain submissions from inside handlers
//! through both `TrailDriver` and `MultiTrail`, and check that the
//! core-layer telemetry lifecycle stays exact while doing so.

use std::cell::Cell;
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_core::{format_log_disk, FormatOptions, MultiTrail, TrailConfig, TrailDriver};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{Delivered, SimDuration, Simulator};
use trail_telemetry::{EventKind, Layer, MemoryRecorder, RecorderHandle};

fn payload(tag: u8) -> Vec<u8> {
    vec![tag; SECTOR_SIZE]
}

/// Each ack handler submits the next write from inside the delivery — a
/// chain of N writes driven entirely by completions. Before deferred
/// delivery this pattern required manual `schedule_now` trampolines to
/// avoid re-entering the driver's `RefCell`s.
#[test]
fn write_chain_from_inside_handlers_completes() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d0", profiles::tiny_test_disk());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) =
        TrailDriver::start(&mut sim, log, vec![data.clone()], TrailConfig::default()).unwrap();

    fn chain(sim: &mut Simulator, drv: TrailDriver, count: Rc<Cell<u32>>, i: u64) {
        if i >= 25 {
            return;
        }
        let d2 = drv.clone();
        let done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            d.expect("durable");
            count.set(count.get() + 1);
            chain(sim, d2, count, i + 1);
        });
        drv.write(sim, 0, i, payload((i + 1) as u8), done).unwrap();
    }
    let count = Rc::new(Cell::new(0u32));
    chain(&mut sim, drv.clone(), Rc::clone(&count), 0);
    drv.run_until_quiescent(&mut sim);
    assert_eq!(count.get(), 25);
    for i in 0..25u64 {
        assert_eq!(data.peek_sector(i)[0], (i + 1) as u8, "block {i}");
    }
}

/// A read handler that issues a write, whose handler issues a read — the
/// full submit surface exercised re-entrantly, while the driver holds no
/// borrow across any handler.
#[test]
fn read_and_write_interleave_from_handlers() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d0", profiles::tiny_test_disk());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).unwrap();

    let finished = Rc::new(Cell::new(false));
    {
        let drv1 = drv.clone();
        let fin = Rc::clone(&finished);
        let done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            d.expect("write durable");
            let drv2 = drv1.clone();
            let fin = Rc::clone(&fin);
            // Still pinned: served from buffer memory, also via completion.
            let read_done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
                let got = d.expect("read delivered");
                assert_eq!(got.data.as_deref().unwrap()[0], 0x3C);
                let fin = Rc::clone(&fin);
                let final_done = sim.completion(move |_, d: Delivered<IoDone>| {
                    d.expect("second write durable");
                    fin.set(true);
                });
                drv2.write(sim, 0, 9, vec![0x77; SECTOR_SIZE], final_done)
                    .unwrap();
            });
            drv1.read(sim, 0, 5, 1, read_done).unwrap();
        });
        drv.write(&mut sim, 0, 5, payload(0x3C), done).unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    assert!(finished.get());
}

/// The same chaining pattern through `MultiTrail`: handlers submit to
/// blocks that hash to *different* Trail instances, so a delivery from one
/// instance re-enters another mid-cascade.
#[test]
fn multi_trail_handlers_submit_across_instances() {
    let mut sim = Simulator::new();
    let logs: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("log{i}"), profiles::tiny_test_disk()))
        .collect();
    for l in &logs {
        format_log_disk(&mut sim, l, FormatOptions::default()).unwrap();
    }
    let data = vec![Disk::new("d0", profiles::tiny_test_disk())];
    let (multi, _) =
        MultiTrail::start(&mut sim, logs, data.clone(), TrailConfig::default()).unwrap();

    fn chain(sim: &mut Simulator, multi: MultiTrail, count: Rc<Cell<u32>>, lba: u64) {
        if count.get() >= 40 {
            return;
        }
        let m2 = multi.clone();
        let done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            d.expect("durable");
            count.set(count.get() + 1);
            // Stride walks blocks across both instances' hash buckets.
            chain(sim, m2, count, (lba + 7) % 64);
        });
        multi
            .write(sim, 0, lba, vec![(lba + 1) as u8; SECTOR_SIZE], done)
            .unwrap();
    }
    let count = Rc::new(Cell::new(0u32));
    chain(&mut sim, multi.clone(), Rc::clone(&count), 0);
    multi.run_until_quiescent(&mut sim);
    assert_eq!(count.get(), 40);
    let per_log: Vec<u64> = multi
        .drivers()
        .iter()
        .map(|d| d.with_stats(|s| s.log_records))
        .collect();
    assert!(
        per_log.iter().all(|&r| r > 0),
        "the chain must have touched every instance: {per_log:?}"
    );
}

/// Core-layer lifecycle spans stay exact even when every handler is
/// re-entrant: each request gets one Enqueue, at least one Dispatch, and
/// one Complete whose breakdown components sum to its end-to-end latency.
#[test]
fn reentrant_chain_keeps_lifecycle_exact() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d0", profiles::tiny_test_disk());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).unwrap();
    let rec = MemoryRecorder::shared();
    drv.set_recorder(Rc::clone(&rec) as RecorderHandle);

    fn chain(sim: &mut Simulator, drv: TrailDriver, count: Rc<Cell<u32>>, i: u64) {
        if i >= 12 {
            return;
        }
        let d2 = drv.clone();
        let done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            let got = d.expect("durable");
            assert!(got.completed >= got.issued);
            count.set(count.get() + 1);
            chain(sim, d2, count, i + 1);
        });
        drv.write(sim, 0, i * 3, payload(1), done).unwrap();
    }
    let count = Rc::new(Cell::new(0u32));
    chain(&mut sim, drv.clone(), Rc::clone(&count), 0);
    drv.run_until_quiescent(&mut sim);
    sim.run();
    assert_eq!(count.get(), 12);

    let core_events: Vec<_> = rec
        .snapshot()
        .into_iter()
        .filter(|e| e.layer == Layer::Core)
        .collect();
    let enqueues = core_events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Enqueue { .. }))
        .count();
    let dispatches = core_events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Dispatch { .. }))
        .count();
    assert_eq!(enqueues, 12, "one Enqueue per request");
    assert_eq!(dispatches, 12, "one Dispatch per queued chunk");
    let completes: Vec<_> = core_events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Complete { breakdown } => Some((e, breakdown)),
            _ => None,
        })
        .collect();
    assert_eq!(completes.len(), 12, "one Complete per request");
    for (e, b) in completes {
        assert!(b.is_exact(), "breakdown has a residual: {b:?}");
        assert_eq!(b.component_sum(), b.total);
        assert_eq!(e.dur, b.total, "span duration is the end-to-end latency");
        assert!(e.req.is_some(), "Complete must carry its correlation id");
    }
    // Every Complete correlates back to an Enqueue with the same id.
    let enqueue_ids: Vec<u64> = core_events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Enqueue { .. }))
        .map(|e| e.req.expect("Enqueue carries an id"))
        .collect();
    for e in core_events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Complete { .. }))
    {
        assert!(enqueue_ids.contains(&e.req.unwrap()));
    }
}

/// Orphaned tokens cancel instead of vanishing even when the drop happens
/// deep inside a handler cascade (here: the chain stops by dropping the
/// next minted token without submitting it).
#[test]
fn dropping_a_token_mid_cascade_cancels_it() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d0", profiles::tiny_test_disk());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).unwrap();
    let cancelled = Rc::new(Cell::new(false));
    {
        let c2 = Rc::clone(&cancelled);
        let drv2 = drv.clone();
        let done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            d.expect("durable");
            // Mint a follow-up token but abandon it.
            let orphan = sim.completion(move |_, d: Delivered<IoDone>| {
                c2.set(d.is_err());
            });
            drop(orphan);
            let _ = &drv2;
        });
        drv.write(&mut sim, 0, 0, payload(5), done).unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    sim.run();
    assert!(
        cancelled.get(),
        "abandoned token must deliver Err(Cancelled)"
    );
    let wait = sim.now() + SimDuration::from_millis(1);
    sim.run_until(wait);
    assert_eq!(sim.completions().orphan_count(), 0, "orphans drained");
}
