//! Spindle-speed deviation (paper §3.1): "because of the deviation in the
//! disk rotation speed ... the predictions will go awry after a long
//! period of disk idle time. Therefore the Trail driver needs to
//! periodically reposition the log disk head and update the reference
//! point accordingly."
//!
//! The default drive profiles model a perfectly regulated spindle; here a
//! wandering spindle is injected, and the idle-time reference refresh is
//! what keeps predictions accurate.

use std::cell::RefCell;
use std::rc::Rc;

use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_disk::{profiles, Disk};
use trail_sim::{LatencySummary, SimDuration, Simulator};

/// A log disk whose spindle phase wanders by up to ~1.3 ms (≈10 sectors)
/// over a 2-second cycle.
fn wandering_log_disk() -> Disk {
    let mut p = profiles::seagate_st41601n();
    p.mech.spindle_wander = SimDuration::from_micros(1_300);
    p.mech.wander_period = SimDuration::from_secs(2);
    Disk::new("wandering-log", p)
}

/// Boots Trail over the wandering disk, writes once to anchor a reference,
/// idles for `idle`, then measures the next write's latency.
fn write_after_idle(idle: SimDuration, idle_refresh_after: SimDuration) -> f64 {
    let mut sim = Simulator::new();
    let log = wandering_log_disk();
    let data = Disk::new("d0", profiles::wd_caviar_10gb());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let config = TrailConfig {
        idle_reposition_after: idle_refresh_after,
        // Refresh periodically for as long as the idle lasts (the paper's
        // behavior); the default of 1 exists only to keep test event
        // queues finite.
        max_idle_refreshes: 1000,
        ..TrailConfig::default()
    };
    let (trail, _) = TrailDriver::start(&mut sim, log, vec![data], config).unwrap();
    // Anchor writes.
    for i in 0..3u64 {
        let done = sim.completion(|_, _| {});
        trail
            .write(&mut sim, 0, i * 8, vec![1u8; 512], done)
            .unwrap();
        trail.run_until_quiescent(&mut sim);
    }
    // Idle. (run_until advances time; the idle refresh fires if armed and
    // due.)
    let resume_at = sim.now() + idle;
    sim.run_until(resume_at);
    // The probe write.
    let lat = Rc::new(RefCell::new(LatencySummary::new()));
    let l2 = Rc::clone(&lat);
    let done = sim.completion(move |_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
        l2.borrow_mut().record(d.expect("durable").latency());
    });
    trail
        .write(&mut sim, 0, 4096, vec![2u8; 512], done)
        .unwrap();
    trail.run_until_quiescent(&mut sim);
    let out = lat.borrow().mean().as_millis_f64();
    out
}

#[test]
fn calibration_still_works_on_a_wandering_spindle() {
    // Short-horizon prediction is barely affected: the probe and the
    // driver keep re-anchoring, so normal operation stays fast.
    let mut sim = Simulator::new();
    let log = wandering_log_disk();
    let report = format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    // Wander shifts the measured period by at most a few microseconds.
    assert!(
        (report.rotation_period.as_millis_f64() - 11.111).abs() < 0.1,
        "rotation estimate {} off",
        report.rotation_period
    );
}

#[test]
fn stale_reference_goes_awry_and_idle_refresh_fixes_it() {
    // On a wandering spindle the probed rotation period is slightly off
    // (the probe samples rev-to-rev times while the wander is moving), so
    // a stale reference drifts *linearly* with idle time — within two
    // seconds the prediction is several sectors out. Periodic refreshing
    // keeps the reference young enough that the drift stays under a
    // sector or two.
    let idles = [500u64, 900, 1_300, 1_700];
    let mut worst_stale: f64 = 0.0;
    let mut worst_refreshed: f64 = 0.0;
    for &ms in &idles {
        let idle = SimDuration::from_millis(ms);
        // (a) Refresh effectively disabled.
        worst_stale = worst_stale.max(write_after_idle(idle, SimDuration::from_secs(30)));
        // (b) Refresh every 150 ms of idle keeps the reference young.
        worst_refreshed =
            worst_refreshed.max(write_after_idle(idle, SimDuration::from_millis(150)));
    }
    assert!(
        worst_refreshed < 3.5,
        "refreshed writes should stay fast, worst took {worst_refreshed:.2} ms"
    );
    assert!(
        worst_stale > 6.0,
        "a stale reference should have drifted several sectors, worst was {worst_stale:.2} ms"
    );
}

#[test]
fn wander_free_spindle_needs_no_refresh() {
    // Control: on the default (perfect) spindle the same long idle costs
    // nothing even without a refresh.
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::seagate_st41601n());
    let data = Disk::new("d0", profiles::wd_caviar_10gb());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let config = TrailConfig {
        idle_reposition_after: SimDuration::from_secs(30),
        ..TrailConfig::default()
    };
    let (trail, _) = TrailDriver::start(&mut sim, log, vec![data], config).unwrap();
    let done = sim.completion(|_, _| {});
    trail.write(&mut sim, 0, 0, vec![1u8; 512], done).unwrap();
    trail.run_until_quiescent(&mut sim);
    let resume = sim.now() + SimDuration::from_millis(700);
    sim.run_until(resume);
    let lat = Rc::new(RefCell::new(LatencySummary::new()));
    let l2 = Rc::clone(&lat);
    let done = sim.completion(move |_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
        l2.borrow_mut().record(d.expect("durable").latency());
    });
    trail
        .write(&mut sim, 0, 4096, vec![2u8; 512], done)
        .unwrap();
    trail.run_until_quiescent(&mut sim);
    let ms = lat.borrow().mean().as_millis_f64();
    assert!(ms < 3.0, "perfect spindle write took {ms:.2} ms after idle");
}
