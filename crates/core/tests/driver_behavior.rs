//! Behavioral tests of the Trail driver against the simulated substrate.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver, TrailError};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{Delivered, SimDuration, SimTime, Simulator};

/// Formats a log disk and boots a driver over `n_data` tiny data disks.
fn boot(
    sim: &mut Simulator,
    log_profile: trail_disk::profiles::DriveProfile,
    n_data: usize,
    config: TrailConfig,
) -> (TrailDriver, Vec<Disk>) {
    let log = Disk::new("log", log_profile);
    let data: Vec<Disk> = (0..n_data)
        .map(|i| Disk::new(format!("data{i}"), profiles::tiny_test_disk()))
        .collect();
    format_log_disk(sim, &log, FormatOptions::default()).expect("format");
    let (drv, boot) = TrailDriver::start(sim, log, data.clone(), config).expect("boot");
    assert!(boot.recovered.is_none(), "clean disk must boot clean");
    (drv, data)
}

fn sector_data(tag: u8, sectors: usize) -> Vec<u8> {
    let mut v = vec![tag; sectors * SECTOR_SIZE];
    // Nonzero first byte exercises the transposition path.
    v[0] = 0xF0 ^ tag;
    v
}

#[test]
fn boot_rejects_unformatted_disk() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d", profiles::tiny_test_disk());
    let err = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).unwrap_err();
    assert_eq!(err, TrailError::NotFormatted);
}

#[test]
fn boot_requires_a_data_disk() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let err = TrailDriver::start(&mut sim, log, vec![], TrailConfig::default()).unwrap_err();
    assert_eq!(err, TrailError::BadDevice);
}

#[test]
fn epoch_advances_across_clean_restarts() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = Disk::new("d", profiles::tiny_test_disk());
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, boot) = TrailDriver::start(
        &mut sim,
        log.clone(),
        vec![data.clone()],
        TrailConfig::default(),
    )
    .unwrap();
    assert_eq!(boot.epoch, 1);
    drv.shutdown(&mut sim).unwrap();
    let (_, boot2) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default()).unwrap();
    assert_eq!(boot2.epoch, 2);
    assert!(boot2.recovered.is_none(), "clean shutdown skips recovery");
}

#[test]
fn single_sector_sync_write_latency_matches_paper_anchor() {
    // On the ST41601N-class log disk, a one-sector synchronous write
    // should land near 1.4 ms (paper §5.1: "consistently around 1.40 msec").
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::seagate_st41601n(),
        1,
        TrailConfig::default(),
    );
    let lat = Rc::new(RefCell::new(Vec::<SimDuration>::new()));
    for i in 0..20u64 {
        let lat = Rc::clone(&lat);
        // Sparse mode: spaced well beyond the repositioning overhead.
        sim.run_for(SimDuration::from_millis(20));
        let done = sim.completion(move |_, d: Delivered<IoDone>| {
            lat.borrow_mut().push(d.expect("durable").latency());
        });
        drv.write(&mut sim, 0, 100 + i, sector_data(i as u8, 1), done)
            .unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    let lats = lat.borrow();
    assert_eq!(lats.len(), 20);
    let mean_ms = lats.iter().map(|d| d.as_millis_f64()).sum::<f64>() / lats.len() as f64;
    // The +3-sector calibration margin adds ~0.35 ms over the paper's
    // bare 1.40 ms (see trail_probe::DELTA_SAFETY_MARGIN).
    assert!(
        (1.2..2.0).contains(&mean_ms),
        "mean sync write latency {mean_ms} ms, expected ~1.4-1.9"
    );
}

#[test]
fn written_data_reaches_the_data_disk() {
    let mut sim = Simulator::new();
    let (drv, data) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    let payload = sector_data(0x42, 3);
    let acked = Rc::new(Cell::new(false));
    let a = Rc::clone(&acked);
    let done = sim.completion(move |_, _| a.set(true));
    drv.write(&mut sim, 0, 50, payload.clone(), done).unwrap();
    drv.run_until_quiescent(&mut sim);
    assert!(acked.get());
    assert_eq!(drv.pinned_blocks(), 0, "committed blocks are unpinned");
    for i in 0..3u64 {
        assert_eq!(
            &data[0].peek_sector(50 + i)[..],
            &payload[i as usize * SECTOR_SIZE..(i as usize + 1) * SECTOR_SIZE],
            "sector {i}"
        );
    }
}

#[test]
fn read_hits_pinned_buffer_before_writeback() {
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    let payload = sector_data(0x77, 2);
    let read_data = Rc::new(RefCell::new(None));
    {
        let drv2 = drv.clone();
        let payload2 = payload.clone();
        let read_data = Rc::clone(&read_data);
        let done = sim.completion(move |sim: &mut Simulator, _| {
            // Immediately after the ack the block is still pinned; the
            // read must be served from memory and return the new data.
            let rd = Rc::clone(&read_data);
            let read_done = sim.completion(move |_, d: Delivered<IoDone>| {
                *rd.borrow_mut() = d.expect("read delivered").data;
            });
            drv2.read(sim, 0, 10, 2, read_done).unwrap();
            let _ = payload2;
        });
        drv.write(&mut sim, 0, 10, payload.clone(), done).unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    assert_eq!(read_data.borrow().as_deref(), Some(&payload[..]));
    drv.with_stats(|s| {
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_misses, 0);
    });
}

#[test]
fn read_miss_goes_to_data_disk() {
    let mut sim = Simulator::new();
    let (drv, data) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    // Pre-populate the data disk directly.
    let mut sector = [0u8; SECTOR_SIZE];
    sector[7] = 0x99;
    data[0].poke_sector(200, &sector);
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    let done = sim.completion(move |_, d: Delivered<IoDone>| {
        *g.borrow_mut() = d.expect("read delivered").data;
    });
    drv.read(&mut sim, 0, 200, 1, done).unwrap();
    drv.run_until_quiescent(&mut sim);
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap()[7], 0x99);
    drv.with_stats(|s| assert_eq!(s.read_misses, 1));
}

#[test]
fn clustered_writes_batch_into_fewer_records() {
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    // 16 one-sector writes issued back-to-back: the first occupies the log
    // disk, the rest accumulate and must be folded into batched records.
    let acks = Rc::new(Cell::new(0u32));
    for i in 0..16u64 {
        let acks = Rc::clone(&acks);
        let done = sim.completion(move |_, _| acks.set(acks.get() + 1));
        drv.write(&mut sim, 0, 300 + i, sector_data(i as u8, 1), done)
            .unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    assert_eq!(acks.get(), 16);
    drv.with_stats(|s| {
        assert!(
            s.log_records < 16,
            "expected batching, got {} records",
            s.log_records
        );
        assert!(
            s.batch_sizes.iter().any(|&b| b > 1),
            "no batched record observed: {:?}",
            s.batch_sizes
        );
        assert_eq!(s.batch_sizes.iter().sum::<u32>(), 16);
    });
}

#[test]
fn utilization_threshold_triggers_reposition() {
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    // Tiny disk zone 0 has 40 spt; a 13-sector write + header = 14 sectors
    // = 35 % utilization, crossing the 30 % threshold in one record.
    let done = sim.completion(|_, _| {});
    drv.write(&mut sim, 0, 0, sector_data(1, 13), done).unwrap();
    drv.run_until_quiescent(&mut sim);
    drv.with_stats(|s| {
        assert_eq!(s.repositions, 1, "threshold crossing must move the head");
        assert_eq!(s.track_utilization.len(), 1);
        assert!(s.track_utilization[0] >= 0.30);
    });
}

#[test]
fn below_threshold_track_is_reused() {
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    // Two sparse 1-sector writes: 2+2 sectors on a 40-sector track stays
    // under 30 %, so no reposition happens between them.
    for i in 0..2u64 {
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, 0, i, sector_data(9, 1), done).unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    drv.with_stats(|s| {
        assert_eq!(s.repositions, 0, "track must be reused below threshold");
        assert_eq!(s.log_records, 2);
    });
}

#[test]
fn reposition_every_write_ablation() {
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig {
            reposition_every_write: true,
            ..TrailConfig::default()
        },
    );
    for i in 0..3u64 {
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, 0, i, sector_data(7, 1), done).unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    drv.with_stats(|s| {
        assert_eq!(
            s.repositions, 3,
            "ICCD'93 policy repositions after every write"
        );
    });
}

#[test]
fn large_write_splits_and_acks_once() {
    let mut sim = Simulator::new();
    let (drv, data) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    // 80 sectors far exceeds the per-record batch limit (31 on this disk).
    let payload = sector_data(0xEE, 80);
    let acks = Rc::new(Cell::new(0u32));
    let a = Rc::clone(&acks);
    let done = sim.completion(move |_, _| a.set(a.get() + 1));
    drv.write(&mut sim, 0, 0, payload.clone(), done).unwrap();
    drv.run_until_quiescent(&mut sim);
    assert_eq!(acks.get(), 1, "split request must acknowledge exactly once");
    drv.with_stats(|s| assert!(s.log_records >= 3));
    for i in 0..80u64 {
        assert_eq!(
            &data[0].peek_sector(i)[..],
            &payload[i as usize * SECTOR_SIZE..(i as usize + 1) * SECTOR_SIZE],
            "sector {i}"
        );
    }
}

#[test]
fn overwrite_keeps_only_newest_contents() {
    let mut sim = Simulator::new();
    let (drv, data) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    let v1 = sector_data(0x01, 1);
    let v2 = sector_data(0x02, 1);
    let v3 = sector_data(0x03, 1);
    for v in [v1, v2, v3.clone()] {
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, 0, 25, v, done).unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    assert_eq!(&data[0].peek_sector(25)[..], &v3[..]);
    drv.with_stats(|s| {
        assert_eq!((s.log_records as usize), s.batch_sizes.len());
    });
    assert_eq!(drv.pinned_blocks(), 0);
}

#[test]
fn multiple_data_disks_are_independent() {
    let mut sim = Simulator::new();
    let (drv, data) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        3,
        TrailConfig::default(),
    );
    for dev in 0..3usize {
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, dev, 40, sector_data(dev as u8 + 1, 1), done)
            .unwrap();
    }
    drv.run_until_quiescent(&mut sim);
    for (dev, disk) in data.iter().enumerate() {
        let mut expect = sector_data(dev as u8 + 1, 1);
        expect.truncate(SECTOR_SIZE);
        assert_eq!(&disk.peek_sector(40)[..], &expect[..], "dev {dev}");
    }
}

#[test]
fn request_validation() {
    let mut sim = Simulator::new();
    let (drv, data) = boot(
        &mut sim,
        profiles::tiny_test_disk(),
        1,
        TrailConfig::default(),
    );
    let cap = data[0].geometry().total_sectors();
    // A rejected submission drops its completion; the token must come back
    // cancelled rather than vanish.
    let cancelled = Rc::new(Cell::new(0u32));
    let mint = |sim: &Simulator| {
        let c = Rc::clone(&cancelled);
        sim.completion(move |_, d: Delivered<IoDone>| {
            if d.is_err() {
                c.set(c.get() + 1);
            }
        })
    };
    let done = mint(&sim);
    assert_eq!(
        drv.write(&mut sim, 5, 0, sector_data(1, 1), done)
            .unwrap_err(),
        TrailError::BadDevice
    );
    let done = mint(&sim);
    assert_eq!(
        drv.write(&mut sim, 0, 0, vec![1, 2, 3], done).unwrap_err(),
        TrailError::BadDataLength
    );
    let done = mint(&sim);
    assert_eq!(
        drv.write(&mut sim, 0, cap, sector_data(1, 1), done)
            .unwrap_err(),
        TrailError::OutOfRange
    );
    let done = mint(&sim);
    assert_eq!(
        drv.read(&mut sim, 0, cap, 1, done).unwrap_err(),
        TrailError::OutOfRange
    );
    let done = mint(&sim);
    assert_eq!(
        drv.read(&mut sim, 0, 0, 0, done).unwrap_err(),
        TrailError::OutOfRange
    );
    sim.run();
    assert_eq!(
        cancelled.get(),
        5,
        "every rejected request cancels its token"
    );
}

#[test]
fn idle_timer_refreshes_reference_once() {
    let mut sim = Simulator::new();
    let config = TrailConfig {
        idle_reposition_after: SimDuration::from_millis(50),
        ..TrailConfig::default()
    };
    let (drv, _) = boot(&mut sim, profiles::tiny_test_disk(), 1, config);
    let done = sim.completion(|_, _| {});
    drv.write(&mut sim, 0, 0, sector_data(1, 1), done).unwrap();
    drv.run_until_quiescent(&mut sim);
    // Run well past the idle threshold: exactly one refresh fires, and the
    // event queue then drains (no runaway timers).
    sim.run();
    drv.with_stats(|s| assert_eq!(s.idle_refreshes, 1));
    assert!(sim.now() > SimTime::ZERO + SimDuration::from_millis(50));
    // Fresh activity re-arms the cycle.
    let done = sim.completion(|_, _| {});
    drv.write(&mut sim, 0, 1, sector_data(2, 1), done).unwrap();
    drv.run_until_quiescent(&mut sim);
    sim.run();
    drv.with_stats(|s| assert_eq!(s.idle_refreshes, 2));
}

#[test]
fn sync_writes_remain_fast_after_many_records() {
    // The free-track invariant must hold up over hundreds of records: the
    // 200th write is as fast as the 1st.
    let mut sim = Simulator::new();
    let (drv, _) = boot(
        &mut sim,
        profiles::seagate_st41601n(),
        1,
        TrailConfig::default(),
    );
    let lats = Rc::new(RefCell::new(Vec::<SimDuration>::new()));
    for i in 0..200u64 {
        let lats = Rc::clone(&lats);
        let done = sim.completion(move |_, d: Delivered<IoDone>| {
            lats.borrow_mut().push(d.expect("durable").latency());
        });
        drv.write(&mut sim, 0, (i * 13) % 4000, sector_data(i as u8, 2), done)
            .unwrap();
        drv.run_until_quiescent(&mut sim);
        sim.run_for(SimDuration::from_millis(3));
    }
    let lats = lats.borrow();
    let worst = lats.iter().max().unwrap().as_millis_f64();
    assert!(
        worst < 16.0,
        "worst sync write {worst} ms suggests a lost free-track invariant"
    );
    let late_mean = lats[150..].iter().map(|d| d.as_millis_f64()).sum::<f64>() / 50.0;
    assert!(
        late_mean < 4.0,
        "late-run mean {late_mean} ms should stay near the anchor"
    );
}
