//! Crash-recovery correctness: every acknowledged synchronous write
//! survives a power failure at an arbitrary instant.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::Rng;
use trail_core::{
    format_log_disk, read_header, recover, FormatOptions, RecoveryOptions, TrailConfig, TrailDriver,
};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{SimDuration, Simulator};

/// A workload record: which values were written to each block, in order,
/// and how many of them were acknowledged before the crash.
#[derive(Default)]
struct Ledger {
    /// Per (dev, lba): values written, in issue order.
    writes: HashMap<(usize, u64), Vec<u8>>, // tag per write
    /// Per (dev, lba): highest tag acknowledged.
    acked: HashMap<(usize, u64), u8>,
}

fn tagged_sector(tag: u8) -> Vec<u8> {
    let mut v = vec![tag; SECTOR_SIZE];
    v[0] = tag ^ 0xA5; // nonzero first byte exercises transposition
    v
}

/// Runs a random single-sector write workload against a Trail driver and
/// cuts power at `crash_at`. Returns the ledger and the devices.
fn run_workload_and_crash(
    seed: u64,
    crash_delay: SimDuration,
    n_writes: usize,
) -> (Ledger, Disk, Vec<Disk>) {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("d{i}"), profiles::tiny_test_disk()))
        .collect();
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default()).unwrap();

    let ledger = Rc::new(RefCell::new(Ledger::default()));
    let mut rng = trail_sim::rng(seed);
    let t0 = sim.now();
    for i in 0..n_writes {
        let dev = rng.gen_range(0..2usize);
        let lba = rng.gen_range(0..64u64);
        let tag = (i % 251 + 1) as u8;
        ledger
            .borrow_mut()
            .writes
            .entry((dev, lba))
            .or_default()
            .push(tag);
        let l2 = Rc::clone(&ledger);
        // Bursty arrivals: multiple writes per millisecond.
        let delay = SimDuration::from_micros(rng.gen_range(0..2_000));
        let when = t0 + SimDuration::from_millis(i as u64 / 3) + delay;
        let drv2 = drv.clone();
        sim.schedule_at(when.max(sim.now()), move |sim| {
            // A crash can cancel in-flight tokens; only a real delivery
            // counts as an acknowledgement.
            let done = sim.completion(move |_, d: trail_sim::Delivered<_>| {
                if d.is_ok() {
                    l2.borrow_mut().acked.insert((dev, lba), tag);
                }
            });
            drv2.write(sim, dev, lba, tagged_sector(tag), done).unwrap();
        });
    }
    sim.run_until(t0 + crash_delay);
    // Lights out: every device loses power at the same instant.
    log.power_cut(sim.now());
    for d in &data {
        d.power_cut(sim.now());
    }
    let ledger = Rc::try_unwrap(ledger)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| {
            // Callbacks captured clones; copy the current state instead.
            Ledger {
                writes: rc.borrow().writes.clone(),
                acked: rc.borrow().acked.clone(),
            }
        });
    (ledger, log, data)
}

/// After recovery, every block must hold a value at least as new as its
/// last acknowledged write (newer unacknowledged values are permitted —
/// they were durably logged even though the ack never fired).
fn verify_ledger(ledger: &Ledger, data: &[Disk]) {
    for (&(dev, lba), &acked_tag) in &ledger.acked {
        let history = &ledger.writes[&(dev, lba)];
        let acked_pos = history
            .iter()
            .position(|&t| t == acked_tag)
            .expect("acked tag was issued");
        let acceptable: Vec<Vec<u8>> = history[acked_pos..]
            .iter()
            .map(|&t| tagged_sector(t))
            .collect();
        let on_disk = data[dev].peek_sector(lba).to_vec();
        assert!(
            acceptable.iter().any(|v| v[..] == on_disk[..]),
            "dev {dev} lba {lba}: acked tag {acked_tag} but disk holds {:?} (first bytes)",
            &on_disk[..4]
        );
    }
}

fn recover_and_verify(ledger: &Ledger, log: Disk, data: Vec<Disk>) {
    let mut sim = Simulator::new();
    log.power_on();
    for d in &data {
        d.power_on();
    }
    let header = read_header(&mut sim, &log).unwrap();
    assert!(!header.clean, "crash must leave the dirty flag set");
    let report = recover(&mut sim, &log, &data, &header, RecoveryOptions::default()).unwrap();
    assert!(report.write_back_performed);
    verify_ledger(ledger, &data);
}

#[test]
fn acked_writes_survive_a_crash_mid_workload() {
    let (ledger, log, data) = run_workload_and_crash(42, SimDuration::from_millis(120), 300);
    assert!(
        !ledger.acked.is_empty(),
        "workload must have acknowledged writes before the crash"
    );
    recover_and_verify(&ledger, log, data);
}

#[test]
fn crash_at_many_instants_never_loses_acked_data() {
    // Sweep the crash instant across the workload, including moments that
    // land mid-record-transfer (torn records).
    for ms in [5u64, 17, 33, 52, 71, 94, 113, 156, 199] {
        let (ledger, log, data) = run_workload_and_crash(7 + ms, SimDuration::from_millis(ms), 400);
        recover_and_verify(&ledger, log, data);
    }
}

#[test]
fn recovery_with_no_records_is_empty() {
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = vec![Disk::new("d", profiles::tiny_test_disk())];
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    // Boot marks the disk dirty, then "crash" before any write.
    let (_drv, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default()).unwrap();
    log.power_cut(sim.now());
    log.power_on();
    let mut sim2 = Simulator::new();
    let header = read_header(&mut sim2, &log).unwrap();
    let report = recover(&mut sim2, &log, &data, &header, RecoveryOptions::default()).unwrap();
    assert_eq!(report.records_found, 0);
    assert_eq!(report.sectors_replayed, 0);
    assert_eq!(report.tracks_scanned, 1, "empty origin ends the search");
}

#[test]
fn driver_start_performs_recovery_automatically() {
    let (ledger, log, data) = run_workload_and_crash(99, SimDuration::from_millis(80), 200);
    log.power_on();
    for d in &data {
        d.power_on();
    }
    let mut sim = Simulator::new();
    let (drv, boot) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default()).unwrap();
    let report = boot.recovered.expect("dirty disk must trigger recovery");
    assert!(report.write_back_performed);
    verify_ledger(&ledger, &data);
    // The recovered driver is fully operational.
    let done = sim.completion(|_, _| {});
    drv.write(&mut sim, 0, 1, tagged_sector(0xDD), done)
        .unwrap();
    drv.run_until_quiescent(&mut sim);
    assert_eq!(data[0].peek_sector(1)[1], 0xDD);
    drv.shutdown(&mut sim).unwrap();
    // And the epoch bump retired the old records: next boot is clean.
    let mut sim2 = Simulator::new();
    let (_, boot2) = TrailDriver::start(&mut sim2, log, data, TrailConfig::default()).unwrap();
    assert!(boot2.recovered.is_none());
}

#[test]
fn skipping_write_back_is_faster_but_finds_the_same_records() {
    let (_ledger, log, data) = run_workload_and_crash(1234, SimDuration::from_millis(150), 400);
    log.power_on();
    for d in &data {
        d.power_on();
    }
    // Run both variants against clones of the crashed state.
    let mut sim_a = Simulator::new();
    let header = read_header(&mut sim_a, &log).unwrap();
    let with_wb = recover(&mut sim_a, &log, &data, &header, RecoveryOptions::default()).unwrap();
    let mut sim_b = Simulator::new();
    let without_wb = recover(
        &mut sim_b,
        &log,
        &data,
        &header,
        RecoveryOptions { write_back: false },
    )
    .unwrap();
    assert_eq!(with_wb.records_found, without_wb.records_found);
    assert!(with_wb.records_found > 0);
    assert_eq!(without_wb.sectors_replayed, 0);
    assert!(!without_wb.write_back_performed);
    assert!(
        with_wb.total_time() > without_wb.total_time(),
        "write-back must dominate recovery time (Figure 4(b))"
    );
}

#[test]
fn binary_search_scans_logarithmically_many_tracks() {
    // Fill a large share of the log disk, crash, and check the locate
    // stage reads O(lg N) tracks, not O(N).
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = vec![Disk::new("d", profiles::tiny_test_disk())];
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default()).unwrap();
    for i in 0..600u64 {
        let done = sim.completion(|_, _| {});
        drv.write(
            &mut sim,
            0,
            i % 64,
            tagged_sector((i % 200 + 1) as u8),
            done,
        )
        .unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    log.power_cut(sim.now());
    log.power_on();
    let mut sim2 = Simulator::new();
    let header = read_header(&mut sim2, &log).unwrap();
    let report = recover(
        &mut sim2,
        &log,
        &data,
        &header,
        RecoveryOptions { write_back: false },
    )
    .unwrap();
    let n_tracks = header.geometry.total_tracks() - 2;
    let lg = (n_tracks as f64).log2().ceil() as u64;
    assert!(
        report.tracks_scanned <= lg + 2,
        "scanned {} tracks, expected <= lg({n_tracks}) + 2 = {}",
        report.tracks_scanned,
        lg + 2
    );
}

#[test]
fn log_head_bounds_the_backward_scan() {
    // With write-back continuously draining, log_head advances, so only a
    // bounded suffix of records is rebuilt after a crash — not the whole
    // history.
    let mut sim = Simulator::new();
    let log = Disk::new("log", profiles::tiny_test_disk());
    let data = vec![Disk::new("d", profiles::tiny_test_disk())];
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default()).unwrap();
    // Sparse writes: each one commits before the next, so log_head stays
    // right behind the tail.
    for i in 0..120u64 {
        let done = sim.completion(|_, _| {});
        drv.write(
            &mut sim,
            0,
            i % 64,
            tagged_sector((i % 200 + 1) as u8),
            done,
        )
        .unwrap();
        drv.run_until_quiescent(&mut sim);
    }
    log.power_cut(sim.now());
    log.power_on();
    let mut sim2 = Simulator::new();
    let header = read_header(&mut sim2, &log).unwrap();
    let report = recover(
        &mut sim2,
        &log,
        &data,
        &header,
        RecoveryOptions { write_back: false },
    )
    .unwrap();
    assert!(
        report.records_found <= 3,
        "expected a log_head-bounded scan, rebuilt {} of 120 records",
        report.records_found
    );
}

#[test]
fn torn_record_is_detected_and_dropped() {
    // Cut power while a record's payload is mid-transfer. The header
    // sector lands first, so without the checksum the torn record would
    // replay garbage; recovery must drop it and fall back to its
    // predecessor.
    let mut found_torn = false;
    for probe_us in (200..4_000).step_by(150) {
        let mut sim = Simulator::new();
        let log = Disk::new("log", profiles::tiny_test_disk());
        let data = vec![Disk::new("d", profiles::tiny_test_disk())];
        format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
        let (drv, _) =
            TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default())
                .unwrap();
        // One committed write, then a large in-flight record to tear.
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, 0, 5, tagged_sector(0x11), done)
            .unwrap();
        drv.run_until_quiescent(&mut sim);
        let start = sim.now();
        let done = sim.completion(|_, _| {});
        drv.write(&mut sim, 0, 10, vec![0x22; 20 * SECTOR_SIZE], done)
            .unwrap();
        sim.run_until(start + SimDuration::from_micros(probe_us));
        log.power_cut(sim.now());
        for d in &data {
            d.power_cut(sim.now());
        }
        log.power_on();
        for d in &data {
            d.power_on();
        }
        let mut sim2 = Simulator::new();
        let header = read_header(&mut sim2, &log).unwrap();
        let report = recover(&mut sim2, &log, &data, &header, RecoveryOptions::default()).unwrap();
        if report.torn_records_dropped > 0 {
            found_torn = true;
            // The committed record must still have been recovered.
            assert_eq!(&data[0].peek_sector(5)[..], &tagged_sector(0x11)[..]);
            // And the torn record's blocks must NOT contain half-garbage
            // claiming to be tag 0x22 followed by zeros... the write was
            // never acknowledged, so any pre-crash content is acceptable;
            // what is NOT acceptable is a replay of torn payload, which
            // would show 0x22 in an early sector and 0x00 in a later one
            // of the same request. Verify no partial replay happened:
            let replayed: Vec<bool> = (0..20u64)
                .map(|i| data[0].peek_sector(10 + i)[1] == 0x22)
                .collect();
            assert!(
                replayed.iter().all(|&r| !r),
                "torn record must not be partially replayed: {replayed:?}"
            );
        }
    }
    assert!(
        found_torn,
        "the crash sweep never landed inside a record transfer"
    );
}
