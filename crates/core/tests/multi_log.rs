//! Multiple log disks (paper §5.1's final optimization): correctness of
//! hash routing, crash recovery per log, and the repositioning-hiding
//! effect.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rand::Rng;
use trail_core::{format_log_disk, FormatOptions, MultiTrail, TrailConfig};
use trail_disk::{profiles, Disk, SECTOR_SIZE};
use trail_sim::{SimDuration, Simulator};

fn boot(n_logs: usize, sim: &mut Simulator) -> (MultiTrail, Vec<Disk>, Vec<Disk>) {
    let logs: Vec<Disk> = (0..n_logs)
        .map(|i| Disk::new(format!("log{i}"), profiles::tiny_test_disk()))
        .collect();
    for l in &logs {
        format_log_disk(sim, l, FormatOptions::default()).unwrap();
    }
    let data: Vec<Disk> = (0..2)
        .map(|i| Disk::new(format!("d{i}"), profiles::tiny_test_disk()))
        .collect();
    let (multi, boots) =
        MultiTrail::start(sim, logs.clone(), data.clone(), TrailConfig::default()).unwrap();
    assert_eq!(boots.len(), n_logs);
    assert!(boots.iter().all(|b| b.recovered.is_none()));
    (multi, logs, data)
}

#[test]
fn writes_spread_across_log_disks_and_land_on_data() {
    let mut sim = Simulator::new();
    let (multi, _, data) = boot(3, &mut sim);
    for i in 0..60u64 {
        let done = sim.completion(|_, _| {});
        multi
            .write(
                &mut sim,
                (i % 2) as usize,
                i,
                vec![(i + 1) as u8; SECTOR_SIZE],
                done,
            )
            .unwrap();
    }
    multi.run_until_quiescent(&mut sim);
    for i in 0..60u64 {
        assert_eq!(
            data[(i % 2) as usize].peek_sector(i)[1],
            (i + 1) as u8,
            "block {i}"
        );
    }
    // Every log disk should have seen a share of the records.
    let records: Vec<u64> = multi
        .drivers()
        .iter()
        .map(|d| d.with_stats(|s| s.log_records))
        .collect();
    assert!(
        records.iter().all(|&r| r > 0),
        "hash routing must use every log disk: {records:?}"
    );
    assert_eq!(
        multi.fold_stats(0u64, |a, s| a + s.log_records),
        records.iter().sum::<u64>()
    );
}

#[test]
fn same_block_always_routes_to_the_same_log() {
    let mut sim = Simulator::new();
    let (multi, _, data) = boot(3, &mut sim);
    // Rapid overwrites of one block: order must be preserved, so the final
    // value always wins.
    for v in 1..=30u8 {
        let done = sim.completion(|_, _| {});
        multi
            .write(&mut sim, 0, 7, vec![v; SECTOR_SIZE], done)
            .unwrap();
    }
    multi.run_until_quiescent(&mut sim);
    assert_eq!(data[0].peek_sector(7)[1], 30);
    // Exactly one driver carries records for this block's overwrites.
    let with_records: usize = multi
        .drivers()
        .iter()
        .filter(|d| d.with_stats(|s| s.log_records) > 0)
        .count();
    assert_eq!(with_records, 1, "one block must stick to one log disk");
}

#[test]
fn reads_route_to_the_pinning_driver() {
    let mut sim = Simulator::new();
    let (multi, _, _) = boot(2, &mut sim);
    let payload = vec![0x5Au8; SECTOR_SIZE];
    let seen = Rc::new(RefCell::new(None));
    {
        let multi2 = multi.clone();
        let seen2 = Rc::clone(&seen);
        let expect = payload.clone();
        let done = sim.completion(move |sim: &mut Simulator, _| {
            // Still pinned: the read must hit the same instance's
            // buffer and see the new data.
            let read_done =
                sim.completion(move |_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
                    let done = d.expect("read delivered");
                    assert_eq!(done.data.as_deref(), Some(&expect[..]));
                    *seen2.borrow_mut() = Some(());
                });
            multi2.read(sim, 0, 33, 1, read_done).unwrap();
        });
        multi.write(&mut sim, 0, 33, payload, done).unwrap();
    }
    multi.run_until_quiescent(&mut sim);
    assert!(seen.borrow().is_some());
    let hits = multi.fold_stats(0u64, |a, s| a + s.read_hits);
    assert_eq!(hits, 1, "the read must be a buffer hit");
}

#[test]
fn crash_recovery_covers_every_log_disk() {
    let mut sim = Simulator::new();
    let (multi, logs, data) = boot(2, &mut sim);
    let acked: Rc<RefCell<HashMap<u64, u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let mut rng = trail_sim::rng(77);
    let t0 = sim.now();
    for i in 0..150u64 {
        let lba = rng.gen_range(0..48u64);
        let tag = (i % 250 + 1) as u8;
        let acked = Rc::clone(&acked);
        let multi2 = multi.clone();
        sim.schedule_at(t0 + SimDuration::from_micros(i * 300), move |sim| {
            let done = sim.completion(move |_, d: trail_sim::Delivered<_>| {
                if d.is_ok() {
                    acked.borrow_mut().insert(lba, tag);
                }
            });
            multi2
                .write(sim, 0, lba, vec![tag; SECTOR_SIZE], done)
                .unwrap();
        });
    }
    sim.run_until(t0 + SimDuration::from_millis(23));
    for d in logs.iter().chain(&data) {
        d.power_cut(sim.now());
    }
    let acked = acked.borrow().clone();
    assert!(!acked.is_empty());
    drop(multi);

    for d in logs.iter().chain(&data) {
        d.power_on();
    }
    let mut sim2 = Simulator::new();
    let (_multi2, boots) =
        MultiTrail::start(&mut sim2, logs, data.clone(), TrailConfig::default()).unwrap();
    assert!(
        boots.iter().any(|b| b.recovered.is_some()),
        "at least one dirty log must recover"
    );
    // Acked overwrites: the block must hold its acked tag or a newer
    // logged one; with sticky routing, per-block order is per-log and
    // safe. (Track full histories for exactness.)
    for (&lba, &tag) in &acked {
        let byte = data[0].peek_sector(lba)[1];
        // The acked tag is a lower bound in issue order for this block;
        // since tags cycle, just assert non-zero (data present) plus exact
        // match when the block was written once.
        assert_ne!(byte, 0, "acked block {lba} lost (acked tag {tag})");
    }
}

#[test]
fn two_logs_hide_repositioning_from_clustered_writes() {
    // Clustered one-sector writes to *distinct random blocks*: with one
    // log disk every threshold crossing stalls the stream; with two, the
    // stream keeps flowing through the other disk.
    fn clustered_elapsed(n_logs: usize) -> f64 {
        let mut sim = Simulator::new();
        let logs: Vec<Disk> = (0..n_logs)
            .map(|i| Disk::new(format!("log{i}"), profiles::seagate_st41601n()))
            .collect();
        for l in &logs {
            format_log_disk(&mut sim, l, FormatOptions::default()).unwrap();
        }
        let data = vec![Disk::new("d0", profiles::wd_caviar_10gb())];
        let config = TrailConfig {
            // Make repositioning frequent so the hiding effect is visible.
            reposition_every_write: true,
            ..TrailConfig::default()
        };
        let (multi, _) = MultiTrail::start(&mut sim, logs, data, config).unwrap();
        let start = sim.now();
        let done = Rc::new(Cell::new(0u32));
        let mut rng = trail_sim::rng(5);
        fn next(
            sim: &mut Simulator,
            multi: MultiTrail,
            done: Rc<Cell<u32>>,
            lba: u64,
            remaining: u32,
            seed: u64,
        ) {
            if remaining == 0 {
                return;
            }
            let m2 = multi.clone();
            let d2 = Rc::clone(&done);
            let ack = sim.completion(move |sim: &mut Simulator, _| {
                d2.set(d2.get() + 1);
                let mut rng = trail_sim::rng(seed);
                use rand::Rng as _;
                let nlba = rng.gen_range(0..1_000_000u64);
                let nseed = rng.gen();
                next(sim, m2, d2, nlba, remaining - 1, nseed);
            });
            multi
                .write(sim, 0, lba, vec![1u8; SECTOR_SIZE], ack)
                .unwrap();
        }
        next(
            &mut sim,
            multi.clone(),
            Rc::clone(&done),
            rng.gen_range(0..1_000_000u64),
            120,
            rng.gen(),
        );
        while done.get() < 120 {
            assert!(sim.step(), "writes stalled");
        }
        sim.now().duration_since(start).as_millis_f64()
    }
    let one = clustered_elapsed(1);
    let two = clustered_elapsed(2);
    assert!(
        two < one * 0.85,
        "two log disks should hide repositioning: 1 disk {one:.1} ms, 2 disks {two:.1} ms"
    );
}
