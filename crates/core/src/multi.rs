//! Multiple log disks (paper §5.1's "final optimization" and §6):
//! "it is possible to employ multiple log disks to completely hide the
//! disk re-positioning overhead from user applications."
//!
//! [`MultiTrail`] runs one independent Trail instance per log disk, all
//! sharing the same data disks (each physical data disk keeps exactly one
//! queueing driver). Writes are routed by a **deterministic hash of the
//! target block**, which is what makes the composition correct without
//! any cross-log coordination:
//!
//! - all versions of a block live in one log, so its write records replay
//!   in order under that log's own sequence numbers;
//! - reads route the same way, so the pinned-buffer fast path still sees
//!   the newest version;
//! - crash recovery simply recovers each log disk independently.
//!
//! While one log disk repositions after a write, requests hashing to the
//! other disks proceed immediately — with k disks, roughly (k−1)/k of the
//! repositioning penalty is hidden from a clustered stream (the
//! availability-routed "completely hide" variant would need a global
//! write order across logs, which the paper leaves open).

use std::cell::Cell;
use std::rc::Rc;

use trail_blockio::{Clook, IoDone, Priority, StandardDriver};
use trail_disk::{Disk, Lba};
use trail_sim::{Completion, Simulator};
use trail_telemetry::StreamId;

use crate::config::TrailConfig;
use crate::driver::{BootReport, TrailDriver, TrailStats};
use crate::error::TrailError;

/// A Trail array: one driver per log disk over shared data disks.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk, SECTOR_SIZE};
/// use trail_core::{format_log_disk, FormatOptions, MultiTrail, TrailConfig};
///
/// let mut sim = Simulator::new();
/// let logs: Vec<Disk> = (0..2)
///     .map(|i| Disk::new(format!("log{i}"), profiles::seagate_st41601n()))
///     .collect();
/// for log in &logs {
///     format_log_disk(&mut sim, log, FormatOptions::default())?;
/// }
/// let data = Disk::new("data0", profiles::wd_caviar_10gb());
/// let (multi, boots) =
///     MultiTrail::start(&mut sim, logs, vec![data], TrailConfig::default())?;
/// assert_eq!(boots.len(), 2);
/// let done = sim.completion(|_, _| {});
/// multi.write(&mut sim, 0, 64, vec![1u8; SECTOR_SIZE], done)?;
/// multi.run_until_quiescent(&mut sim);
/// # Ok::<(), trail_core::TrailError>(())
/// ```
#[derive(Clone)]
pub struct MultiTrail {
    drivers: Vec<TrailDriver>,
    routing: Rc<Cell<LogRouting>>,
}

/// How [`MultiTrail`] assigns requests to log disks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LogRouting {
    /// Route by a deterministic hash of the target block address (the
    /// default). Safe for any workload: all versions of a block live in
    /// one log regardless of who wrote them.
    #[default]
    BlockHash,
    /// Route tagged requests by a hash of their [`StreamId`], so each
    /// stream's writes land on one log disk and never wait behind another
    /// stream's repositioning. Untagged requests fall back to the block
    /// hash.
    ///
    /// **Correctness invariant:** under stream affinity a block is pinned
    /// in the buffer of the instance its *stream* hashes to, so every
    /// read of that block must carry the same tag as its writes (or the
    /// streams must write disjoint block sets). A read routed elsewhere
    /// would miss the pinned copy and could fetch a stale version from
    /// the data disk while the write-back is still pending.
    StreamAffinity,
}

impl MultiTrail {
    /// Boots one Trail instance per formatted log disk, sharing the data
    /// disks.
    ///
    /// # Errors
    ///
    /// Returns [`TrailError::BadDevice`] for an empty log-disk list and
    /// propagates each instance's boot errors (including per-log
    /// recovery).
    pub fn start(
        sim: &mut Simulator,
        log_disks: Vec<Disk>,
        data_disks: Vec<Disk>,
        config: TrailConfig,
    ) -> Result<(MultiTrail, Vec<BootReport>), TrailError> {
        if log_disks.is_empty() {
            return Err(TrailError::BadDevice);
        }
        // One queueing driver per physical data disk, shared by every
        // Trail instance.
        let data: Vec<StandardDriver> = data_disks
            .iter()
            .map(|d| {
                StandardDriver::with_policy(
                    d.clone(),
                    Box::new(Clook::default()),
                    Priority::ReadsFirst,
                )
            })
            .collect();
        let mut drivers = Vec::with_capacity(log_disks.len());
        let mut boots = Vec::with_capacity(log_disks.len());
        for log in log_disks {
            let (drv, boot) = TrailDriver::start_with_data_drivers(
                sim,
                log,
                data_disks.clone(),
                data.clone(),
                config,
            )?;
            drivers.push(drv);
            boots.push(boot);
        }
        Ok((
            MultiTrail {
                drivers,
                routing: Rc::new(Cell::new(LogRouting::BlockHash)),
            },
            boots,
        ))
    }

    /// Boots one Trail instance per formatted log disk, each over its
    /// **own** list of block targets (single-disk drivers or
    /// `trail-volume` arrays): instance `i` gets `targets[i]`.
    ///
    /// This is the per-stream-devices composition: under
    /// [`LogRouting::StreamAffinity`] each stream's writes land on one
    /// instance, so giving every instance its own target set places each
    /// stream's data on its own array. The placement is coherent only if
    /// each stream addresses blocks backed by its own instance's targets
    /// (or every instance receives clones of one shared target list, as
    /// [`start`](Self::start) arranges) — targets here are *not* shared
    /// between instances, so a block written via instance 0 and read via
    /// instance 1 would touch two different devices.
    ///
    /// # Errors
    ///
    /// Returns [`TrailError::BadDevice`] for an empty log-disk list or a
    /// `targets` list whose length differs, and propagates each
    /// instance's boot errors.
    pub fn start_with_targets(
        sim: &mut Simulator,
        log_disks: Vec<Disk>,
        targets: Vec<Vec<trail_blockio::SharedBlockDevice>>,
        config: TrailConfig,
    ) -> Result<(MultiTrail, Vec<BootReport>), TrailError> {
        if log_disks.is_empty() || targets.len() != log_disks.len() {
            return Err(TrailError::BadDevice);
        }
        let mut drivers = Vec::with_capacity(log_disks.len());
        let mut boots = Vec::with_capacity(log_disks.len());
        for (log, tgts) in log_disks.into_iter().zip(targets) {
            let (drv, boot) = TrailDriver::start_with_targets(sim, log, tgts, config)?;
            drivers.push(drv);
            boots.push(boot);
        }
        Ok((
            MultiTrail {
                drivers,
                routing: Rc::new(Cell::new(LogRouting::BlockHash)),
            },
            boots,
        ))
    }

    /// Number of log disks.
    pub fn log_disks(&self) -> usize {
        self.drivers.len()
    }

    /// The Trail instance serving block `(dev, lba)` for an untagged
    /// request.
    pub fn driver_for(&self, dev: usize, lba: Lba) -> &TrailDriver {
        &self.drivers[self.route_for(dev, lba, StreamId::UNTAGGED)]
    }

    /// The routing policy currently in effect.
    pub fn routing(&self) -> LogRouting {
        self.routing.get()
    }

    /// Switches the routing policy. Shared by all clones of this array.
    ///
    /// Switch only at a quiescent point ([`run_until_quiescent`]
    /// (MultiTrail::run_until_quiescent)): requests routed under the old
    /// policy must have drained their write-backs before blocks are
    /// re-routed, for the reasons documented on
    /// [`LogRouting::StreamAffinity`].
    pub fn set_routing(&self, routing: LogRouting) {
        self.routing.set(routing);
    }

    /// All Trail instances (for statistics).
    pub fn drivers(&self) -> &[TrailDriver] {
        &self.drivers
    }

    /// Attaches a telemetry recorder to every Trail instance (and, through
    /// them, the log disks, the shared data-disk drivers, and the data
    /// disks themselves).
    pub fn set_recorder(&self, recorder: trail_telemetry::RecorderHandle) {
        for d in &self.drivers {
            d.set_recorder(std::rc::Rc::clone(&recorder));
        }
    }

    /// Installs a workload-capture tap on every Trail instance. Each
    /// logical request routes to exactly one instance, so the tap sees the
    /// merged stream once, in submission order.
    pub fn set_tap(&self, tap: trail_blockio::TapHandle) {
        for d in &self.drivers {
            d.set_tap(std::rc::Rc::clone(&tap));
        }
    }

    /// Deterministic request-to-log routing: FNV-1a over the block
    /// address, or over the stream id when
    /// [`LogRouting::StreamAffinity`] is selected and the request is
    /// tagged.
    fn route_for(&self, dev: usize, lba: Lba, stream: StreamId) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self.routing.get() {
            LogRouting::StreamAffinity if !stream.is_untagged() => {
                mix(&stream.0.to_le_bytes());
            }
            _ => {
                mix(&(dev as u64).to_le_bytes());
                mix(&lba.to_le_bytes());
            }
        }
        (h % self.drivers.len() as u64) as usize
    }

    /// Submits a synchronous write; semantics as
    /// [`TrailDriver::write`].
    ///
    /// # Errors
    ///
    /// As [`TrailDriver::write`].
    pub fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.write_tagged(sim, dev, lba, data, StreamId::UNTAGGED, done)
    }

    /// [`write`](MultiTrail::write) with an explicit stream tag. Under
    /// [`LogRouting::StreamAffinity`] the tag selects the log disk.
    ///
    /// # Errors
    ///
    /// As [`TrailDriver::write`].
    pub fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.drivers[self.route_for(dev, lba, stream)]
            .write_tagged(sim, dev, lba, data, stream, done)
    }

    /// Submits a read; semantics as [`TrailDriver::read`].
    ///
    /// # Errors
    ///
    /// As [`TrailDriver::read`].
    pub fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.read_tagged(sim, dev, lba, count, StreamId::UNTAGGED, done)
    }

    /// [`read`](MultiTrail::read) with an explicit stream tag. Must carry
    /// the same tag as the block's writes under
    /// [`LogRouting::StreamAffinity`] (see its invariant).
    ///
    /// # Errors
    ///
    /// As [`TrailDriver::read`].
    pub fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.drivers[self.route_for(dev, lba, stream)]
            .read_tagged(sim, dev, lba, count, stream, done)
    }

    /// Outstanding work across all instances.
    pub fn pending_work(&self) -> usize {
        self.drivers.iter().map(TrailDriver::pending_work).sum()
    }

    /// Runs the simulation until every instance is quiescent.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while work remains.
    pub fn run_until_quiescent(&self, sim: &mut Simulator) {
        while self.pending_work() > 0 {
            assert!(sim.step(), "event queue empty with driver work pending");
        }
    }

    /// Cleanly shuts down every instance.
    ///
    /// # Errors
    ///
    /// Propagates the first instance failure.
    pub fn shutdown(&self, sim: &mut Simulator) -> Result<(), TrailError> {
        for d in &self.drivers {
            d.shutdown(sim)?;
        }
        Ok(())
    }

    /// Folds `f` over every instance's statistics.
    pub fn fold_stats<A>(&self, init: A, mut f: impl FnMut(A, &TrailStats) -> A) -> A {
        let mut acc = Some(init);
        for d in &self.drivers {
            let a = acc.take().expect("accumulator threaded through the fold");
            acc = Some(d.with_stats(|s| f(a, s)));
        }
        acc.expect("accumulator threaded through the fold")
    }
}

impl std::fmt::Debug for MultiTrail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiTrail")
            .field("log_disks", &self.drivers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formatter::{format_log_disk, FormatOptions};
    use trail_disk::profiles;

    fn boot(sim: &mut Simulator, n_logs: usize) -> MultiTrail {
        let logs: Vec<Disk> = (0..n_logs)
            .map(|i| Disk::new(format!("log{i}"), profiles::tiny_test_disk()))
            .collect();
        for log in &logs {
            format_log_disk(sim, log, FormatOptions::default()).unwrap();
        }
        let data = Disk::new("data0", profiles::tiny_test_disk());
        let (multi, _) = MultiTrail::start(sim, logs, vec![data], TrailConfig::default()).unwrap();
        multi
    }

    #[test]
    fn block_hash_routing_ignores_the_stream_tag() {
        let mut sim = Simulator::new();
        let multi = boot(&mut sim, 3);
        assert_eq!(multi.routing(), LogRouting::BlockHash);
        for lba in [0u64, 7, 64, 513] {
            let by_block = multi.route_for(0, lba, StreamId::UNTAGGED);
            assert_eq!(multi.route_for(0, lba, StreamId(1)), by_block);
            assert_eq!(multi.route_for(0, lba, StreamId(9)), by_block);
        }
    }

    #[test]
    fn stream_affinity_pins_each_tagged_stream_to_one_log() {
        let mut sim = Simulator::new();
        let multi = boot(&mut sim, 3);
        multi.set_routing(LogRouting::StreamAffinity);
        for stream in 1u32..=8 {
            let home = multi.route_for(0, 0, StreamId(stream));
            for lba in [1u64, 100, 999] {
                assert_eq!(multi.route_for(0, lba, StreamId(stream)), home);
            }
        }
        // Untagged requests still route by block address, and the policy
        // is shared across clones of the array.
        let clone = multi.clone();
        assert_eq!(clone.routing(), LogRouting::StreamAffinity);
        for lba in [0u64, 7, 64, 513] {
            assert_eq!(
                clone.route_for(0, lba, StreamId::UNTAGGED),
                {
                    clone.set_routing(LogRouting::BlockHash);
                    let r = multi.route_for(0, lba, StreamId::UNTAGGED);
                    clone.set_routing(LogRouting::StreamAffinity);
                    r
                },
                "untagged requests fall back to the block hash"
            );
        }
    }

    #[test]
    fn streams_spread_across_logs_under_affinity() {
        let mut sim = Simulator::new();
        let multi = boot(&mut sim, 2);
        multi.set_routing(LogRouting::StreamAffinity);
        let homes: std::collections::BTreeSet<usize> = (1u32..=16)
            .map(|s| multi.route_for(0, 0, StreamId(s)))
            .collect();
        assert_eq!(homes.len(), 2, "16 streams should cover both logs");
    }
}
