//! Multiple log disks (paper §5.1's "final optimization" and §6):
//! "it is possible to employ multiple log disks to completely hide the
//! disk re-positioning overhead from user applications."
//!
//! [`MultiTrail`] runs one independent Trail instance per log disk, all
//! sharing the same data disks (each physical data disk keeps exactly one
//! queueing driver). Writes are routed by a **deterministic hash of the
//! target block**, which is what makes the composition correct without
//! any cross-log coordination:
//!
//! - all versions of a block live in one log, so its write records replay
//!   in order under that log's own sequence numbers;
//! - reads route the same way, so the pinned-buffer fast path still sees
//!   the newest version;
//! - crash recovery simply recovers each log disk independently.
//!
//! While one log disk repositions after a write, requests hashing to the
//! other disks proceed immediately — with k disks, roughly (k−1)/k of the
//! repositioning penalty is hidden from a clustered stream (the
//! availability-routed "completely hide" variant would need a global
//! write order across logs, which the paper leaves open).

use trail_blockio::{Clook, IoDone, Priority, StandardDriver};
use trail_disk::{Disk, Lba};
use trail_sim::{Completion, Simulator};

use crate::config::TrailConfig;
use crate::driver::{BootReport, TrailDriver, TrailStats};
use crate::error::TrailError;

/// A Trail array: one driver per log disk over shared data disks.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk, SECTOR_SIZE};
/// use trail_core::{format_log_disk, FormatOptions, MultiTrail, TrailConfig};
///
/// let mut sim = Simulator::new();
/// let logs: Vec<Disk> = (0..2)
///     .map(|i| Disk::new(format!("log{i}"), profiles::seagate_st41601n()))
///     .collect();
/// for log in &logs {
///     format_log_disk(&mut sim, log, FormatOptions::default())?;
/// }
/// let data = Disk::new("data0", profiles::wd_caviar_10gb());
/// let (multi, boots) =
///     MultiTrail::start(&mut sim, logs, vec![data], TrailConfig::default())?;
/// assert_eq!(boots.len(), 2);
/// let done = sim.completion(|_, _| {});
/// multi.write(&mut sim, 0, 64, vec![1u8; SECTOR_SIZE], done)?;
/// multi.run_until_quiescent(&mut sim);
/// # Ok::<(), trail_core::TrailError>(())
/// ```
#[derive(Clone)]
pub struct MultiTrail {
    drivers: Vec<TrailDriver>,
}

impl MultiTrail {
    /// Boots one Trail instance per formatted log disk, sharing the data
    /// disks.
    ///
    /// # Errors
    ///
    /// Returns [`TrailError::BadDevice`] for an empty log-disk list and
    /// propagates each instance's boot errors (including per-log
    /// recovery).
    pub fn start(
        sim: &mut Simulator,
        log_disks: Vec<Disk>,
        data_disks: Vec<Disk>,
        config: TrailConfig,
    ) -> Result<(MultiTrail, Vec<BootReport>), TrailError> {
        if log_disks.is_empty() {
            return Err(TrailError::BadDevice);
        }
        // One queueing driver per physical data disk, shared by every
        // Trail instance.
        let data: Vec<StandardDriver> = data_disks
            .iter()
            .map(|d| {
                StandardDriver::with_policy(
                    d.clone(),
                    Box::new(Clook::default()),
                    Priority::ReadsFirst,
                )
            })
            .collect();
        let mut drivers = Vec::with_capacity(log_disks.len());
        let mut boots = Vec::with_capacity(log_disks.len());
        for log in log_disks {
            let (drv, boot) = TrailDriver::start_with_data_drivers(
                sim,
                log,
                data_disks.clone(),
                data.clone(),
                config,
            )?;
            drivers.push(drv);
            boots.push(boot);
        }
        Ok((MultiTrail { drivers }, boots))
    }

    /// Number of log disks.
    pub fn log_disks(&self) -> usize {
        self.drivers.len()
    }

    /// The Trail instance serving block `(dev, lba)`.
    pub fn driver_for(&self, dev: usize, lba: Lba) -> &TrailDriver {
        &self.drivers[self.route(dev, lba)]
    }

    /// All Trail instances (for statistics).
    pub fn drivers(&self) -> &[TrailDriver] {
        &self.drivers
    }

    /// Attaches a telemetry recorder to every Trail instance (and, through
    /// them, the log disks, the shared data-disk drivers, and the data
    /// disks themselves).
    pub fn set_recorder(&self, recorder: trail_telemetry::RecorderHandle) {
        for d in &self.drivers {
            d.set_recorder(std::rc::Rc::clone(&recorder));
        }
    }

    /// Installs a workload-capture tap on every Trail instance. Each
    /// logical request routes to exactly one instance, so the tap sees the
    /// merged stream once, in submission order.
    pub fn set_tap(&self, tap: trail_blockio::TapHandle) {
        for d in &self.drivers {
            d.set_tap(std::rc::Rc::clone(&tap));
        }
    }

    /// Deterministic block-to-log routing (FNV-1a over the address).
    fn route(&self, dev: usize, lba: Lba) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in (dev as u64)
            .to_le_bytes()
            .into_iter()
            .chain(lba.to_le_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.drivers.len() as u64) as usize
    }

    /// Submits a synchronous write; semantics as
    /// [`TrailDriver::write`].
    ///
    /// # Errors
    ///
    /// As [`TrailDriver::write`].
    pub fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.drivers[self.route(dev, lba)].write(sim, dev, lba, data, done)
    }

    /// Submits a read; semantics as [`TrailDriver::read`].
    ///
    /// # Errors
    ///
    /// As [`TrailDriver::read`].
    pub fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.drivers[self.route(dev, lba)].read(sim, dev, lba, count, done)
    }

    /// Outstanding work across all instances.
    pub fn pending_work(&self) -> usize {
        self.drivers.iter().map(TrailDriver::pending_work).sum()
    }

    /// Runs the simulation until every instance is quiescent.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while work remains.
    pub fn run_until_quiescent(&self, sim: &mut Simulator) {
        while self.pending_work() > 0 {
            assert!(sim.step(), "event queue empty with driver work pending");
        }
    }

    /// Cleanly shuts down every instance.
    ///
    /// # Errors
    ///
    /// Propagates the first instance failure.
    pub fn shutdown(&self, sim: &mut Simulator) -> Result<(), TrailError> {
        for d in &self.drivers {
            d.shutdown(sim)?;
        }
        Ok(())
    }

    /// Folds `f` over every instance's statistics.
    pub fn fold_stats<A>(&self, init: A, mut f: impl FnMut(A, &TrailStats) -> A) -> A {
        let mut acc = Some(init);
        for d in &self.drivers {
            let a = acc.take().expect("accumulator threaded through the fold");
            acc = Some(d.with_stats(|s| f(a, s)));
        }
        acc.expect("accumulator threaded through the fold")
    }
}

impl std::fmt::Debug for MultiTrail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiTrail")
            .field("log_disks", &self.drivers.len())
            .finish()
    }
}
