//! Crash recovery (paper §3.3).
//!
//! After a power failure the log disk holds every acknowledged write; the
//! data disks may not. Recovery proceeds in the paper's three stages:
//!
//! 1. **Locate** the youngest active write record. Because tracks are
//!    allocated in ring order and `sequence_id` grows monotonically, the
//!    per-track newest sequence number — as a function of ring position —
//!    is two increasing runs with a single drop at the allocation tail.
//!    A boundary binary search therefore finds the youngest record in
//!    O(lg N) *track scans* instead of reading the whole disk.
//! 2. **Rebuild** the chain of potentially-uncommitted records by walking
//!    `prev_sect` pointers backwards, stopping at the youngest record's
//!    `log_head` (the oldest record not yet committed when it was
//!    written) — this field is what bounds the back-scan.
//! 3. **Write back** the recovered blocks to their data disks in
//!    sequence order (oldest first, so later overwrites win). This stage
//!    is optional for measurement purposes (Figure 4(b)); production boot
//!    always performs it, because the driver bumps the epoch immediately
//!    afterwards, retiring the log records.
//!
//! All recovery I/O is *timed*: it goes through the same simulated device
//! interface as normal operation, so Figure 4's delays are measured, not
//! asserted.

use std::cell::RefCell;
use std::rc::Rc;

use trail_blockio::{IoDone, IoRequest, SharedBlockDevice};
use trail_disk::{Disk, DiskCommand, DiskError, Lba, SectorBuf, SECTOR_SIZE};
use trail_probe::run_blocking;
use trail_sim::{Delivered, SimDuration, Simulator};

use crate::error::TrailError;
use crate::format::{restore_payload, LogDiskHeader, RecordHeader};
use crate::formatter::data_track_range;

/// Options for [`recover`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOptions {
    /// Perform stage 3 (write recovered blocks back to the data disks).
    /// Disabling this reproduces Figure 4(b)'s "no write-back" variant;
    /// a production boot must leave it enabled.
    pub write_back: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions { write_back: true }
    }
}

/// Timing and volume breakdown of one recovery pass (Figure 4).
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Stage 1: locating the youngest active record (binary search).
    pub locate_time: SimDuration,
    /// Stage 2: rebuilding the active records via `prev_sect`.
    pub rebuild_time: SimDuration,
    /// Stage 3: writing blocks back to the data disks (zero if skipped).
    pub writeback_time: SimDuration,
    /// Full tracks read during stage 1.
    pub tracks_scanned: u64,
    /// Write records recovered.
    pub records_found: usize,
    /// Payload sectors written back to data disks.
    pub sectors_replayed: u64,
    /// Whether stage 3 ran.
    pub write_back_performed: bool,
    /// In-flight records whose payload was torn by the crash and which
    /// were therefore dropped (never acknowledged, so no data is lost).
    pub torn_records_dropped: u64,
    /// Sequence distance from the youngest recovered record back to its
    /// `log_head` bound — the quantity that bounds stage 2's back-scan
    /// (the paper's argument for O(active log) rather than O(disk)
    /// recovery).
    pub log_head_span: u64,
    /// Header + payload sectors in the rebuilt active chain: the log
    /// size recovery actually had to process.
    pub active_log_sectors: u64,
}

impl RecoveryReport {
    /// Total recovery delay.
    pub fn total_time(&self) -> SimDuration {
        self.locate_time + self.rebuild_time + self.writeback_time
    }

    /// Serializes the report (times in virtual milliseconds).
    pub fn to_json(&self) -> trail_telemetry::JsonValue {
        use trail_telemetry::JsonValue as J;
        J::obj(vec![
            ("locate_ms", J::Num(self.locate_time.as_millis_f64())),
            ("rebuild_ms", J::Num(self.rebuild_time.as_millis_f64())),
            ("writeback_ms", J::Num(self.writeback_time.as_millis_f64())),
            ("total_ms", J::Num(self.total_time().as_millis_f64())),
            ("tracks_scanned", J::Num(self.tracks_scanned as f64)),
            ("records_found", J::Num(self.records_found as f64)),
            ("sectors_replayed", J::Num(self.sectors_replayed as f64)),
            ("write_back", J::Bool(self.write_back_performed)),
            (
                "torn_records_dropped",
                J::Num(self.torn_records_dropped as f64),
            ),
            ("log_head_span", J::Num(self.log_head_span as f64)),
            ("active_log_sectors", J::Num(self.active_log_sectors as f64)),
        ])
    }
}

/// Newest current-epoch record found on one track.
struct TrackHit {
    header: RecordHeader,
    header_lba: Lba,
}

/// Reads one whole track and returns its newest current-epoch record.
fn scan_track(
    sim: &mut Simulator,
    log_disk: &Disk,
    header: &LogDiskHeader,
    track: u64,
) -> Result<Option<TrackHit>, TrailError> {
    let g = &header.geometry;
    let first = g.track_first_lba(track);
    let spt = g.spt_of_track(track);
    let res = run_blocking(
        sim,
        log_disk,
        DiskCommand::Read {
            lba: first,
            count: spt,
        },
    )?;
    let data = res.data.expect("read returns data");
    let mut best: Option<TrackHit> = None;
    for (i, chunk) in data.chunks_exact(SECTOR_SIZE).enumerate() {
        let sector: SectorBuf = chunk.try_into().expect("chunk is one sector");
        // A record that fails to parse despite carrying the signature is
        // treated as absent: it cannot be the youngest *valid* record.
        if let Ok(Some(rec)) = RecordHeader::decode(&sector) {
            if rec.epoch == header.epoch
                && best
                    .as_ref()
                    .is_none_or(|b| rec.sequence_id > b.header.sequence_id)
            {
                best = Some(TrackHit {
                    header: rec,
                    header_lba: first + i as u64,
                });
            }
        }
    }
    Ok(best)
}

/// Runs the recovery procedure against a crashed Trail log disk.
///
/// `header` is the decoded log-disk header (whose `epoch` identifies the
/// records to recover) and `data_disks` the same device list, in the same
/// order, that the crashed driver served.
///
/// # Errors
///
/// Propagates device errors; returns [`TrailError::BadDevice`] if a
/// recovered record names a data disk that does not exist.
///
/// # Examples
///
/// See the `crash_recovery` example and the `recovery` integration tests;
/// constructing a crashed disk inline is beyond a doc example.
pub fn recover(
    sim: &mut Simulator,
    log_disk: &Disk,
    data_disks: &[Disk],
    header: &LogDiskHeader,
    options: RecoveryOptions,
) -> Result<RecoveryReport, TrailError> {
    recover_inner(
        sim,
        log_disk,
        header,
        options,
        &mut |sim, dev, lba, data| {
            let disk = data_disks.get(dev).ok_or(TrailError::BadDevice)?;
            run_blocking(sim, disk, DiskCommand::Write { lba, data })?;
            Ok(())
        },
    )
}

/// [`recover`] over arbitrary block targets (e.g. `trail-volume` arrays)
/// instead of raw disks: stage 3 replays each recovered run through the
/// target's own submission path, so a RAID-5 target performs its parity
/// maintenance during recovery exactly as it would in normal operation.
///
/// # Errors
///
/// As [`recover`]; a target that cancels a write-back (a member failure
/// the array cannot absorb) surfaces as [`TrailError::Disk`].
pub fn recover_with_targets(
    sim: &mut Simulator,
    log_disk: &Disk,
    targets: &[SharedBlockDevice],
    header: &LogDiskHeader,
    options: RecoveryOptions,
) -> Result<RecoveryReport, TrailError> {
    recover_inner(
        sim,
        log_disk,
        header,
        options,
        &mut |sim, dev, lba, data| {
            let target = targets.get(dev).ok_or(TrailError::BadDevice)?;
            blocking_target_write(sim, target, lba, data)
        },
    )
}

/// Runs one write against a block target to completion (the boot-time
/// blocking idiom; see [`trail_probe::run_blocking`]).
fn blocking_target_write(
    sim: &mut Simulator,
    target: &SharedBlockDevice,
    lba: Lba,
    data: Vec<u8>,
) -> Result<(), TrailError> {
    let slot: Rc<RefCell<Option<Delivered<IoDone>>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    let done = sim.completion(move |_, res: Delivered<IoDone>| {
        *out.borrow_mut() = Some(res);
    });
    target
        .submit(sim, IoRequest::write(lba, data), done)
        .map_err(TrailError::Disk)?;
    while slot.borrow().is_none() {
        assert!(sim.step(), "recovery write-back never completed");
    }
    let res = slot.borrow_mut().take().expect("slot just filled");
    res.map_err(|_| TrailError::Disk(DiskError::Failed))?;
    Ok(())
}

/// Write-back sink shared by the disk-backed and target-backed recovery
/// paths: (sim, device index, lba, payload) → durable or error.
type WriteSink<'a> =
    &'a mut dyn FnMut(&mut Simulator, usize, Lba, Vec<u8>) -> Result<(), TrailError>;

fn recover_inner(
    sim: &mut Simulator,
    log_disk: &Disk,
    header: &LogDiskHeader,
    options: RecoveryOptions,
    write_sink: WriteSink<'_>,
) -> Result<RecoveryReport, TrailError> {
    let g = &header.geometry;
    let (first_track, last_track) = data_track_range(g);
    let n = last_track - first_track + 1;
    let mut report = RecoveryReport::default();
    let t0 = sim.now();

    // ---- Stage 1: locate the youngest active record. --------------------
    let base = scan_track(sim, log_disk, header, first_track)?;
    report.tracks_scanned += 1;
    let Some(base) = base else {
        // No current-epoch records at the allocation origin means no
        // records at all (allocation always starts there).
        report.locate_time = sim.now().duration_since(t0);
        return Ok(report);
    };
    let base_seq = base.header.sequence_id;
    let mut lo = 0u64;
    let mut hi = n - 1;
    let mut best_hit = base;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        let hit = scan_track(sim, log_disk, header, first_track + mid)?;
        report.tracks_scanned += 1;
        match hit {
            Some(h) if h.header.sequence_id >= base_seq => {
                lo = mid;
                best_hit = h;
            }
            _ => hi = mid - 1,
        }
    }
    let youngest = best_hit;
    report.locate_time = sim.now().duration_since(t0);

    // ---- Stage 2: rebuild the chain of active records. -------------------
    let t1 = sim.now();
    let mut bound_seq = youngest.header.log_head_seq;
    let mut chain: Vec<(RecordHeader, Vec<u8>)> = Vec::new();
    let mut cur = youngest;
    loop {
        let batch = cur.header.entries.len() as u32;
        let payload = run_blocking(
            sim,
            log_disk,
            DiskCommand::Read {
                lba: cur.header_lba + 1,
                count: batch,
            },
        )?
        .data
        .expect("read returns data");
        let seq = cur.header.sequence_id;
        let prev = cur.header.prev_sect;
        if crate::format::fnv1a(&payload) != cur.header.payload_checksum {
            if chain.is_empty() {
                // The record in flight at the crash persisted its header
                // but not all payload sectors. It was never acknowledged;
                // drop it and treat its predecessor as the youngest.
                report.torn_records_dropped += 1;
                let Some(prev_lba) = prev else { break };
                let hsec = run_blocking(
                    sim,
                    log_disk,
                    DiskCommand::Read {
                        lba: u64::from(prev_lba),
                        count: 1,
                    },
                )?
                .data
                .expect("read returns data");
                let sector: SectorBuf = hsec[..].try_into().expect("one sector");
                match RecordHeader::decode(&sector) {
                    Ok(Some(rec)) if rec.epoch == header.epoch && rec.sequence_id < seq => {
                        bound_seq = rec.log_head_seq;
                        cur = TrackHit {
                            header: rec,
                            header_lba: u64::from(prev_lba),
                        };
                        continue;
                    }
                    _ => break,
                }
            } else {
                // A fully-written record can only fail its checksum if the
                // medium was damaged; stop conservatively with everything
                // younger already collected.
                break;
            }
        }
        report.active_log_sectors += 1 + u64::from(batch);
        chain.push((cur.header, payload));
        if seq <= bound_seq {
            break;
        }
        let Some(prev_lba) = prev else { break };
        let hsec = run_blocking(
            sim,
            log_disk,
            DiskCommand::Read {
                lba: u64::from(prev_lba),
                count: 1,
            },
        )?
        .data
        .expect("read returns data");
        let sector: SectorBuf = hsec[..].try_into().expect("one sector");
        match RecordHeader::decode(&sector) {
            Ok(Some(rec)) if rec.epoch == header.epoch && rec.sequence_id < seq => {
                cur = TrackHit {
                    header: rec,
                    header_lba: u64::from(prev_lba),
                };
            }
            // A dangling pointer (clobbered predecessor) ends the chain
            // conservatively: everything younger is already collected.
            _ => break,
        }
    }
    report.records_found = chain.len();
    report.log_head_span = chain
        .first()
        .map_or(0, |(r, _)| r.sequence_id.saturating_sub(bound_seq));
    report.rebuild_time = sim.now().duration_since(t1);

    // ---- Stage 3: write back, oldest first. ------------------------------
    let t2 = sim.now();
    if options.write_back {
        chain.reverse();
        for (rec, payload) in &chain {
            let mut i = 0;
            while i < rec.entries.len() {
                // Coalesce consecutive sectors headed to the same disk.
                let dev = rec.entries[i].data_major as usize;
                let start_lba = rec.entries[i].data_lba;
                let mut j = i;
                while j + 1 < rec.entries.len()
                    && rec.entries[j + 1].data_major as usize == dev
                    && rec.entries[j + 1].data_lba == rec.entries[j].data_lba + 1
                {
                    j += 1;
                }
                let mut data = Vec::with_capacity((j - i + 1) * SECTOR_SIZE);
                for (k, entry) in rec.entries[i..=j].iter().enumerate() {
                    let off = (i + k) * SECTOR_SIZE;
                    let mut sector: SectorBuf =
                        payload[off..off + SECTOR_SIZE].try_into().expect("sector");
                    restore_payload(entry, &mut sector);
                    data.extend_from_slice(&sector);
                }
                report.sectors_replayed += (j - i + 1) as u64;
                write_sink(sim, dev, u64::from(start_lba), data)?;
                i = j + 1;
            }
        }
        report.write_back_performed = true;
    }
    report.writeback_time = sim.now().duration_since(t2);
    Ok(report)
}
