//! Disk-head position prediction (paper §3.1).
//!
//! Commodity disks accept only addressed commands, so "write where the head
//! is" must be *synthesized*: the driver remembers a reference point
//! `(T₀, LBA₀)` — the instant a command finished and the sector the head
//! had just passed — and extrapolates forward using the probed rotation
//! period. The paper's formula for the sector under the head at `T₁`:
//!
//! ```text
//! S₁ = ( ⌊((T₁ − T₀) mod R) / R · SPT⌋ + S₀ + δ ) mod SPT
//! ```
//!
//! where δ compensates for command-processing overhead (calibrated by
//! [`trail_probe::calibrate_delta`]). The predictor here implements that
//! formula plus its cross-track generalization (needed when repositioning
//! to "the sector on the next track that is physically the closest"),
//! which converts the reference to an absolute platter angle using the
//! geometry's skew table.
//!
//! The predictor uses **only** information available to real driver
//! software: the reference point, the probed geometry, and δ. It never
//! reads the simulator's spindle phase.

use trail_disk::{DiskGeometry, Lba};
use trail_sim::{SimDuration, SimTime};

/// A prediction reference point: at `t0`, the head had just passed the far
/// edge of `lba`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reference {
    /// When the reference command completed.
    pub t0: SimTime,
    /// The last sector that passed under the head.
    pub lba: Lba,
}

/// Software-only disk-head position predictor.
///
/// # Examples
///
/// ```
/// use trail_disk::profiles;
/// use trail_sim::{SimDuration, SimTime};
/// use trail_core::HeadPredictor;
///
/// let p = profiles::seagate_st41601n();
/// let mut predictor = HeadPredictor::new(p.geometry, p.mech.rotation_period, 12);
/// predictor.set_reference(SimTime::ZERO, 0);
/// // Immediately after the reference, the prediction is δ sectors ahead.
/// let lba = predictor.predict_same_track(SimTime::ZERO).unwrap();
/// assert_eq!(lba, 12);
/// ```
#[derive(Clone, Debug)]
pub struct HeadPredictor {
    geometry: DiskGeometry,
    rotation_period: SimDuration,
    delta: u32,
    reference: Option<Reference>,
}

impl HeadPredictor {
    /// Creates a predictor with no reference point.
    ///
    /// # Panics
    ///
    /// Panics if `rotation_period` is zero.
    pub fn new(geometry: DiskGeometry, rotation_period: SimDuration, delta: u32) -> Self {
        assert!(
            !rotation_period.is_zero(),
            "rotation period must be positive"
        );
        HeadPredictor {
            geometry,
            rotation_period,
            delta,
            reference: None,
        }
    }

    /// The calibrated δ in sectors.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// The current reference point, if any.
    pub fn reference(&self) -> Option<Reference> {
        self.reference
    }

    /// Installs a new reference point: at `t0` the head had just passed
    /// `lba` (i.e. a command whose final sector was `lba` completed at
    /// `t0`).
    ///
    /// # Panics
    ///
    /// Panics if `lba` is outside the disk.
    pub fn set_reference(&mut self, t0: SimTime, lba: Lba) {
        assert!(
            self.geometry.lba_to_chs(lba).is_some(),
            "reference lba {lba} outside the disk"
        );
        self.reference = Some(Reference { t0, lba });
    }

    /// Discards the reference point (predictions become unavailable until
    /// the next repositioning establishes a new one).
    pub fn clear_reference(&mut self) {
        self.reference = None;
    }

    /// The paper's same-track formula: predicts the target LBA for a write
    /// issued at `t1` on the *reference's own track* — the sector δ ahead
    /// of the head's extrapolated position.
    ///
    /// Returns `None` if no reference point is installed.
    pub fn predict_same_track(&self, t1: SimTime) -> Option<Lba> {
        let r = self.reference?;
        let chs = self
            .geometry
            .lba_to_chs(r.lba)
            .expect("reference validated at installation");
        let track = self.geometry.track_index(chs);
        let spt = u64::from(self.geometry.spt_of_track(track));
        let period = self.rotation_period.as_nanos();
        let elapsed = t1.saturating_duration_since(r.t0).as_nanos() % period;
        // ⌊ elapsed / R · SPT ⌋ without intermediate overflow.
        let advanced = (u128::from(elapsed) * u128::from(spt) / u128::from(period)) as u64;
        let s1 = (u64::from(chs.sector) + advanced + u64::from(self.delta)) % spt;
        Some(self.geometry.track_first_lba(track) + s1)
    }

    /// The head's angular position (fraction of a revolution) extrapolated
    /// to `t1`, or `None` without a reference.
    ///
    /// The reference angle is the *trailing* edge of the reference sector,
    /// since the reference command had just finished reading/writing it.
    pub fn head_angle(&self, t1: SimTime) -> Option<f64> {
        let r = self.reference?;
        let chs = self
            .geometry
            .lba_to_chs(r.lba)
            .expect("reference validated at installation");
        let track = self.geometry.track_index(chs);
        let spt = self.geometry.spt_of_track(track);
        let edge = self.geometry.sector_angle(track, chs.sector) + 1.0 / f64::from(spt);
        let period = self.rotation_period.as_nanos();
        let elapsed = t1.saturating_duration_since(r.t0).as_nanos() % period;
        let frac = elapsed as f64 / period as f64;
        Some((edge + frac).rem_euclid(1.0))
    }

    /// Cross-track prediction: the sector of `track` that the head can
    /// reach first when a command is issued at `t1`, compensated by δ plus
    /// `extra_lead` sectors (of the target track). Used to pick "the
    /// sector on the next track that is physically the closest" when
    /// repositioning.
    ///
    /// Returns the (sector, LBA) pair, or `None` without a reference.
    ///
    /// # Panics
    ///
    /// Panics if `track` is outside the disk.
    pub fn predict_on_track(&self, track: u64, t1: SimTime, extra_lead: u32) -> Option<(u32, Lba)> {
        let angle = self.head_angle(t1)?;
        let spt = self.geometry.spt_of_track(track);
        let lead = f64::from(self.delta + extra_lead) / f64::from(spt);
        let sector = self
            .geometry
            .next_sector_from_angle(track, (angle + lead).rem_euclid(1.0));
        Some((
            sector,
            self.geometry.track_first_lba(track) + u64::from(sector),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;

    fn predictor(delta: u32) -> HeadPredictor {
        let p = profiles::seagate_st41601n();
        HeadPredictor::new(p.geometry, p.mech.rotation_period, delta)
    }

    #[test]
    fn no_reference_means_no_prediction() {
        let p = predictor(10);
        assert_eq!(p.predict_same_track(SimTime::ZERO), None);
        assert_eq!(p.head_angle(SimTime::ZERO), None);
        assert_eq!(p.predict_on_track(1, SimTime::ZERO, 0), None);
    }

    #[test]
    fn prediction_advances_with_time() {
        let mut p = predictor(0);
        p.set_reference(SimTime::ZERO, 0);
        let period = profiles::seagate_st41601n().mech.rotation_period;
        let spt = 90u64;
        // Just past k sector times, the prediction advances k sectors (the
        // paper's formula floors, and period/spt truncates to nanoseconds,
        // so probe a nanosecond past the boundary).
        for k in [1u64, 5, 44, 89] {
            let t = SimTime::ZERO + period * k / spt + trail_sim::SimDuration::from_nanos(2);
            let lba = p.predict_same_track(t).unwrap();
            assert_eq!(lba, k % spt, "k={k}");
        }
        // A whole revolution wraps back.
        let t = SimTime::ZERO + period;
        assert_eq!(p.predict_same_track(t).unwrap(), 0);
    }

    #[test]
    fn delta_shifts_prediction() {
        let mut p = predictor(12);
        p.set_reference(SimTime::ZERO, 5);
        assert_eq!(p.predict_same_track(SimTime::ZERO).unwrap(), 17);
        // Near the end of the track the prediction wraps modulo SPT.
        let mut p = predictor(12);
        p.set_reference(SimTime::ZERO, 85);
        assert_eq!(p.predict_same_track(SimTime::ZERO).unwrap(), (85 + 12) % 90);
    }

    #[test]
    fn prediction_matches_simulated_head() {
        // End-to-end honesty check: a write issued to the predicted sector
        // experiences (almost) no rotational latency on the real model.
        use trail_disk::{Disk, DiskCommand, SECTOR_SIZE};
        use trail_sim::Simulator;

        let profile = profiles::seagate_st41601n();
        let mech = profile.mech.clone();
        let mut sim = Simulator::new();
        let disk = Disk::new("log", profile.clone());
        // Reference: read sector 0 (blocking).
        let res =
            trail_probe::run_blocking(&mut sim, &disk, DiskCommand::Read { lba: 0, count: 1 })
                .unwrap();
        // δ must cover command overhead (~9.7 sectors) plus one sector of
        // reference-edge offset plus one sector of formula floor loss —
        // exactly what the probe's recommended value (minimal + margin)
        // provides. Sweep several issue delays to hit varied phases.
        let mut p = HeadPredictor::new(profile.geometry.clone(), mech.rotation_period, 13);
        p.set_reference(res.completed, 0);
        let mut worst = trail_sim::SimDuration::ZERO;
        let mut at = res.completed;
        for delay_us in [0u64, 777, 3_456, 5_000, 9_999] {
            at = at.max(sim.now());
            sim.run_until(at + trail_sim::SimDuration::from_micros(delay_us));
            let target = p.predict_same_track(sim.now()).unwrap();
            let wres = trail_probe::run_blocking(
                &mut sim,
                &disk,
                DiskCommand::Write {
                    lba: target,
                    data: vec![0u8; SECTOR_SIZE],
                },
            )
            .unwrap();
            worst = worst.max(wres.breakdown.rotation);
            // Each completed write refreshes the reference, as the driver
            // does.
            p.set_reference(wres.completed, target);
            at = wres.completed;
        }
        // Residual rotational latency stays below the paper's 0.5 ms claim
        // (§5.1), an order of magnitude under the 5.5 ms average.
        assert!(
            worst.as_millis_f64() < 0.5,
            "residual rotation {} too large",
            worst
        );
    }

    #[test]
    fn cross_track_prediction_respects_skew() {
        let profile = profiles::seagate_st41601n();
        let g = profile.geometry.clone();
        let mut p = predictor(0);
        p.set_reference(SimTime::ZERO, 0);
        // At t0, head angle = trailing edge of sector 0 of track 0.
        let angle = p.head_angle(SimTime::ZERO).unwrap();
        assert!((angle - 1.0 / 90.0).abs() < 1e-9);
        let (sector, lba) = p.predict_on_track(1, SimTime::ZERO, 0).unwrap();
        // The chosen sector's start on track 1 must not precede the head.
        let target_angle = g.sector_angle(1, sector);
        let forward = (target_angle - angle).rem_euclid(1.0);
        assert!(
            forward < 1.5 / 90.0,
            "picked sector {sector} is {forward} of a revolution ahead"
        );
        assert_eq!(lba, g.track_first_lba(1) + u64::from(sector));
    }

    #[test]
    #[should_panic(expected = "outside the disk")]
    fn reference_outside_disk_panics() {
        let mut p = predictor(0);
        p.set_reference(SimTime::ZERO, u64::MAX);
    }

    #[test]
    fn clear_reference_disables_prediction() {
        let mut p = predictor(0);
        p.set_reference(SimTime::ZERO, 0);
        assert!(p.predict_same_track(SimTime::ZERO).is_some());
        p.clear_reference();
        assert!(p.predict_same_track(SimTime::ZERO).is_none());
        assert_eq!(p.reference(), None);
    }
}
