//! The driver's error type.

use std::fmt;

use trail_disk::DiskError;

use crate::format::FormatError;

/// Errors returned by the Trail driver and its tools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrailError {
    /// The log disk does not carry a Trail signature; run the formatter.
    NotFormatted,
    /// An on-disk structure failed to decode.
    Format(FormatError),
    /// The underlying device rejected a command.
    Disk(DiskError),
    /// A request named a data disk that does not exist.
    BadDevice,
    /// A request addressed sectors beyond the target data disk.
    OutOfRange,
    /// A write payload was empty or not sector-aligned.
    BadDataLength,
}

impl fmt::Display for TrailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrailError::NotFormatted => {
                write!(f, "log disk is not formatted as a Trail log disk")
            }
            TrailError::Format(e) => write!(f, "on-disk format error: {e}"),
            TrailError::Disk(e) => write!(f, "disk error: {e}"),
            TrailError::BadDevice => write!(f, "no such data disk"),
            TrailError::OutOfRange => write!(f, "request addresses sectors beyond the data disk"),
            TrailError::BadDataLength => {
                write!(
                    f,
                    "write payload must be a positive multiple of the sector size"
                )
            }
        }
    }
}

impl std::error::Error for TrailError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrailError::Format(e) => Some(e),
            TrailError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<FormatError> for TrailError {
    fn from(e: FormatError) -> Self {
        TrailError::Format(e)
    }
}

#[doc(hidden)]
impl From<DiskError> for TrailError {
    fn from(e: DiskError) -> Self {
        TrailError::Disk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_sources_chain() {
        use std::error::Error;
        let e = TrailError::Disk(DiskError::Busy);
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        assert!(TrailError::NotFormatted.source().is_none());
        let f: TrailError = FormatError::BadSignature.into();
        assert_eq!(f, TrailError::Format(FormatError::BadSignature));
    }
}
