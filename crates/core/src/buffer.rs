//! Pinned buffer memory (paper §4.2).
//!
//! Blocks that have reached the log disk but not yet the data disks stay
//! pinned in the driver's buffer memory — write-back happens **from
//! memory**, never from the log disk, which is why Trail's garbage
//! collection is free. The table also implements the paper's overwrite
//! rules: a new write to a pinned block replaces its contents immediately
//! (the page is unlocked as soon as the log write finishes), at most one
//! write-back per block is ever queued, and a write-back that raced with a
//! newer overwrite is *cancelled* — its log tracks stay live until a
//! write-back of the current contents succeeds, at which point every log
//! record that ever logged this block is released at once.

use std::collections::HashMap;

/// Identifies a pinned block: which data disk and which starting sector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockKey {
    /// Data-disk index.
    pub dev: u8,
    /// First sector of the block on the data disk.
    pub lba: u64,
}

/// One pinned block.
#[derive(Clone, Debug)]
struct BufferEntry {
    data: Vec<u8>,
    version: u64,
    writeback_queued: bool,
    /// Sequence ids of every log record that logged (any version of) this
    /// block and has not yet been released.
    log_refs: Vec<u64>,
}

/// Outcome of a completed data-disk write-back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WritebackOutcome {
    /// The block's current contents are on the data disk; the block is
    /// unpinned and these log-record sequence ids are released.
    Committed(Vec<u64>),
    /// The block was overwritten while the write-back was in flight
    /// (the paper's cancellation case). The block stays pinned; the caller
    /// must queue a fresh write-back for the returned version.
    Superseded {
        /// The version that must now be written back.
        current_version: u64,
    },
}

/// The driver's pinned-buffer table.
///
/// # Examples
///
/// ```
/// use trail_core::{BlockKey, BufferTable, WritebackOutcome};
///
/// let mut t = BufferTable::new();
/// let key = BlockKey { dev: 0, lba: 64 };
/// let (v1, queued) = t.insert_write(key, vec![1; 512], 10);
/// assert!(!queued, "first write must queue a write-back");
/// assert_eq!(
///     t.complete_writeback(key, v1),
///     WritebackOutcome::Committed(vec![10])
/// );
/// assert!(t.lookup(key).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct BufferTable {
    entries: HashMap<BlockKey, BufferEntry>,
    next_version: u64,
    peak_pinned: usize,
    peak_pinned_bytes: usize,
    pinned_bytes: usize,
}

impl BufferTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pinned blocks.
    pub fn pinned_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Bytes currently pinned.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Largest number of simultaneously pinned blocks observed.
    pub fn peak_pinned_blocks(&self) -> usize {
        self.peak_pinned
    }

    /// Largest number of simultaneously pinned bytes observed.
    pub fn peak_pinned_bytes(&self) -> usize {
        self.peak_pinned_bytes
    }

    /// Records a block that just reached the log disk under record
    /// `log_seq`: pins (or replaces) its contents and attaches the record
    /// reference.
    ///
    /// Returns the block's new version and whether a write-back is already
    /// queued (in which case the caller must *not* queue another — "only
    /// one request for the buffer is kept in the queue").
    pub fn insert_write(&mut self, key: BlockKey, data: Vec<u8>, log_seq: u64) -> (u64, bool) {
        self.next_version += 1;
        let version = self.next_version;
        let len = data.len();
        let entry = self.entries.entry(key);
        let (already_queued, old_len) = match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                let old_len = e.data.len();
                e.data = data;
                e.version = version;
                // One batch can log the same block twice; the record still
                // holds a single pending reference to this block.
                if e.log_refs.last() != Some(&log_seq) {
                    e.log_refs.push(log_seq);
                }
                let q = e.writeback_queued;
                e.writeback_queued = true;
                (q, old_len)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(BufferEntry {
                    data,
                    version,
                    writeback_queued: true,
                    log_refs: vec![log_seq],
                });
                (false, 0)
            }
        };
        self.pinned_bytes = self.pinned_bytes - old_len + len;
        self.peak_pinned = self.peak_pinned.max(self.entries.len());
        self.peak_pinned_bytes = self.peak_pinned_bytes.max(self.pinned_bytes);
        (version, already_queued)
    }

    /// The data to ship in a write-back of `key` right now, with the
    /// version it represents.
    ///
    /// # Panics
    ///
    /// Panics if the block is not pinned (a write-back must have been
    /// queued by [`insert_write`](Self::insert_write)).
    pub fn snapshot(&self, key: BlockKey) -> (Vec<u8>, u64) {
        let e = self.entries.get(&key).expect("snapshot of unpinned block");
        (e.data.clone(), e.version)
    }

    /// Resolves a completed write-back of `key` that shipped `version`.
    ///
    /// # Panics
    ///
    /// Panics if the block is not pinned.
    pub fn complete_writeback(&mut self, key: BlockKey, version: u64) -> WritebackOutcome {
        let e = self
            .entries
            .get_mut(&key)
            .expect("write-back completion for unpinned block");
        if e.version == version {
            let removed = self.entries.remove(&key).expect("entry just accessed");
            self.pinned_bytes -= removed.data.len();
            WritebackOutcome::Committed(removed.log_refs)
        } else {
            debug_assert!(e.version > version, "versions are monotone");
            WritebackOutcome::Superseded {
                current_version: e.version,
            }
        }
    }

    /// Returns the pinned contents of `key`, if present (the read-path
    /// fast hit).
    pub fn lookup(&self, key: BlockKey) -> Option<&[u8]> {
        self.entries.get(&key).map(|e| e.data.as_slice())
    }

    /// Iterates over the pinned block keys (diagnostics, shutdown flush).
    pub fn keys(&self) -> impl Iterator<Item = BlockKey> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: BlockKey = BlockKey { dev: 1, lba: 100 };

    #[test]
    fn first_write_pins_and_queues() {
        let mut t = BufferTable::new();
        let (_, queued) = t.insert_write(K, vec![1, 2, 3], 5);
        assert!(!queued);
        assert_eq!(t.pinned_blocks(), 1);
        assert_eq!(t.pinned_bytes(), 3);
        assert_eq!(t.lookup(K), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn overwrite_replaces_data_without_requeue() {
        let mut t = BufferTable::new();
        t.insert_write(K, vec![1; 512], 5);
        let (v2, queued) = t.insert_write(K, vec![2; 512], 6);
        assert!(queued, "second write must not queue another write-back");
        assert_eq!(t.lookup(K), Some(&vec![2u8; 512][..]));
        assert_eq!(t.pinned_blocks(), 1);
        let (snap, v) = t.snapshot(K);
        assert_eq!(v, v2);
        assert_eq!(snap[0], 2);
    }

    #[test]
    fn committed_writeback_releases_all_refs() {
        let mut t = BufferTable::new();
        t.insert_write(K, vec![1; 4], 5);
        let (v, _) = t.insert_write(K, vec![2; 4], 6);
        match t.complete_writeback(K, v) {
            WritebackOutcome::Committed(refs) => assert_eq!(refs, vec![5, 6]),
            other => panic!("expected Committed, got {other:?}"),
        }
        assert_eq!(t.pinned_blocks(), 0);
        assert_eq!(t.pinned_bytes(), 0);
    }

    #[test]
    fn stale_writeback_is_superseded_and_refs_survive() {
        let mut t = BufferTable::new();
        let (v1, _) = t.insert_write(K, vec![1; 4], 5);
        let (v2, _) = t.insert_write(K, vec![2; 4], 6);
        // The in-flight write-back shipped v1; by completion the block is
        // at v2: cancelled, block stays pinned.
        assert_eq!(
            t.complete_writeback(K, v1),
            WritebackOutcome::Superseded {
                current_version: v2
            }
        );
        assert_eq!(t.pinned_blocks(), 1);
        // The retry at v2 releases both records' refs.
        assert_eq!(
            t.complete_writeback(K, v2),
            WritebackOutcome::Committed(vec![5, 6])
        );
    }

    #[test]
    fn peak_tracking() {
        let mut t = BufferTable::new();
        t.insert_write(BlockKey { dev: 0, lba: 0 }, vec![0; 10], 1);
        t.insert_write(BlockKey { dev: 0, lba: 1 }, vec![0; 10], 2);
        let (v, _) = t.insert_write(BlockKey { dev: 0, lba: 2 }, vec![0; 10], 3);
        t.complete_writeback(BlockKey { dev: 0, lba: 2 }, v);
        assert_eq!(t.pinned_blocks(), 2);
        assert_eq!(t.peak_pinned_blocks(), 3);
        assert_eq!(t.peak_pinned_bytes(), 30);
    }

    #[test]
    #[should_panic(expected = "unpinned block")]
    fn completion_for_unknown_block_panics() {
        BufferTable::new().complete_writeback(K, 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut t = BufferTable::new();
        let k2 = BlockKey { dev: 1, lba: 200 };
        t.insert_write(K, vec![1; 4], 1);
        let (_, queued) = t.insert_write(k2, vec![2; 4], 2);
        assert!(!queued, "different block must queue its own write-back");
        assert_eq!(t.keys().count(), 2);
    }
}
