//! # trail-core: track-based disk logging
//!
//! A from-scratch implementation of **Trail**, the low-write-latency disk
//! subsystem of Chiueh & Huang, *Track-Based Disk Logging* (DSN 2002),
//! built on the simulated mechanical-disk substrate in [`trail_disk`].
//!
//! Trail makes synchronous disk writes cost only *data transfer plus
//! command overhead* — no seek, (almost) no rotational latency — by
//! logging every write wherever the log disk's head happens to be, on a
//! track guaranteed to be free, and completing the real write to the data
//! disk asynchronously from memory. The pieces:
//!
//! - [`HeadPredictor`] — the §3.1 software-only head-position prediction
//!   formula, fed by probed geometry and the calibrated δ;
//! - [`format`] — the §3.2 self-describing log organization
//!   (`log_disk_header`, `record_header`, first-byte transposition);
//! - [`TrackPool`] / [`BufferTable`] — FIFO track reclamation and pinned
//!   buffer memory with overwrite cancellation (§4.2);
//! - [`TrailDriver`] — the driver: batched log writes, the 30 %
//!   track-utilization threshold, read-prioritized write-back (§4);
//! - [`recover`] — the §3.3 three-stage crash recovery with O(lg N)
//!   binary-search location and `log_head`-bounded back-scan;
//! - [`format_log_disk`] — the formatting tool (probes timing, writes the
//!   header).
//!
//! # Examples
//!
//! ```
//! use trail_sim::Simulator;
//! use trail_disk::{profiles, Disk, SECTOR_SIZE};
//! use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
//!
//! let mut sim = Simulator::new();
//! let log = Disk::new("log", profiles::seagate_st41601n());
//! let data = Disk::new("data0", profiles::wd_caviar_10gb());
//! format_log_disk(&mut sim, &log, FormatOptions::default())?;
//! let (trail, boot) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default())?;
//! assert!(boot.recovered.is_none(), "clean disk boots without recovery");
//!
//! // A synchronous 4-KByte write completes in ~1.5 ms (paper abstract).
//! let done = sim.completion(|_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
//!     assert!(d.expect("durable").latency().as_millis_f64() < 4.0);
//! });
//! trail.write(&mut sim, 0, 2048, vec![0xAB; 8 * SECTOR_SIZE], done)?;
//! trail.run_until_quiescent(&mut sim);
//! trail.shutdown(&mut sim)?;
//! # Ok::<(), trail_core::TrailError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod driver;
mod error;
pub mod format;
mod formatter;
mod multi;
mod predict;
mod recovery;
mod tracks;

pub use buffer::{BlockKey, BufferTable, WritebackOutcome};
pub use config::TrailConfig;
pub use driver::{BootReport, TrailDriver, TrailStats};
pub use error::TrailError;
pub use multi::{LogRouting, MultiTrail};

pub use formatter::{
    data_track_range, format_log_disk, read_header, replica_lba, write_header, FormatOptions,
    FormatReport, CALIBRATION_TRACK,
};
pub use predict::{HeadPredictor, Reference};
pub use recovery::{recover, recover_with_targets, RecoveryOptions, RecoveryReport};
pub use tracks::TrackPool;
