//! The Trail driver (paper §4): eager log-disk writes, asynchronous
//! write-back, and the free-track invariant.
//!
//! The driver sits where a disk device driver would: above it, a file
//! system (or database) issues reads and synchronous writes against data
//! disks; below it, one log disk and N data disks. Every write is first
//! appended to the log disk *at the sector the head is predicted to be
//! passing* — so it costs only command overhead plus transfer — and is
//! acknowledged as durable the moment the log write completes. The blocks
//! stay pinned in buffer memory and trickle out to their real homes on the
//! data disks in the background, with reads given priority.
//!
//! Key mechanisms, each mapped to the paper:
//!
//! - **head-position prediction** before every log write (§3.1), via
//!   [`HeadPredictor`];
//! - **batched writes**: everything in the log queue when the disk goes
//!   idle is folded into one write record (§4.2, Table 1);
//! - **30 % track-utilization threshold** before moving to the next track
//!   (§4.2), maintaining the invariant that the head always sits on a
//!   track with free space;
//! - **FIFO track reclamation** (§2, §4.2) via [`TrackPool`];
//! - **overwrite cancellation** (§4.2) via [`BufferTable`];
//! - **idle-time reference refresh** (§3.1's periodic repositioning).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use trail_blockio::{
    Clook, IoDone, IoRequest, Priority, SharedBlockDevice, StandardDriver, TapHandle,
};
use trail_disk::{
    CommandKind, Disk, DiskCommand, DiskGeometry, DiskResult, Lba, SectorBuf, ServiceBreakdown,
    SECTOR_SIZE,
};
use trail_sim::{Completion, Delivered, EventId, LatencySummary, SimDuration, SimTime, Simulator};
use trail_telemetry::{
    EventKind, Layer, LifecycleEmitter, RecorderHandle, RequestBreakdown, StreamId,
};

use crate::buffer::{BlockKey, BufferTable, WritebackOutcome};
use crate::config::TrailConfig;
use crate::error::TrailError;
use crate::format::{build_record, LogDiskHeader, PayloadSector};
use crate::formatter::{data_track_range, read_header, write_header};
use crate::predict::HeadPredictor;
use crate::recovery::{recover, RecoveryOptions, RecoveryReport};
use crate::tracks::TrackPool;

/// Aggregate driver measurements.
#[derive(Clone, Debug, Default)]
pub struct TrailStats {
    /// End-to-end synchronous write latency: request submission to log-disk
    /// durability acknowledgement.
    pub sync_write_latency: LatencySummary,
    /// Write records appended to the log disk.
    pub log_records: u64,
    /// Payload sectors of each record, in order — the batching histogram.
    pub batch_sizes: Vec<u32>,
    /// Track switches (repositioning reads) performed.
    pub repositions: u64,
    /// Reference refreshes triggered by the idle timer.
    pub idle_refreshes: u64,
    /// Times the log disk ran out of free tracks and the queue stalled.
    pub stalls: u64,
    /// Fraction of each retired track's sectors that were used, sampled at
    /// track-switch time (the §5.2 utilization statistic).
    pub track_utilization: Vec<f64>,
    /// Reads served from pinned buffer memory.
    pub read_hits: u64,
    /// Reads forwarded to the data disks.
    pub read_misses: u64,
    /// Data-disk write-backs dispatched.
    pub writebacks: u64,
    /// Write-backs that raced with a newer overwrite and were cancelled.
    pub superseded_writebacks: u64,
}

struct AckState {
    remaining: usize,
    done: Option<Completion<IoDone>>,
    issued: SimTime,
    dev: u8,
    lba: u64,
}

struct QueuedWrite {
    dev: u8,
    lba: u64,
    data: Vec<u8>,
    ack: Rc<RefCell<AckState>>,
}

impl QueuedWrite {
    fn sectors(&self) -> u32 {
        (self.data.len() / SECTOR_SIZE) as u32
    }
}

struct CurrentTrack {
    track: u64,
    used: Vec<bool>,
    used_count: u32,
}

impl CurrentTrack {
    fn new(track: u64, spt: u32) -> Self {
        CurrentTrack {
            track,
            used: vec![false; spt as usize],
            used_count: 0,
        }
    }

    fn spt(&self) -> u32 {
        self.used.len() as u32
    }

    fn utilization(&self) -> f64 {
        f64::from(self.used_count) / f64::from(self.spt())
    }

    /// First sector `s` (searching in wrapped order from `from`) such that
    /// `[s, s + need)` lies within the track and is entirely free.
    fn find_fit(&self, from: u32, need: u32) -> Option<u32> {
        let spt = self.spt();
        if need > spt {
            return None;
        }
        for off in 0..spt {
            let s = (from + off) % spt;
            if s + need > spt {
                continue;
            }
            if self.used[s as usize..(s + need) as usize]
                .iter()
                .all(|&u| !u)
            {
                return Some(s);
            }
        }
        None
    }

    /// Length of the free run starting at `s`.
    fn free_run_len(&self, s: u32) -> u32 {
        let spt = self.spt();
        let mut end = s;
        while end < spt && !self.used[end as usize] {
            end += 1;
        }
        end - s
    }

    fn mark_used(&mut self, s: u32, len: u32) {
        for i in s..s + len {
            debug_assert!(!self.used[i as usize], "sector {i} double-allocated");
            self.used[i as usize] = true;
        }
        self.used_count += len;
    }
}

struct ActiveRecord {
    track: u64,
    header_lba: u32,
    pending: HashSet<BlockKey>,
}

struct Inner {
    config: TrailConfig,
    effective_max_batch: u32,
    rotation_period: trail_sim::SimDuration,
    log_disk: Disk,
    data: Vec<SharedBlockDevice>,
    data_capacity: Vec<u64>,
    geometry: DiskGeometry,
    predictor: HeadPredictor,
    epoch: u64,
    next_seq: u64,
    prev_record_lba: Option<u32>,
    pool: TrackPool,
    current: Option<CurrentTrack>,
    log_busy: bool,
    log_queue: VecDeque<QueuedWrite>,
    active_records: BTreeMap<u64, ActiveRecord>,
    buffers: BufferTable,
    stats: TrailStats,
    idle_timer: Option<EventId>,
    idle_refresh_count: u32,
    stalled: bool,
    // Sourced from the log disk's name, so MultiTrail instances stay
    // distinguishable in traces.
    lifecycle: LifecycleEmitter,
    // Workload-capture tap; sees every accepted write/read at submission.
    tap: Option<TapHandle>,
}

/// What `start` found and did while bringing the driver up.
#[derive(Clone, Debug)]
pub struct BootReport {
    /// The recovery pass that ran, if the log disk was not cleanly
    /// unmounted.
    pub recovered: Option<RecoveryReport>,
    /// The new epoch this driver instance writes under.
    pub epoch: u64,
}

enum LogAction {
    None,
    ArmIdle,
    Reposition,
    Dispatch {
        lba: Lba,
        bytes: Vec<u8>,
        ctx: RecordCtx,
    },
}

struct RecordCtx {
    seq: u64,
    track: u64,
    header_sector: u32,
    total_sectors: u32,
    batch: Vec<QueuedWrite>,
    /// Whether the record landed exactly at the predicted sector (the
    /// §3.1 prediction was used as-is; a miss means the predicted sector
    /// was occupied and the head had to wait for a later free run).
    predicted_hit: bool,
}

/// The Trail track-based logging driver. Clones share the driver.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk, SECTOR_SIZE};
/// use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
///
/// let mut sim = Simulator::new();
/// let log = Disk::new("log", profiles::seagate_st41601n());
/// let data = Disk::new("data0", profiles::wd_caviar_10gb());
/// format_log_disk(&mut sim, &log, FormatOptions::default())?;
/// let (trail, _boot) = TrailDriver::start(&mut sim, log, vec![data], TrailConfig::default())?;
/// let done = sim.completion(|_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
///     // Durable in ~1.5 ms instead of ~16 ms.
///     assert!(d.expect("durable").latency().as_millis_f64() < 4.0);
/// });
/// trail.write(&mut sim, 0, 1024, vec![7u8; 2 * SECTOR_SIZE], done)?;
/// trail.run_until_quiescent(&mut sim);
/// # Ok::<(), trail_core::TrailError>(())
/// ```
#[derive(Clone)]
pub struct TrailDriver {
    inner: Rc<RefCell<Inner>>,
}

impl TrailDriver {
    /// Boots the driver: reads the log-disk header, runs crash recovery if
    /// the previous mount was not clean, bumps the epoch, and positions the
    /// head on a free track.
    ///
    /// Runs boot I/O in blocking style (drains the event queue); construct
    /// the driver before starting workload actors.
    ///
    /// # Errors
    ///
    /// Returns [`TrailError::NotFormatted`] for an unformatted log disk,
    /// [`TrailError::BadDevice`] if `data_disks` is empty, and propagates
    /// device errors.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`TrailConfig::validate`]).
    pub fn start(
        sim: &mut Simulator,
        log_disk: Disk,
        data_disks: Vec<Disk>,
        config: TrailConfig,
    ) -> Result<(TrailDriver, BootReport), TrailError> {
        let data = data_disks
            .iter()
            .map(|d| {
                StandardDriver::with_policy(
                    d.clone(),
                    Box::new(Clook::default()),
                    Priority::ReadsFirst,
                )
            })
            .collect();
        Self::start_with_data_drivers(sim, log_disk, data_disks, data, config)
    }

    /// Like [`start`](Self::start), but over pre-built data-disk drivers —
    /// required when several Trail instances share the same data disks
    /// (see [`MultiTrail`](crate::MultiTrail)): each physical disk must
    /// have exactly one queueing driver.
    ///
    /// `data_disks[i]` must be the disk behind `data[i]`.
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start).
    pub fn start_with_data_drivers(
        sim: &mut Simulator,
        log_disk: Disk,
        data_disks: Vec<Disk>,
        data: Vec<StandardDriver>,
        config: TrailConfig,
    ) -> Result<(TrailDriver, BootReport), TrailError> {
        config.validate();
        if data_disks.is_empty()
            || data_disks.len() > u8::MAX as usize
            || data.len() != data_disks.len()
        {
            return Err(TrailError::BadDevice);
        }
        let header = read_header(sim, &log_disk)?;
        let mut recovered = None;
        if !header.clean {
            recovered = Some(recover(
                sim,
                &log_disk,
                &data_disks,
                &header,
                RecoveryOptions::default(),
            )?);
        }
        let targets: Vec<SharedBlockDevice> = data
            .into_iter()
            .map(|d| Rc::new(d) as SharedBlockDevice)
            .collect();
        Self::boot_over_targets(sim, log_disk, header, recovered, targets, config)
    }

    /// Like [`start`](Self::start), but over arbitrary block targets —
    /// single-disk drivers, `trail-volume` RAID arrays, or a mix. Trail's
    /// write-back path submits to each target's [`trail_blockio::
    /// BlockDevice`] face, so a RAID-5 target pays its read-modify-write
    /// parity cycles in the background while the log front end keeps
    /// acknowledging at track speed.
    ///
    /// Crash recovery replays through the targets' own submission paths
    /// (see [`crate::recover_with_targets`]).
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start).
    pub fn start_with_targets(
        sim: &mut Simulator,
        log_disk: Disk,
        targets: Vec<SharedBlockDevice>,
        config: TrailConfig,
    ) -> Result<(TrailDriver, BootReport), TrailError> {
        config.validate();
        if targets.is_empty() || targets.len() > u8::MAX as usize {
            return Err(TrailError::BadDevice);
        }
        let header = read_header(sim, &log_disk)?;
        let mut recovered = None;
        if !header.clean {
            recovered = Some(crate::recovery::recover_with_targets(
                sim,
                &log_disk,
                &targets,
                &header,
                RecoveryOptions::default(),
            )?);
        }
        Self::boot_over_targets(sim, log_disk, header, recovered, targets, config)
    }

    /// Shared boot tail: bump the epoch, persist the dirty header, and
    /// assemble the driver over `targets`.
    fn boot_over_targets(
        sim: &mut Simulator,
        log_disk: Disk,
        header: LogDiskHeader,
        recovered: Option<RecoveryReport>,
        targets: Vec<SharedBlockDevice>,
        config: TrailConfig,
    ) -> Result<(TrailDriver, BootReport), TrailError> {
        assert!(
            header.geometry.total_sectors() <= u64::from(u32::MAX),
            "log disk too large for the on-disk u32 LBA format"
        );
        let epoch = header.epoch + 1;
        let new_header = LogDiskHeader {
            epoch,
            clean: false,
            ..header.clone()
        };
        write_header(sim, &log_disk, &new_header)?;

        let geometry = header.geometry.clone();
        let min_spt = geometry
            .zones()
            .iter()
            .map(|z| z.spt)
            .min()
            .expect("zones nonempty");
        let effective_max_batch = config.max_batch_sectors.min(min_spt - 1);
        let (first, mut last) = data_track_range(&geometry);
        if let Some(limit) = config.log_track_limit {
            assert!(limit >= 2, "the track ring needs at least two tracks");
            last = last.min(first + limit - 1);
        }
        let data_capacity: Vec<u64> = targets.iter().map(|t| t.capacity_sectors()).collect();
        for &cap in &data_capacity {
            assert!(
                cap <= u64::from(u32::MAX),
                "data target too large for the on-disk u32 LBA format"
            );
        }
        let predictor = HeadPredictor::new(geometry.clone(), header.rotation_period, header.delta);
        let lifecycle = LifecycleEmitter::new(Layer::Core, log_disk.name());
        let driver = TrailDriver {
            inner: Rc::new(RefCell::new(Inner {
                config,
                effective_max_batch,
                rotation_period: header.rotation_period,
                log_disk,
                data: targets,
                data_capacity,
                geometry,
                predictor,
                epoch,
                next_seq: 0,
                prev_record_lba: None,
                pool: TrackPool::new(first, last),
                current: None,
                log_busy: false,
                log_queue: VecDeque::new(),
                active_records: BTreeMap::new(),
                buffers: BufferTable::new(),
                stats: TrailStats::default(),
                idle_timer: None,
                idle_refresh_count: 0,
                stalled: false,
                lifecycle,
                tap: None,
            })),
        };
        driver.initial_position(sim)?;
        Ok((driver, BootReport { recovered, epoch }))
    }

    /// Blocking boot step: claim the first track and take a reference
    /// point by reading its first sector.
    fn initial_position(&self, sim: &mut Simulator) -> Result<(), TrailError> {
        let (track, lba) = {
            let mut d = self.inner.borrow_mut();
            let track = d.pool.allocate_next().expect("fresh pool cannot be full");
            (track, d.geometry.track_first_lba(track))
        };
        let res = trail_probe::run_blocking(
            sim,
            &self.inner.borrow().log_disk.clone(),
            DiskCommand::Read { lba, count: 1 },
        )?;
        let mut d = self.inner.borrow_mut();
        d.predictor.set_reference(res.completed, lba);
        let spt = d.geometry.spt_of_track(track);
        d.current = Some(CurrentTrack::new(track, spt));
        Ok(())
    }

    /// Submits a synchronous write of `data` to sector `lba` of data disk
    /// `dev`. `done` is delivered when the write is **durable** (logged);
    /// the data-disk copy happens in the background.
    ///
    /// Requests larger than the batch limit are split into multiple log
    /// records; `done` is delivered when the last piece is durable.
    ///
    /// # Errors
    ///
    /// Returns [`TrailError::BadDevice`], [`TrailError::BadDataLength`],
    /// or [`TrailError::OutOfRange`] without side effects on a malformed
    /// request (`done` is cancelled).
    pub fn write(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.write_tagged(sim, dev, lba, data, StreamId::UNTAGGED, done)
    }

    /// [`write`](TrailDriver::write) with an explicit stream tag.
    ///
    /// The tag is carried through to the submission tap; it never changes
    /// the durability or batching semantics of the write.
    pub fn write_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        data: Vec<u8>,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        {
            let mut d = self.inner.borrow_mut();
            if dev >= d.data.len() {
                return Err(TrailError::BadDevice);
            }
            if data.is_empty() || !data.len().is_multiple_of(SECTOR_SIZE) {
                return Err(TrailError::BadDataLength);
            }
            let sectors = (data.len() / SECTOR_SIZE) as u64;
            if lba + sectors > d.data_capacity[dev] {
                return Err(TrailError::OutOfRange);
            }
            if let Some(tap) = &d.tap {
                tap.on_submit(sim.now(), dev as u32, lba, sectors as u32, false, stream);
            }
            let req = done.id().raw();
            let chunk_sectors = d.effective_max_batch as usize;
            let chunks: Vec<&[u8]> = data.chunks(chunk_sectors * SECTOR_SIZE).collect();
            let ack = Rc::new(RefCell::new(AckState {
                remaining: chunks.len(),
                done: Some(done),
                issued: sim.now(),
                dev: dev as u8,
                lba,
            }));
            let mut off = lba;
            for chunk in chunks {
                d.log_queue.push_back(QueuedWrite {
                    dev: dev as u8,
                    lba: off,
                    data: chunk.to_vec(),
                    ack: Rc::clone(&ack),
                });
                off += (chunk.len() / SECTOR_SIZE) as u64;
            }
            d.lifecycle
                .enqueue(sim.now(), req, d.log_queue.len() as u32);
            if let Some(t) = d.idle_timer.take() {
                sim.cancel(t);
            }
            d.idle_refresh_count = 0;
        }
        // Defer servicing by one (zero-delay) event so that a burst of
        // writes submitted at the same instant all reach the queue before
        // the next record is formed — "the Trail driver batches all the
        // requests currently in the log disk queue" (§4.2).
        let driver = self.clone();
        sim.schedule_now(move |sim| driver.service_log(sim));
        Ok(())
    }

    /// Submits a read of `count` sectors at `lba` of data disk `dev`.
    /// Served from pinned buffer memory when possible, otherwise from the
    /// data disk (with priority over write-backs).
    ///
    /// # Errors
    ///
    /// Returns [`TrailError::BadDevice`] or [`TrailError::OutOfRange`] on
    /// a malformed request.
    pub fn read(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        self.read_tagged(sim, dev, lba, count, StreamId::UNTAGGED, done)
    }

    /// [`read`](TrailDriver::read) with an explicit stream tag.
    ///
    /// The tag is carried through to the submission tap and, on a buffer
    /// miss, onto the forwarded data-disk request; it never changes which
    /// copy of the block is served.
    pub fn read_tagged(
        &self,
        sim: &mut Simulator,
        dev: usize,
        lba: Lba,
        count: u32,
        stream: StreamId,
        done: Completion<IoDone>,
    ) -> Result<(), TrailError> {
        let hit: Option<Vec<u8>> = {
            let mut d = self.inner.borrow_mut();
            if dev >= d.data.len() {
                return Err(TrailError::BadDevice);
            }
            if count == 0 || lba + u64::from(count) > d.data_capacity[dev] {
                return Err(TrailError::OutOfRange);
            }
            if let Some(tap) = &d.tap {
                tap.on_submit(sim.now(), dev as u32, lba, count, true, stream);
            }
            let key = BlockKey {
                dev: dev as u8,
                lba,
            };
            match d.buffers.lookup(key) {
                Some(buf) if buf.len() == count as usize * SECTOR_SIZE => {
                    let data = buf.to_vec();
                    d.stats.read_hits += 1;
                    Some(data)
                }
                _ => {
                    d.stats.read_misses += 1;
                    None
                }
            }
        };
        match hit {
            Some(data) => {
                // Zero-latency buffer hit; delivery is already deferred by
                // the completion itself.
                done.complete(
                    sim,
                    IoDone {
                        id: trail_blockio::RequestId(0),
                        lba,
                        kind: CommandKind::Read,
                        data: Some(data),
                        issued: sim.now(),
                        completed: sim.now(),
                        breakdown: ServiceBreakdown::default(),
                    },
                );
                Ok(())
            }
            None => {
                let drv = self.inner.borrow().data[dev].clone();
                // Uniform completion type: forward the caller's token
                // straight to the data-disk driver.
                drv.submit(sim, IoRequest::read(lba, count).tagged(stream), done)
                    .map_err(TrailError::Disk)?;
                Ok(())
            }
        }
    }

    /// Work not yet finished: queued log writes, an in-flight log command,
    /// and pinned blocks awaiting write-back.
    pub fn pending_work(&self) -> usize {
        let d = self.inner.borrow();
        d.log_queue.len() + usize::from(d.log_busy) + d.buffers.pinned_blocks()
    }

    /// Runs the simulation until the driver has no pending work.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while work is still pending (a
    /// driver bug) — unless the driver is stalled waiting for free tracks.
    pub fn run_until_quiescent(&self, sim: &mut Simulator) {
        while self.pending_work() > 0 {
            if !sim.step() {
                panic!("event queue empty with driver work pending");
            }
        }
    }

    /// Cleanly shuts down: drains all pending work, then marks the log
    /// disk clean so the next boot skips recovery.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the final header write.
    pub fn shutdown(&self, sim: &mut Simulator) -> Result<(), TrailError> {
        self.run_until_quiescent(sim);
        let (log_disk, header) = {
            let mut d = self.inner.borrow_mut();
            if let Some(t) = d.idle_timer.take() {
                sim.cancel(t);
            }
            let header = LogDiskHeader {
                epoch: d.epoch,
                clean: true,
                rotation_period: d.rotation_period,
                delta: d.predictor.delta(),
                geometry: d.geometry.clone(),
            };
            (d.log_disk.clone(), header)
        };
        write_header(sim, &log_disk, &header)?;
        Ok(())
    }

    /// Runs `f` against the accumulated statistics.
    pub fn with_stats<R>(&self, f: impl FnOnce(&TrailStats) -> R) -> R {
        f(&self.inner.borrow().stats)
    }

    /// The underlying log disk (for device-level statistics).
    pub fn log_disk(&self) -> Disk {
        self.inner.borrow().log_disk.clone()
    }

    /// The block target behind data device `dev` — a single-disk driver or
    /// a volume, depending on how the driver was started.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range.
    pub fn data_target(&self, dev: usize) -> SharedBlockDevice {
        Rc::clone(&self.inner.borrow().data[dev])
    }

    /// The epoch this driver instance writes under.
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch
    }

    /// Depth of the log-disk write queue.
    pub fn log_queue_depth(&self) -> usize {
        self.inner.borrow().log_queue.len()
    }

    /// Number of blocks pinned in buffer memory.
    pub fn pinned_blocks(&self) -> usize {
        self.inner.borrow().buffers.pinned_blocks()
    }

    /// `true` while the log disk is out of free tracks and writes queue.
    pub fn is_stalled(&self) -> bool {
        self.inner.borrow().stalled
    }

    /// Attaches a telemetry recorder, cascading to the log disk and every
    /// data-disk driver (which in turn cascade to their own disks). The
    /// default is a [`trail_telemetry::NullRecorder`], which costs nothing.
    pub fn set_recorder(&self, recorder: RecorderHandle) {
        let mut d = self.inner.borrow_mut();
        d.log_disk.set_recorder(Rc::clone(&recorder));
        for drv in &d.data {
            drv.set_recorder(Rc::clone(&recorder));
        }
        d.lifecycle.set_recorder(recorder);
    }

    /// Installs a workload-capture tap observing every accepted write and
    /// read at submission time (see [`trail_blockio::SubmitTap`]). The tap
    /// sees the *logical* request stream addressed at the data devices —
    /// not the log-disk records the driver forms from it — so a captured
    /// trace replays against any stack.
    pub fn set_tap(&self, tap: TapHandle) {
        self.inner.borrow_mut().tap = Some(tap);
    }

    /// Records a core-layer event through the shared lifecycle emitter.
    fn emit(&self, at: SimTime, dur: SimDuration, kind: EventKind) {
        self.inner.borrow().lifecycle.event(at, dur, None, kind);
    }

    // ------------------------------------------------------------------
    // Log-disk path
    // ------------------------------------------------------------------

    fn service_log(&self, sim: &mut Simulator) {
        let action = self.plan_log_action(sim.now());
        match action {
            LogAction::None => {}
            LogAction::ArmIdle => self.arm_idle_timer(sim),
            LogAction::Reposition => self.reposition(sim),
            LogAction::Dispatch { lba, bytes, ctx } => {
                let driver = self.clone();
                let log_disk = self.inner.borrow().log_disk.clone();
                // A cancelled delivery means power was lost with the record
                // in flight; dropping `ctx` cascades the cancellation to
                // every host completion riding in the batch.
                let done =
                    sim.completion(move |sim: &mut Simulator, res: Delivered<DiskResult>| {
                        if let Ok(res) = res {
                            driver.on_log_write_done(sim, res, ctx);
                        }
                    });
                tolerate_power_loss(
                    log_disk.submit(sim, DiskCommand::Write { lba, data: bytes }, done),
                    "log disk rejected a planned record write",
                );
            }
        }
    }

    fn plan_log_action(&self, now: SimTime) -> LogAction {
        let mut d = self.inner.borrow_mut();
        if d.log_busy {
            return LogAction::None;
        }
        if d.log_queue.is_empty() {
            if d.idle_timer.is_none() && d.idle_refresh_count < d.config.max_idle_refreshes {
                return LogAction::ArmIdle;
            }
            return LogAction::None;
        }
        let Some(cur) = d.current.as_ref() else {
            return if d.stalled {
                LogAction::None
            } else {
                LogAction::Reposition
            };
        };
        let track = cur.track;
        let first_lba = d.geometry.track_first_lba(track);
        let pred_lba = d
            .predictor
            .predict_same_track(now)
            .expect("driver always holds a reference point");
        debug_assert_eq!(
            d.geometry.track_of_lba(pred_lba),
            Some(track),
            "reference point must live on the current track"
        );
        let pred_sector = (pred_lba - first_lba) as u32;
        let first_need = 1 + d.log_queue.front().expect("queue nonempty").sectors();
        let Some(s) = d
            .current
            .as_ref()
            .expect("checked above")
            .find_fit(pred_sector, first_need)
        else {
            return if d.stalled {
                LogAction::None
            } else {
                LogAction::Reposition
            };
        };
        let run = d.current.as_ref().expect("checked above").free_run_len(s);
        let cap = (run - 1).min(d.effective_max_batch);
        let mut batch = Vec::new();
        let mut total = 0u32;
        while let Some(front) = d.log_queue.front() {
            let n = front.sectors();
            if total + n > cap {
                break;
            }
            let depth = d.log_queue.len() as u32;
            let w = d.log_queue.pop_front().expect("front observed");
            if let Some(c) = w.ack.borrow().done.as_ref() {
                d.lifecycle.dispatch(now, c.id().raw(), depth);
            }
            total += n;
            batch.push(w);
        }
        debug_assert!(!batch.is_empty(), "first request was checked to fit");
        let header_lba = first_lba + u64::from(s);
        let seq = d.next_seq;
        d.next_seq += 1;
        let (log_head_lba, log_head_seq) = match d.active_records.iter().next() {
            Some((&oldest_seq, rec)) => (rec.header_lba, oldest_seq),
            None => (header_lba as u32, seq),
        };
        let payload: Vec<PayloadSector> = batch
            .iter()
            .flat_map(|w| {
                w.data
                    .chunks_exact(SECTOR_SIZE)
                    .enumerate()
                    .map(move |(i, chunk)| {
                        let mut buf: SectorBuf = [0u8; SECTOR_SIZE];
                        buf.copy_from_slice(chunk);
                        PayloadSector {
                            data_major: w.dev,
                            data_minor: 0,
                            data_lba: (w.lba + i as u64) as u32,
                            data: buf,
                        }
                    })
            })
            .collect();
        let (_, bytes) = build_record(
            d.epoch,
            seq,
            d.prev_record_lba,
            log_head_lba,
            log_head_seq,
            header_lba as u32,
            &payload,
        )
        .expect("batch bounded by MAX_TRAIL_BATCH");
        d.prev_record_lba = Some(header_lba as u32);
        d.log_busy = true;
        LogAction::Dispatch {
            lba: header_lba,
            bytes,
            ctx: RecordCtx {
                seq,
                track,
                header_sector: s,
                total_sectors: total,
                batch,
                predicted_hit: s == pred_sector,
            },
        }
    }

    fn on_log_write_done(&self, sim: &mut Simulator, res: DiskResult, ctx: RecordCtx) {
        let completed = res.completed;
        let mut acks: Vec<(Completion<IoDone>, IoDone)> = Vec::new();
        let mut writebacks: Vec<BlockKey> = Vec::new();
        let reposition_next;
        {
            let mut d = self.inner.borrow_mut();
            let last_lba = d.geometry.track_first_lba(ctx.track)
                + u64::from(ctx.header_sector + ctx.total_sectors);
            d.predictor.set_reference(completed, last_lba);
            let cur = d.current.as_mut().expect("record written to current track");
            debug_assert_eq!(cur.track, ctx.track);
            cur.mark_used(ctx.header_sector, ctx.total_sectors + 1);
            d.pool.add_record(ctx.track);
            d.stats.log_records += 1;
            d.stats.batch_sizes.push(ctx.total_sectors);

            let mut pending = HashSet::new();
            for w in &ctx.batch {
                let key = BlockKey {
                    dev: w.dev,
                    lba: w.lba,
                };
                let (_, already_queued) = d.buffers.insert_write(key, w.data.clone(), ctx.seq);
                pending.insert(key);
                if !already_queued {
                    writebacks.push(key);
                }
            }
            let header_lba_u32 =
                (d.geometry.track_first_lba(ctx.track) + u64::from(ctx.header_sector)) as u32;
            d.active_records.insert(
                ctx.seq,
                ActiveRecord {
                    track: ctx.track,
                    header_lba: header_lba_u32,
                    pending,
                },
            );

            for w in &ctx.batch {
                let mut ack = w.ack.borrow_mut();
                ack.remaining -= 1;
                if ack.remaining == 0 {
                    let done_c = ack.done.take().expect("ack fires exactly once");
                    let done = IoDone {
                        id: trail_blockio::RequestId(0),
                        lba: ack.lba,
                        kind: CommandKind::Write,
                        data: None,
                        issued: ack.issued,
                        completed,
                        breakdown: ServiceBreakdown::default(),
                    };
                    let lat = completed.duration_since(ack.issued);
                    d.stats.sync_write_latency.record(lat);
                    d.lifecycle.complete(
                        ack.issued,
                        done_c.id().raw(),
                        RequestBreakdown {
                            queue: lat - res.breakdown.total,
                            overhead: res.breakdown.overhead,
                            seek: res.breakdown.seek,
                            rotation: res.breakdown.rotation,
                            transfer: res.breakdown.transfer,
                            total: lat,
                        },
                    );
                    let _ = ack.dev;
                    acks.push((done_c, done));
                }
            }
            d.log_busy = false;
            let cur = d.current.as_ref().expect("still current");
            reposition_next = d.config.reposition_every_write
                || cur.utilization() >= d.config.track_util_threshold;
        }
        self.emit(
            res.issued,
            completed.duration_since(res.issued),
            EventKind::BatchFlush {
                batch: ctx.batch.len() as u32,
            },
        );
        self.emit(
            completed,
            SimDuration::ZERO,
            if ctx.predicted_hit {
                EventKind::PredictHit
            } else {
                EventKind::PredictMiss
            },
        );
        for key in writebacks {
            self.enqueue_writeback(sim, key);
        }
        // Reposition (or service the queue) *before* returning completions:
        // "after each request is serviced, the Trail driver moves the disk
        // head to the next track before it starts to service the next
        // request(s)" (§4.2). Completion delivery is deferred, so an ack
        // handler that submits a new write always finds the head already on
        // its way to a fresh track.
        if reposition_next {
            self.reposition(sim);
        } else {
            self.service_log(sim);
        }
        for (c, done) in acks {
            c.complete(sim, done);
        }
    }

    fn reposition(&self, sim: &mut Simulator) {
        let target = {
            let mut d = self.inner.borrow_mut();
            if d.log_busy {
                return;
            }
            match d.pool.allocate_next() {
                None => {
                    if !d.stalled {
                        d.stalled = true;
                        d.stats.stalls += 1;
                    }
                    None
                }
                Some(next) => {
                    if let Some(cur) = d.current.take() {
                        let util = cur.utilization();
                        d.stats.track_utilization.push(util);
                    }
                    let (_, lba) = d
                        .predictor
                        .predict_on_track(next, sim.now(), 0)
                        .unwrap_or((0, d.geometry.track_first_lba(next)));
                    d.log_busy = true;
                    Some((next, lba))
                }
            }
        };
        let Some((next, lba)) = target else { return };
        let driver = self.clone();
        let log_disk = self.inner.borrow().log_disk.clone();
        let done = sim.completion(move |sim: &mut Simulator, res: Delivered<DiskResult>| {
            let Ok(res) = res else { return };
            {
                let mut d = driver.inner.borrow_mut();
                d.predictor.set_reference(res.completed, res.lba);
                let spt = d.geometry.spt_of_track(next);
                d.current = Some(CurrentTrack::new(next, spt));
                d.log_busy = false;
                d.stats.repositions += 1;
            }
            driver.emit(
                res.issued,
                res.completed.duration_since(res.issued),
                EventKind::Reposition { track: next },
            );
            driver.service_log(sim);
        });
        tolerate_power_loss(
            log_disk.submit(sim, DiskCommand::Read { lba, count: 1 }, done),
            "log disk rejected a repositioning read",
        );
    }

    fn arm_idle_timer(&self, sim: &mut Simulator) {
        let delay = self.inner.borrow().config.idle_reposition_after;
        let driver = self.clone();
        let id = sim.schedule_in(delay, move |sim| {
            driver.on_idle_timer(sim);
        });
        self.inner.borrow_mut().idle_timer = Some(id);
    }

    /// Idle reference refresh (§3.1's periodic repositioning). A real
    /// driver re-arms this forever; here one refresh per idle period keeps
    /// the event queue finite (the virtual spindle does not drift, so one
    /// refresh is enough for fidelity and testability).
    fn on_idle_timer(&self, sim: &mut Simulator) {
        let target = {
            let mut d = self.inner.borrow_mut();
            d.idle_timer = None;
            if d.log_busy || !d.log_queue.is_empty() {
                return;
            }
            if d.current.is_none() {
                return;
            }
            let pred = d
                .predictor
                .predict_same_track(sim.now())
                .expect("driver always holds a reference point");
            d.idle_refresh_count += 1;
            d.log_busy = true;
            pred
        };
        let driver = self.clone();
        let log_disk = self.inner.borrow().log_disk.clone();
        let done = sim.completion(move |sim: &mut Simulator, res: Delivered<DiskResult>| {
            let Ok(res) = res else { return };
            {
                let mut d = driver.inner.borrow_mut();
                d.predictor.set_reference(res.completed, res.lba);
                d.log_busy = false;
                d.stats.idle_refreshes += 1;
            }
            driver.service_log(sim);
        });
        tolerate_power_loss(
            log_disk.submit(
                sim,
                DiskCommand::Read {
                    lba: target,
                    count: 1,
                },
                done,
            ),
            "log disk rejected an idle refresh read",
        );
    }

    // ------------------------------------------------------------------
    // Data-disk write-back path
    // ------------------------------------------------------------------

    fn enqueue_writeback(&self, sim: &mut Simulator, key: BlockKey) {
        let (data, version, drv) = {
            let mut d = self.inner.borrow_mut();
            let (data, version) = d.buffers.snapshot(key);
            d.stats.writebacks += 1;
            (data, version, d.data[key.dev as usize].clone())
        };
        self.emit(
            sim.now(),
            SimDuration::ZERO,
            EventKind::WriteBack {
                dev: key.dev,
                lba: key.lba,
            },
        );
        let driver = self.clone();
        // A cancelled delivery means the machine lost power with the
        // write-back in flight; recovery at next boot re-issues it.
        let wb = sim.completion(move |sim, d| {
            if d.is_ok() {
                driver.on_writeback_done(sim, key, version);
            }
        });
        tolerate_power_loss(
            drv.submit(sim, IoRequest::write(key.lba, data), wb)
                .map(|_| ()),
            "data disk rejected a validated write-back",
        );
    }

    fn on_writeback_done(&self, sim: &mut Simulator, key: BlockKey, version: u64) {
        let (retry, unstalled) = {
            let mut d = self.inner.borrow_mut();
            match d.buffers.complete_writeback(key, version) {
                WritebackOutcome::Superseded { .. } => {
                    d.stats.superseded_writebacks += 1;
                    (true, false)
                }
                WritebackOutcome::Committed(refs) => {
                    let mut freed = 0;
                    for seq in refs {
                        let done = {
                            let rec = d
                                .active_records
                                .get_mut(&seq)
                                .expect("committed ref names an active record");
                            rec.pending.remove(&key);
                            rec.pending.is_empty()
                        };
                        if done {
                            let rec = d.active_records.remove(&seq).expect("record present");
                            freed += d.pool.commit_record(rec.track);
                        }
                    }
                    let unstall = d.stalled && freed > 0;
                    if unstall {
                        d.stalled = false;
                    }
                    (false, unstall)
                }
            }
        };
        if retry {
            self.enqueue_writeback(sim, key);
        }
        if unstalled {
            // Tracks freed while writers were waiting: move to a fresh
            // track and drain the queue.
            self.reposition(sim);
        }
    }
}

/// Resolves an internal submission: power loss while a command was being
/// issued means the machine died — the event is silently dropped (recovery
/// happens at next boot). Any other rejection is a driver bug.
fn tolerate_power_loss(result: Result<(), trail_disk::DiskError>, what: &str) {
    match result {
        Ok(()) => {}
        Err(trail_disk::DiskError::PoweredOff) => {}
        Err(e) => panic!("{what}: {e}"),
    }
}

impl fmt::Debug for TrailDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.borrow();
        f.debug_struct("TrailDriver")
            .field("epoch", &d.epoch)
            .field("log_queue", &d.log_queue.len())
            .field("pinned", &d.buffers.pinned_blocks())
            .field("active_records", &d.active_records.len())
            .field("stalled", &d.stalled)
            .finish()
    }
}
