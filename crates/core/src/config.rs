//! Driver configuration knobs.

use trail_sim::SimDuration;

/// Tunable parameters of the Trail driver.
///
/// The defaults reproduce the paper's prototype: a 30 % track-utilization
/// threshold before repositioning (§4.2), up to 32 sectors per batched
/// write record (§3.2's `MAX_TRAIL_BATCH`), and periodic head
/// repositioning when the log disk has been idle long enough for the
/// prediction reference point to go stale (§3.1).
///
/// # Examples
///
/// ```
/// let cfg = trail_core::TrailConfig::default();
/// assert_eq!(cfg.track_util_threshold, 0.30);
/// assert_eq!(cfg.max_batch_sectors, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrailConfig {
    /// Fraction of a track that may be filled before the driver moves the
    /// head to the next free track (the paper's 30 % threshold).
    pub track_util_threshold: f64,
    /// Maximum payload sectors per write record (the paper's
    /// `MAX_TRAIL_BATCH`). Must be between 1 and
    /// [`MAX_TRAIL_BATCH`](crate::format::MAX_TRAIL_BATCH).
    pub max_batch_sectors: u32,
    /// How long the log disk may sit idle before the driver refreshes its
    /// prediction reference point with a repositioning read (§3.1's
    /// "periodic repositioning").
    pub idle_reposition_after: SimDuration,
    /// If `true`, the driver repositions to a fresh track after *every*
    /// log write, the policy of the original ICCD'93 design; `false` uses
    /// this paper's utilization-threshold policy. Exposed for the ablation
    /// benchmark.
    pub reposition_every_write: bool,
    /// How many consecutive idle reference refreshes the driver performs
    /// before going quiet until the next write. A real driver refreshes
    /// forever; bounding it keeps the event queue finite for tests. Raise
    /// it when the drive has spindle wander (see
    /// `trail_disk::MechanicalModel::spindle_wander`); `0` disables idle
    /// refreshing entirely (ablation).
    pub max_idle_refreshes: u32,
    /// Restrict the log-disk track pool to this many tracks (`None` uses
    /// the whole disk). The paper notes running out of free tracks is
    /// rare on a real disk (§4.4); this knob makes the out-of-tracks
    /// stall path and circular wrap-around testable without gigabytes of
    /// traffic.
    pub log_track_limit: Option<u64>,
}

impl Default for TrailConfig {
    fn default() -> Self {
        TrailConfig {
            track_util_threshold: 0.30,
            max_batch_sectors: crate::format::MAX_TRAIL_BATCH as u32,
            idle_reposition_after: SimDuration::from_millis(500),
            reposition_every_write: false,
            max_idle_refreshes: 1,
            log_track_limit: None,
        }
    }
}

impl TrailConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0.0, 1.0]` or the batch limit
    /// is zero or exceeds the on-disk format's capacity.
    pub fn validate(&self) {
        assert!(
            self.track_util_threshold > 0.0 && self.track_util_threshold <= 1.0,
            "track utilization threshold must be in (0, 1], got {}",
            self.track_util_threshold
        );
        assert!(
            self.max_batch_sectors >= 1
                && self.max_batch_sectors <= crate::format::MAX_TRAIL_BATCH as u32,
            "max batch sectors must be in 1..={}, got {}",
            crate::format::MAX_TRAIL_BATCH,
            self.max_batch_sectors
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TrailConfig::default();
        c.validate();
        assert_eq!(c.track_util_threshold, 0.30);
        assert!(!c.reposition_every_write);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        TrailConfig {
            track_util_threshold: 0.0,
            ..TrailConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn oversized_batch_rejected() {
        TrailConfig {
            max_batch_sectors: 1000,
            ..TrailConfig::default()
        }
        .validate();
    }
}
