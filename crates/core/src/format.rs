//! The self-describing on-disk log organization (paper §3.2).
//!
//! Trail's log disk holds two sector formats, both recognizable from raw
//! bytes alone — recovery never consults in-memory state:
//!
//! - the **log disk header** (`log_disk_header`): written by the formatter
//!   at well-known locations, carrying the signature, the epoch counter,
//!   the crash flag, and the drive's probed geometry/calibration;
//! - **write records** (`record_header` + payload): one header sector whose
//!   first byte is `0xFF`, followed by `batch_size` payload sectors whose
//!   first bytes are forced to `0x00` (the displaced bytes ride in the
//!   header's `first_data_byte[]` array). This first-byte transposition is
//!   the paper's trick for distinguishing headers from arbitrary user data
//!   without bit stuffing.
//!
//! A record is *valid* only under the current epoch; formatting or driver
//! restart bumps the epoch, which retires every older record without
//! touching the medium.

use std::fmt;

use trail_disk::{DiskGeometry, SectorBuf, Zone, SECTOR_SIZE};
use trail_sim::SimDuration;

/// Length of the on-disk signature fields (the paper's `MAX_SIG_LEN`).
pub const MAX_SIG_LEN: usize = 8;

/// Signature identifying a formatted Trail log disk.
pub const DISK_SIGNATURE: [u8; MAX_SIG_LEN] = *b"TRAILFMT";

/// Signature identifying a write-record header sector.
pub const RECORD_SIGNATURE: [u8; MAX_SIG_LEN] = *b"TRAILREC";

/// Maximum payload sectors per write record (the paper's
/// `MAX_TRAIL_BATCH`). Sized so a record header fits one sector.
pub const MAX_TRAIL_BATCH: usize = 32;

/// First byte of every record-header sector (`first_byte_of_header`).
pub const HEADER_FIRST_BYTE: u8 = 0xFF;

/// First byte forced onto every payload sector.
pub const PAYLOAD_FIRST_BYTE: u8 = 0x00;

/// `prev_sect` encoding for "no previous record".
pub const NO_PREV_SECT: u32 = u32::MAX;

const HEADER_FIXED_LEN: usize = 49;
const ENTRY_LEN: usize = 11;

/// FNV-1a 32-bit hash, used as the payload checksum.
///
/// This field is an extension over the paper's format: the record header
/// is the *first* sector of the physical record write, so a power failure
/// mid-record can persist a valid header with torn payload. The checksum
/// lets recovery detect and drop such a torn youngest record (only the
/// in-flight record can be torn — the log disk serializes record writes).
pub fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Errors decoding on-disk structures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FormatError {
    /// The sector does not carry the expected signature.
    BadSignature,
    /// A length or count field is inconsistent.
    Corrupt,
    /// The geometry table does not fit the header sector.
    TooManyZones,
    /// A record would exceed [`MAX_TRAIL_BATCH`] payload sectors.
    BatchTooLarge,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadSignature => write!(f, "sector does not carry a Trail signature"),
            FormatError::Corrupt => write!(f, "on-disk structure is internally inconsistent"),
            FormatError::TooManyZones => write!(f, "zone table does not fit the header sector"),
            FormatError::BatchTooLarge => {
                write!(f, "record exceeds {MAX_TRAIL_BATCH} payload sectors")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// The global log-disk header (the paper's `log_disk_header`), extended
/// with the probed geometry and calibration the prediction formula needs.
#[derive(Clone, Debug, PartialEq)]
pub struct LogDiskHeader {
    /// Incremented each time the Trail driver initializes; write records
    /// from older epochs are dead.
    pub epoch: u64,
    /// The paper's `crash_var`: `true` after a clean shutdown; `false`
    /// while mounted (so a reboot seeing `false` triggers recovery).
    pub clean: bool,
    /// Probed spindle rotation period.
    pub rotation_period: SimDuration,
    /// Calibrated prediction offset δ, in sectors.
    pub delta: u32,
    /// The drive's physical geometry ("stored right next to the global
    /// disk header").
    pub geometry: DiskGeometry,
}

impl LogDiskHeader {
    /// Serializes the header into one sector.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::TooManyZones`] if the zone table overflows
    /// the sector.
    pub fn encode(&self) -> Result<SectorBuf, FormatError> {
        let zones = self.geometry.zones();
        if HEADER_FIXED_LEN + zones.len() * 8 > SECTOR_SIZE {
            return Err(FormatError::TooManyZones);
        }
        let mut b = [0u8; SECTOR_SIZE];
        b[0..8].copy_from_slice(&DISK_SIGNATURE);
        b[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        b[16] = u8::from(self.clean);
        b[17..25].copy_from_slice(&self.rotation_period.as_nanos().to_le_bytes());
        b[25..29].copy_from_slice(&self.delta.to_le_bytes());
        b[29..33].copy_from_slice(&self.geometry.heads().to_le_bytes());
        b[33..37].copy_from_slice(&self.geometry.track_skew().to_le_bytes());
        b[37..41].copy_from_slice(&self.geometry.cyl_skew().to_le_bytes());
        b[41..45].copy_from_slice(&(zones.len() as u32).to_le_bytes());
        let mut off = HEADER_FIXED_LEN;
        for z in zones {
            b[off..off + 4].copy_from_slice(&z.cylinders.to_le_bytes());
            b[off + 4..off + 8].copy_from_slice(&z.spt.to_le_bytes());
            off += 8;
        }
        Ok(b)
    }

    /// Parses a header sector.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BadSignature`] if the sector is not a Trail
    /// disk header, or [`FormatError::Corrupt`] if its fields are
    /// inconsistent.
    pub fn decode(b: &SectorBuf) -> Result<Self, FormatError> {
        if b[0..8] != DISK_SIGNATURE {
            return Err(FormatError::BadSignature);
        }
        let epoch = u64::from_le_bytes(b[8..16].try_into().expect("slice len"));
        let clean = match b[16] {
            0 => false,
            1 => true,
            _ => return Err(FormatError::Corrupt),
        };
        let rotation =
            SimDuration::from_nanos(u64::from_le_bytes(b[17..25].try_into().expect("slice len")));
        let delta = u32::from_le_bytes(b[25..29].try_into().expect("slice len"));
        let heads = u32::from_le_bytes(b[29..33].try_into().expect("slice len"));
        let track_skew = u32::from_le_bytes(b[33..37].try_into().expect("slice len"));
        let cyl_skew = u32::from_le_bytes(b[37..41].try_into().expect("slice len"));
        let n_zones = u32::from_le_bytes(b[41..45].try_into().expect("slice len")) as usize;
        if heads == 0 || n_zones == 0 || HEADER_FIXED_LEN + n_zones * 8 > SECTOR_SIZE {
            return Err(FormatError::Corrupt);
        }
        let mut zones = Vec::with_capacity(n_zones);
        let mut off = HEADER_FIXED_LEN;
        for _ in 0..n_zones {
            let cylinders = u32::from_le_bytes(b[off..off + 4].try_into().expect("slice len"));
            let spt = u32::from_le_bytes(b[off + 4..off + 8].try_into().expect("slice len"));
            if cylinders == 0 || spt == 0 {
                return Err(FormatError::Corrupt);
            }
            zones.push(Zone { cylinders, spt });
            off += 8;
        }
        Ok(LogDiskHeader {
            epoch,
            clean,
            rotation_period: rotation,
            delta,
            geometry: DiskGeometry::new(heads, zones, track_skew, cyl_skew),
        })
    }
}

/// One per-sector entry of a write record's arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecordEntry {
    /// The payload sector's original first byte (displaced by the
    /// [`PAYLOAD_FIRST_BYTE`] marker).
    pub first_data_byte: u8,
    /// Target data-disk major number (the data-disk index in this
    /// reproduction).
    pub data_major: u8,
    /// Target data-disk minor number.
    pub data_minor: u8,
    /// Target sector on the data disk.
    pub data_lba: u32,
    /// Where this payload sector lives on the log disk.
    pub log_lba: u32,
}

/// A parsed write-record header (the paper's `record_header` /
/// `sect_head_t`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecordHeader {
    /// Epoch under which the record was written.
    pub epoch: u64,
    /// Monotone per-epoch record counter.
    pub sequence_id: u64,
    /// Log-disk LBA of the previous record's header, or `None` for the
    /// first record of an epoch.
    pub prev_sect: Option<u32>,
    /// Log-disk LBA of the oldest record not yet committed to the data
    /// disks when this record was written (bounds recovery back-scanning).
    pub log_head_lba: u32,
    /// Sequence id of that oldest record.
    pub log_head_seq: u64,
    /// FNV-1a checksum of the on-disk payload bytes (after first-byte
    /// transposition); see [`fnv1a`].
    pub payload_checksum: u32,
    /// Per-payload-sector bookkeeping.
    pub entries: Vec<RecordEntry>,
}

impl RecordHeader {
    /// Serializes the header into one sector (first byte `0xFF`).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BatchTooLarge`] if there are more than
    /// [`MAX_TRAIL_BATCH`] entries, or [`FormatError::Corrupt`] if there
    /// are none.
    pub fn encode(&self) -> Result<SectorBuf, FormatError> {
        if self.entries.len() > MAX_TRAIL_BATCH {
            return Err(FormatError::BatchTooLarge);
        }
        if self.entries.is_empty() {
            return Err(FormatError::Corrupt);
        }
        let mut b = [0u8; SECTOR_SIZE];
        b[0] = HEADER_FIRST_BYTE;
        b[1..9].copy_from_slice(&RECORD_SIGNATURE);
        b[9..17].copy_from_slice(&self.epoch.to_le_bytes());
        b[17..25].copy_from_slice(&self.sequence_id.to_le_bytes());
        b[25..29].copy_from_slice(&self.prev_sect.unwrap_or(NO_PREV_SECT).to_le_bytes());
        b[29..33].copy_from_slice(&self.log_head_lba.to_le_bytes());
        b[33..41].copy_from_slice(&self.log_head_seq.to_le_bytes());
        b[41..45].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        b[45..49].copy_from_slice(&self.payload_checksum.to_le_bytes());
        let mut off = HEADER_FIXED_LEN;
        for e in &self.entries {
            b[off] = e.first_data_byte;
            b[off + 1] = e.data_major;
            b[off + 2] = e.data_minor;
            b[off + 3..off + 7].copy_from_slice(&e.data_lba.to_le_bytes());
            b[off + 7..off + 11].copy_from_slice(&e.log_lba.to_le_bytes());
            off += ENTRY_LEN;
        }
        Ok(b)
    }

    /// Parses a sector as a record header.
    ///
    /// Returns `None` if the sector is not a record header (wrong first
    /// byte or signature) — the normal case while scanning — and an error
    /// if it carries the signature but is internally inconsistent.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Corrupt`] for a signed but malformed header.
    pub fn decode(b: &SectorBuf) -> Result<Option<Self>, FormatError> {
        if b[0] != HEADER_FIRST_BYTE || b[1..9] != RECORD_SIGNATURE {
            return Ok(None);
        }
        let epoch = u64::from_le_bytes(b[9..17].try_into().expect("slice len"));
        let sequence_id = u64::from_le_bytes(b[17..25].try_into().expect("slice len"));
        let prev_raw = u32::from_le_bytes(b[25..29].try_into().expect("slice len"));
        let log_head_lba = u32::from_le_bytes(b[29..33].try_into().expect("slice len"));
        let log_head_seq = u64::from_le_bytes(b[33..41].try_into().expect("slice len"));
        let batch = u32::from_le_bytes(b[41..45].try_into().expect("slice len")) as usize;
        let payload_checksum = u32::from_le_bytes(b[45..49].try_into().expect("slice len"));
        if batch == 0 || batch > MAX_TRAIL_BATCH {
            return Err(FormatError::Corrupt);
        }
        let mut entries = Vec::with_capacity(batch);
        let mut off = HEADER_FIXED_LEN;
        for _ in 0..batch {
            entries.push(RecordEntry {
                first_data_byte: b[off],
                data_major: b[off + 1],
                data_minor: b[off + 2],
                data_lba: u32::from_le_bytes(b[off + 3..off + 7].try_into().expect("slice len")),
                log_lba: u32::from_le_bytes(b[off + 7..off + 11].try_into().expect("slice len")),
            });
            off += ENTRY_LEN;
        }
        Ok(Some(RecordHeader {
            epoch,
            sequence_id,
            prev_sect: (prev_raw != NO_PREV_SECT).then_some(prev_raw),
            log_head_lba,
            log_head_seq,
            payload_checksum,
            entries,
        }))
    }
}

/// One payload sector queued for logging, before transposition.
#[derive(Clone, Debug)]
pub struct PayloadSector {
    /// Target data-disk major number.
    pub data_major: u8,
    /// Target data-disk minor number.
    pub data_minor: u8,
    /// Target sector on the data disk.
    pub data_lba: u32,
    /// The sector contents.
    pub data: SectorBuf,
}

/// Builds the raw bytes of a complete write record: the header sector
/// followed by the transposed payload sectors, laid out contiguously from
/// `header_lba` on the log disk.
///
/// # Errors
///
/// Returns [`FormatError::BatchTooLarge`] / [`FormatError::Corrupt`] under
/// the same conditions as [`RecordHeader::encode`].
pub fn build_record(
    epoch: u64,
    sequence_id: u64,
    prev_sect: Option<u32>,
    log_head_lba: u32,
    log_head_seq: u64,
    header_lba: u32,
    payload: &[PayloadSector],
) -> Result<(RecordHeader, Vec<u8>), FormatError> {
    let entries: Vec<RecordEntry> = payload
        .iter()
        .enumerate()
        .map(|(i, p)| RecordEntry {
            first_data_byte: p.data[0],
            data_major: p.data_major,
            data_minor: p.data_minor,
            data_lba: p.data_lba,
            log_lba: header_lba + 1 + i as u32,
        })
        .collect();
    let mut payload_bytes = Vec::with_capacity(payload.len() * SECTOR_SIZE);
    for p in payload {
        let mut sector = p.data;
        sector[0] = PAYLOAD_FIRST_BYTE;
        payload_bytes.extend_from_slice(&sector);
    }
    let header = RecordHeader {
        epoch,
        sequence_id,
        prev_sect,
        log_head_lba,
        log_head_seq,
        payload_checksum: fnv1a(&payload_bytes),
        entries,
    };
    let mut bytes = Vec::with_capacity((payload.len() + 1) * SECTOR_SIZE);
    bytes.extend_from_slice(&header.encode()?);
    bytes.extend_from_slice(&payload_bytes);
    Ok((header, bytes))
}

/// Restores a payload sector read back from the log disk: puts the
/// displaced first byte back.
pub fn restore_payload(entry: &RecordEntry, sector: &mut SectorBuf) {
    sector[0] = entry.first_data_byte;
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;

    fn sample_header() -> LogDiskHeader {
        LogDiskHeader {
            epoch: 7,
            clean: true,
            rotation_period: SimDuration::from_nanos(11_111_111),
            delta: 12,
            geometry: profiles::seagate_st41601n().geometry,
        }
    }

    #[test]
    fn disk_header_round_trips() {
        let h = sample_header();
        let sector = h.encode().unwrap();
        let back = LogDiskHeader::decode(&sector).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn disk_header_rejects_garbage() {
        let zeros = [0u8; SECTOR_SIZE];
        assert_eq!(
            LogDiskHeader::decode(&zeros),
            Err(FormatError::BadSignature)
        );
        let mut bad_flag = sample_header().encode().unwrap();
        bad_flag[16] = 9;
        assert_eq!(LogDiskHeader::decode(&bad_flag), Err(FormatError::Corrupt));
    }

    fn payload(n: usize) -> Vec<PayloadSector> {
        (0..n)
            .map(|i| {
                let mut data = [0u8; SECTOR_SIZE];
                data[0] = 0xAA ^ (i as u8); // nonzero first byte to transpose
                data[1] = i as u8;
                data[SECTOR_SIZE - 1] = 0x5A;
                PayloadSector {
                    data_major: 1,
                    data_minor: 0,
                    data_lba: 1000 + i as u32,
                    data,
                }
            })
            .collect()
    }

    #[test]
    fn record_round_trips_with_transposition() {
        let p = payload(3);
        let (header, bytes) = build_record(5, 42, Some(900), 880, 40, 2000, &p).unwrap();
        assert_eq!(bytes.len(), 4 * SECTOR_SIZE);
        // Header sector parses back.
        let hsec: SectorBuf = bytes[0..SECTOR_SIZE].try_into().unwrap();
        let parsed = RecordHeader::decode(&hsec).unwrap().expect("is a header");
        assert_eq!(parsed, header);
        assert_eq!(parsed.epoch, 5);
        assert_eq!(parsed.sequence_id, 42);
        assert_eq!(parsed.prev_sect, Some(900));
        assert_eq!(parsed.log_head_lba, 880);
        assert_eq!(parsed.log_head_seq, 40);
        // Payload sectors all start 0x00 on disk.
        for i in 0..3 {
            assert_eq!(bytes[(i + 1) * SECTOR_SIZE], PAYLOAD_FIRST_BYTE);
        }
        // log_lba is contiguous after the header.
        assert_eq!(parsed.entries[0].log_lba, 2001);
        assert_eq!(parsed.entries[2].log_lba, 2003);
        // Restoring puts the displaced byte back.
        for (i, e) in parsed.entries.iter().enumerate() {
            let mut sec: SectorBuf = bytes[(i + 1) * SECTOR_SIZE..(i + 2) * SECTOR_SIZE]
                .try_into()
                .unwrap();
            restore_payload(e, &mut sec);
            assert_eq!(sec, p[i].data, "payload sector {i} restored exactly");
        }
    }

    #[test]
    fn record_decode_ignores_non_headers() {
        // Payload-looking sector: first byte 0x00.
        let zeros = [0u8; SECTOR_SIZE];
        assert_eq!(RecordHeader::decode(&zeros), Ok(None));
        // 0xFF first byte but wrong signature: user data that happens to
        // start with 0xFF can never exist on the log disk (transposition),
        // but stale garbage might; it must not parse.
        let mut fake = [0u8; SECTOR_SIZE];
        fake[0] = HEADER_FIRST_BYTE;
        assert_eq!(RecordHeader::decode(&fake), Ok(None));
    }

    #[test]
    fn record_decode_flags_corrupt_signed_header() {
        let (_, bytes) = build_record(1, 1, None, 0, 0, 100, &payload(1)).unwrap();
        let mut hsec: SectorBuf = bytes[0..SECTOR_SIZE].try_into().unwrap();
        hsec[41..45].copy_from_slice(&0u32.to_le_bytes()); // batch = 0
        assert_eq!(RecordHeader::decode(&hsec), Err(FormatError::Corrupt));
        hsec[41..45].copy_from_slice(&1000u32.to_le_bytes()); // batch too big
        assert_eq!(RecordHeader::decode(&hsec), Err(FormatError::Corrupt));
    }

    #[test]
    fn record_limits_enforced() {
        assert!(matches!(
            build_record(1, 1, None, 0, 0, 0, &payload(MAX_TRAIL_BATCH + 1)),
            Err(FormatError::BatchTooLarge)
        ));
        assert!(matches!(
            build_record(1, 1, None, 0, 0, 0, &payload(0)),
            Err(FormatError::Corrupt)
        ));
        // Exactly MAX_TRAIL_BATCH fits a sector.
        let (h, _) = build_record(1, 1, None, 0, 0, 0, &payload(MAX_TRAIL_BATCH)).unwrap();
        assert!(h.encode().is_ok());
    }

    #[test]
    fn no_prev_sect_round_trips() {
        let (_, bytes) = build_record(1, 0, None, 0, 0, 64, &payload(1)).unwrap();
        let hsec: SectorBuf = bytes[0..SECTOR_SIZE].try_into().unwrap();
        let parsed = RecordHeader::decode(&hsec).unwrap().unwrap();
        assert_eq!(parsed.prev_sect, None);
    }
}
