//! The Trail formatting tool (paper §4.1).
//!
//! "The formatting tool writes the log disk's physical geometry data as
//! well as the signature and crash variable to the dedicated tracks on the
//! log disk." The formatter also runs the timing probes (rotation period
//! and δ calibration) whose results the driver's prediction formula
//! consumes. It does **not** zero the medium: bumping the epoch at every
//! driver initialization is what retires stale records.

use trail_disk::{Disk, DiskCommand, DiskGeometry, Lba};
use trail_probe::{calibrate_delta, measure_rotation_period, run_blocking};
use trail_sim::{SimDuration, Simulator};

use crate::error::TrailError;
use crate::format::LogDiskHeader;

/// The track sacrificed to the δ-calibration experiment (overwritten with
/// zeros during formatting, before any records exist).
pub const CALIBRATION_TRACK: u64 = 1;

/// Options for [`format_log_disk`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FormatOptions {
    /// Skip the calibration experiment and use this δ instead.
    pub delta_override: Option<u32>,
}

/// What the formatter measured and wrote.
#[derive(Clone, Debug)]
pub struct FormatReport {
    /// The header now on the disk (epoch 0, clean).
    pub header: LogDiskHeader,
    /// Probed rotation period.
    pub rotation_period: SimDuration,
    /// Calibrated (or overridden) δ.
    pub delta: u32,
}

/// The sector range `[first, last]` of log-disk tracks available for write
/// records: track 0 holds the primary header, the last track its replica.
pub fn data_track_range(geometry: &DiskGeometry) -> (u64, u64) {
    (1, geometry.total_tracks() - 2)
}

/// LBA of the header replica (first sector of the last track).
pub fn replica_lba(geometry: &DiskGeometry) -> Lba {
    geometry.track_first_lba(geometry.total_tracks() - 1)
}

/// Formats `disk` as a Trail log disk: probes its timing, then writes the
/// header to sector 0 and the replica location.
///
/// Runs as an offline tool: it drains the simulation's event queue, so no
/// other actors should have events pending.
///
/// # Errors
///
/// Propagates probe and device errors.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk};
/// use trail_core::{format_log_disk, FormatOptions};
///
/// let mut sim = Simulator::new();
/// let disk = Disk::new("log", profiles::seagate_st41601n());
/// let report = format_log_disk(&mut sim, &disk, FormatOptions::default())?;
/// assert_eq!(report.header.epoch, 0);
/// assert!(report.header.clean);
/// # Ok::<(), trail_core::TrailError>(())
/// ```
pub fn format_log_disk(
    sim: &mut Simulator,
    disk: &Disk,
    options: FormatOptions,
) -> Result<FormatReport, TrailError> {
    let geometry = disk.geometry();
    let rotation_period = measure_rotation_period(sim, disk, 5)?;
    let delta = match options.delta_override {
        Some(d) => d,
        None => calibrate_delta(sim, disk, CALIBRATION_TRACK)?.recommended,
    };
    let header = LogDiskHeader {
        epoch: 0,
        clean: true,
        rotation_period,
        delta,
        geometry: geometry.clone(),
    };
    write_header(sim, disk, &header)?;
    Ok(FormatReport {
        header,
        rotation_period,
        delta,
    })
}

/// Writes `header` to the primary and replica locations (timed writes).
///
/// # Errors
///
/// Propagates encoding and device errors.
pub fn write_header(
    sim: &mut Simulator,
    disk: &Disk,
    header: &LogDiskHeader,
) -> Result<(), TrailError> {
    let sector = header.encode()?;
    run_blocking(
        sim,
        disk,
        DiskCommand::Write {
            lba: 0,
            data: sector.to_vec(),
        },
    )?;
    run_blocking(
        sim,
        disk,
        DiskCommand::Write {
            lba: replica_lba(&header.geometry),
            data: sector.to_vec(),
        },
    )?;
    Ok(())
}

/// Reads and decodes the log-disk header, falling back to the replica if
/// the primary does not parse.
///
/// # Errors
///
/// Returns [`TrailError::NotFormatted`] if neither copy carries a Trail
/// signature.
pub fn read_header(sim: &mut Simulator, disk: &Disk) -> Result<LogDiskHeader, TrailError> {
    for lba in [0, replica_lba(&disk.geometry())] {
        let res = run_blocking(sim, disk, DiskCommand::Read { lba, count: 1 })?;
        let data = res.data.expect("read returns data");
        let sector: trail_disk::SectorBuf = data[..].try_into().expect("single-sector read length");
        match LogDiskHeader::decode(&sector) {
            Ok(h) => return Ok(h),
            Err(_) => continue,
        }
    }
    Err(TrailError::NotFormatted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;

    #[test]
    fn format_then_read_round_trips() {
        let mut sim = Simulator::new();
        let disk = Disk::new("log", profiles::tiny_test_disk());
        let report = format_log_disk(&mut sim, &disk, FormatOptions::default()).unwrap();
        let header = read_header(&mut sim, &disk).unwrap();
        assert_eq!(header, report.header);
        assert_eq!(header.epoch, 0);
        assert!(header.clean);
        assert_eq!(header.rotation_period, disk.mechanics().rotation_period);
    }

    #[test]
    fn delta_override_skips_calibration() {
        let mut sim = Simulator::new();
        let disk = Disk::new("log", profiles::tiny_test_disk());
        let report = format_log_disk(
            &mut sim,
            &disk,
            FormatOptions {
                delta_override: Some(9),
            },
        )
        .unwrap();
        assert_eq!(report.delta, 9);
    }

    #[test]
    fn replica_survives_primary_corruption() {
        let mut sim = Simulator::new();
        let disk = Disk::new("log", profiles::tiny_test_disk());
        format_log_disk(&mut sim, &disk, FormatOptions::default()).unwrap();
        // Clobber the primary header.
        disk.poke_sector(0, &[0u8; trail_disk::SECTOR_SIZE]);
        let header = read_header(&mut sim, &disk).unwrap();
        assert_eq!(header.epoch, 0);
    }

    #[test]
    fn unformatted_disk_is_rejected() {
        let mut sim = Simulator::new();
        let disk = Disk::new("log", profiles::tiny_test_disk());
        assert_eq!(
            read_header(&mut sim, &disk).unwrap_err(),
            TrailError::NotFormatted
        );
    }

    #[test]
    fn data_track_range_excludes_header_tracks() {
        let g = profiles::tiny_test_disk().geometry;
        let (first, last) = data_track_range(&g);
        assert_eq!(first, 1);
        assert_eq!(last, g.total_tracks() - 2);
        assert!(replica_lba(&g) > g.track_first_lba(last));
    }
}
