//! FIFO track allocation over the log disk (paper §4.1, §4.4).
//!
//! "Essentially the entire log disk serves as a circular logging buffer,
//! with tracks as basic logging units." Tracks are handed out in ring
//! order; a track returns to the free pool only after every write record
//! it holds has been committed to the data disks **and** every older track
//! has been freed first — allocation and de-allocation are both FIFO,
//! which is what lets a single `log_head` pointer bound recovery's
//! back-scan.

use std::collections::HashMap;

/// Circular FIFO allocator over a contiguous range of log-disk tracks.
///
/// # Examples
///
/// ```
/// let mut pool = trail_core::TrackPool::new(1, 4);
/// let a = pool.allocate_next().unwrap();
/// assert_eq!(a, 1);
/// pool.add_record(a);
/// pool.commit_record(a);
/// // The track being filled is never reclaimed out from under the head.
/// assert_eq!(pool.active_tracks(), 1);
/// assert_eq!(pool.records_on(a), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct TrackPool {
    first: u64,
    last: u64,
    /// Oldest allocated track still holding uncommitted records.
    head: u64,
    /// Next track to hand out.
    tail: u64,
    /// Uncommitted record count per allocated track.
    records: HashMap<u64, u32>,
    /// Number of tracks currently allocated (ring occupancy).
    allocated: u64,
}

impl TrackPool {
    /// Creates a pool over tracks `first..=last`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or smaller than two tracks (the ring
    /// needs one free track to distinguish full from empty).
    pub fn new(first: u64, last: u64) -> Self {
        assert!(
            last > first,
            "track pool needs at least two tracks, got {first}..={last}"
        );
        TrackPool {
            first,
            last,
            head: first,
            tail: first,
            records: HashMap::new(),
            allocated: 0,
        }
    }

    fn ring_next(&self, t: u64) -> u64 {
        if t == self.last {
            self.first
        } else {
            t + 1
        }
    }

    /// Total tracks managed.
    pub fn capacity(&self) -> u64 {
        self.last - self.first + 1
    }

    /// Tracks currently allocated (between head and tail).
    pub fn active_tracks(&self) -> u64 {
        self.allocated
    }

    /// Tracks available for allocation.
    pub fn free_tracks(&self) -> u64 {
        self.capacity() - self.allocated
    }

    /// `true` when no track can be allocated.
    pub fn is_full(&self) -> bool {
        self.allocated >= self.capacity()
    }

    /// The oldest allocated track (only meaningful when not empty).
    pub fn head_track(&self) -> u64 {
        self.head
    }

    /// Allocates the next track in ring order, or `None` when the log disk
    /// is out of free tracks (the event the paper calls rare — §4.4).
    pub fn allocate_next(&mut self) -> Option<u64> {
        if self.is_full() {
            return None;
        }
        let t = self.tail;
        self.tail = self.ring_next(t);
        self.allocated += 1;
        self.records.insert(t, 0);
        Some(t)
    }

    /// Notes one more uncommitted write record on `track`.
    ///
    /// # Panics
    ///
    /// Panics if `track` is not currently allocated.
    pub fn add_record(&mut self, track: u64) {
        *self
            .records
            .get_mut(&track)
            .expect("add_record on unallocated track") += 1;
    }

    /// Notes that one write record on `track` has been committed to the
    /// data disks, then reclaims any now-empty tracks *in FIFO order* from
    /// the head.
    ///
    /// Returns the number of tracks freed by this commit.
    ///
    /// # Panics
    ///
    /// Panics if `track` is not allocated or has no outstanding records.
    pub fn commit_record(&mut self, track: u64) -> u64 {
        let n = self
            .records
            .get_mut(&track)
            .expect("commit_record on unallocated track");
        assert!(*n > 0, "commit_record with no outstanding records");
        *n -= 1;
        let mut freed = 0;
        while self.allocated > 0 {
            match self.records.get(&self.head) {
                Some(0) => {
                    // The head track may still be the one being filled; it
                    // is only reclaimable once a younger track exists.
                    if self.allocated == 1 {
                        break;
                    }
                    self.records.remove(&self.head);
                    self.head = self.ring_next(self.head);
                    self.allocated -= 1;
                    freed += 1;
                }
                _ => break,
            }
        }
        freed
    }

    /// Uncommitted record count on `track`, or `None` if not allocated.
    pub fn records_on(&self, track: u64) -> Option<u32> {
        self.records.get(&track).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_in_ring_order() {
        let mut p = TrackPool::new(10, 13);
        assert_eq!(p.capacity(), 4);
        assert_eq!(p.allocate_next(), Some(10));
        assert_eq!(p.allocate_next(), Some(11));
        assert_eq!(p.allocate_next(), Some(12));
        assert_eq!(p.allocate_next(), Some(13));
        assert!(p.is_full());
        assert_eq!(p.allocate_next(), None);
    }

    #[test]
    fn fifo_reclamation_only_from_head() {
        let mut p = TrackPool::new(0, 3);
        let a = p.allocate_next().unwrap();
        let b = p.allocate_next().unwrap();
        p.add_record(a);
        p.add_record(b);
        // Committing the *younger* track frees nothing: FIFO order.
        assert_eq!(p.commit_record(b), 0);
        assert_eq!(p.active_tracks(), 2);
        // Committing the older one frees both (b is already empty).
        // b remains as the current tail track (allocated == 1 floor).
        assert_eq!(p.commit_record(a), 1);
        assert_eq!(p.active_tracks(), 1);
        assert_eq!(p.head_track(), b);
    }

    #[test]
    fn current_track_is_never_reclaimed() {
        let mut p = TrackPool::new(0, 3);
        let a = p.allocate_next().unwrap();
        p.add_record(a);
        assert_eq!(p.commit_record(a), 0, "sole track must stay allocated");
        assert_eq!(p.active_tracks(), 1);
        assert_eq!(p.records_on(a), Some(0));
    }

    #[test]
    fn wraps_around_after_reclamation() {
        let mut p = TrackPool::new(0, 2);
        let a = p.allocate_next().unwrap();
        let b = p.allocate_next().unwrap();
        let c = p.allocate_next().unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert!(p.is_full());
        p.add_record(a);
        p.add_record(b);
        p.add_record(c);
        p.commit_record(a);
        assert_eq!(p.free_tracks(), 1);
        // Wraps to track 0.
        assert_eq!(p.allocate_next(), Some(0));
        assert!(p.is_full());
    }

    #[test]
    fn out_of_order_commits_batch_reclaim() {
        let mut p = TrackPool::new(0, 9);
        let tracks: Vec<u64> = (0..5).map(|_| p.allocate_next().unwrap()).collect();
        for &t in &tracks {
            p.add_record(t);
        }
        // Commit tracks 1..4 first: nothing freed (0 still active).
        for &t in &tracks[1..] {
            assert_eq!(p.commit_record(t), 0);
        }
        // Committing track 0 releases 0,1,2,3 at once; 4 stays (current).
        assert_eq!(p.commit_record(tracks[0]), 4);
        assert_eq!(p.active_tracks(), 1);
        assert_eq!(p.head_track(), tracks[4]);
    }

    #[test]
    #[should_panic(expected = "unallocated track")]
    fn add_record_requires_allocation() {
        TrackPool::new(0, 3).add_record(0);
    }

    #[test]
    #[should_panic(expected = "no outstanding records")]
    fn over_commit_panics() {
        let mut p = TrackPool::new(0, 3);
        let a = p.allocate_next().unwrap();
        p.commit_record(a);
    }

    #[test]
    #[should_panic(expected = "at least two tracks")]
    fn single_track_pool_rejected() {
        TrackPool::new(5, 5);
    }
}
