//! A small self-contained JSON value type, serializer, and parser.
//!
//! The workspace builds offline with no serialization dependencies, so
//! the trace and metrics exporters construct [`JsonValue`] trees by hand
//! and render them with [`JsonValue::to_json`]. The parser exists mainly
//! so tests can round-trip exported traces; it accepts standard JSON.
//!
//! Object fields preserve insertion order, which keeps exports
//! deterministic.
//!
//! # Examples
//!
//! ```
//! use trail_telemetry::JsonValue;
//!
//! let v = JsonValue::Obj(vec![
//!     ("name".to_string(), JsonValue::Str("Seek".to_string())),
//!     ("ts".to_string(), JsonValue::Num(1.5)),
//! ]);
//! let text = v.to_json();
//! assert_eq!(text, r#"{"name":"Seek","ts":1.5}"#);
//! assert_eq!(JsonValue::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON document: null, boolean, number, string, array, or object.
///
/// Objects are ordered association lists rather than maps so that
/// serialization order matches construction order.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Convenience constructor for an object from `(&str, value)` pairs.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object, or `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a [`JsonValue::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`JsonValue::Arr`].
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is a [`JsonValue::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(*n, out),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first byte offset at which
    /// the input stops being valid JSON.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Serializes a finite `f64`, preferring integer form for whole numbers
/// that fit losslessly (Chrome's trace viewer is happier with `17` than
/// `17.0`, and it keeps counts readable).
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-terminator) bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our exporter;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_scalars() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Num(17.0).to_json(), "17");
        assert_eq!(JsonValue::Num(1.5).to_json(), "1.5");
        assert_eq!(JsonValue::str("a\"b\\c\nd").to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn serializes_nested_structures() {
        let v = JsonValue::obj(vec![
            (
                "xs",
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Null]),
            ),
            ("o", JsonValue::obj(vec![("k", JsonValue::Bool(false))])),
        ]);
        assert_eq!(v.to_json(), r#"{"xs":[1,null],"o":{"k":false}}"#);
    }

    #[test]
    fn parses_what_it_writes() {
        let v = JsonValue::obj(vec![
            ("name", JsonValue::str("Seek with \"quotes\" and \u{1F4BE}")),
            ("ts", JsonValue::Num(12.25)),
            ("neg", JsonValue::Num(-3.0)),
            ("exp", JsonValue::Num(1.0e-3)),
            ("arr", JsonValue::Arr(vec![JsonValue::Bool(true)])),
        ]);
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("A\t")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            let e = JsonValue::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "no message for {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate() {
        let v = JsonValue::parse(r#"{"a":{"b":[10,20]}}"#).unwrap();
        let b = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[1].as_f64(), Some(20.0));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
    }
}
