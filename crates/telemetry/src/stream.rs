//! Stream identity and per-stream metrics.
//!
//! A [`StreamId`] names an independent request source — a TPC-C
//! terminal, a synthetic generator stream, a CPU in an imported
//! blktrace — and survives the whole vertical: trace records carry one,
//! block requests carry one, submission taps report one, and the replay
//! engine aggregates latency per stream through [`StreamMetrics`].
//!
//! Stream `0` is the *untagged* stream ([`StreamId::UNTAGGED`]): the
//! value every layer uses when the submitter does not distinguish
//! sources. Code that branches on stream identity (multi-log routing,
//! per-stream reports) treats untagged requests as "no stream
//! information", not as a stream in their own right.

use std::collections::BTreeMap;
use std::fmt;

use trail_sim::SimDuration;

use crate::json::JsonValue;
use crate::metrics::DurationHistogram;

/// Identity of an independent request stream.
///
/// A plain newtype over `u32` so it costs nothing to carry and orders,
/// hashes, and compares like the raw tag the trace format stores.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The stream id used when the submitter does not distinguish
    /// streams (the trace format's `stream = 0`).
    pub const UNTAGGED: StreamId = StreamId(0);

    /// `true` for [`StreamId::UNTAGGED`].
    #[must_use]
    pub fn is_untagged(self) -> bool {
        self == StreamId::UNTAGGED
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for StreamId {
    fn from(raw: u32) -> Self {
        StreamId(raw)
    }
}

/// Per-stream accounting: counts, latency histograms, and concurrency.
#[derive(Clone, Debug, Default)]
pub struct StreamLane {
    /// Requests issued on this stream.
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Requests that errored (rejected, shed, or failed).
    pub errors: u64,
    /// Requests whose completion was cancelled (session teardown, power
    /// loss) — distinct from `errors` so harnesses can separate "the
    /// server said no" from "the request died with its connection".
    pub cancelled: u64,
    /// End-to-end latency over successful requests.
    pub latency: DurationHistogram,
    /// Latency over successful reads.
    pub read_latency: DurationHistogram,
    /// Latency over successful writes.
    pub write_latency: DurationHistogram,
    /// Requests currently in flight.
    pub inflight: u32,
    /// Highest concurrent in-flight count observed.
    pub max_inflight: u32,
}

impl StreamLane {
    /// Folds `other`'s accounting into `self`: counts sum, histograms
    /// merge exactly, and the concurrency high-water marks take the
    /// maximum (each mark is local to its observer — see
    /// [`StreamMetrics::merge`]).
    pub fn merge(&mut self, other: &Self) {
        self.requests += other.requests;
        self.reads += other.reads;
        self.writes += other.writes;
        self.errors += other.errors;
        self.cancelled += other.cancelled;
        self.latency.merge(&other.latency);
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.inflight += other.inflight;
        self.max_inflight = self.max_inflight.max(other.max_inflight);
    }

    /// The lane as a JSON object: counts, per-stream queue depth, and
    /// the full latency histograms (p50/p95/p99/p99.9).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("requests", JsonValue::Num(self.requests as f64)),
            ("reads", JsonValue::Num(self.reads as f64)),
            ("writes", JsonValue::Num(self.writes as f64)),
            ("errors", JsonValue::Num(self.errors as f64)),
            ("cancelled", JsonValue::Num(self.cancelled as f64)),
            (
                "max_queue_depth",
                JsonValue::Num(f64::from(self.max_inflight)),
            ),
            ("latency", self.latency.to_json()),
            ("read_latency", self.read_latency.to_json()),
            ("write_latency", self.write_latency.to_json()),
        ])
    }
}

/// Latency and concurrency metrics keyed by [`StreamId`].
///
/// Lanes materialize on first use and iterate in ascending stream
/// order, so exports are deterministic for a deterministic workload.
#[derive(Clone, Debug, Default)]
pub struct StreamMetrics {
    lanes: BTreeMap<StreamId, StreamLane>,
}

impl StreamMetrics {
    /// Creates an empty set of lanes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of streams observed.
    #[must_use]
    pub fn streams(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when no stream has issued anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The lane for `stream`, if it has issued anything.
    #[must_use]
    pub fn lane(&self, stream: StreamId) -> Option<&StreamLane> {
        self.lanes.get(&stream)
    }

    /// Iterates lanes in ascending stream order.
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, &StreamLane)> {
        self.lanes.iter().map(|(id, lane)| (*id, lane))
    }

    /// Folds `other`'s lanes into `self`, lane by lane.
    ///
    /// When the two sides observed *disjoint* stream sets (the sharded
    /// replay case) this is pure concatenation into the ordered map and
    /// the result is identical to a single observer's metrics. When a
    /// stream appears on both sides, counts and histograms still merge
    /// exactly, but `max_inflight` becomes the max of two local
    /// high-water marks — a lower bound on the true combined concurrency,
    /// which no pair of independent observers can reconstruct.
    pub fn merge(&mut self, other: &Self) {
        for (id, lane) in &other.lanes {
            self.lanes.entry(*id).or_default().merge(lane);
        }
    }

    /// Records a request entering flight on `stream`.
    pub fn on_issue(&mut self, stream: StreamId, is_read: bool) {
        let lane = self.lanes.entry(stream).or_default();
        lane.requests += 1;
        if is_read {
            lane.reads += 1;
        } else {
            lane.writes += 1;
        }
        lane.inflight += 1;
        lane.max_inflight = lane.max_inflight.max(lane.inflight);
    }

    /// Records a completion on `stream`; `latency` is `None` for an
    /// errored or cancelled request.
    pub fn on_complete(&mut self, stream: StreamId, is_read: bool, latency: Option<SimDuration>) {
        let lane = self.lanes.entry(stream).or_default();
        lane.inflight = lane.inflight.saturating_sub(1);
        match latency {
            Some(lat) => {
                lane.latency.record(lat);
                if is_read {
                    lane.read_latency.record(lat);
                } else {
                    lane.write_latency.record(lat);
                }
            }
            None => lane.errors += 1,
        }
    }

    /// Records a cancelled completion on `stream` (the request left
    /// flight without an answer: session teardown, power loss).
    pub fn on_cancelled(&mut self, stream: StreamId) {
        let lane = self.lanes.entry(stream).or_default();
        lane.inflight = lane.inflight.saturating_sub(1);
        lane.cancelled += 1;
    }

    /// All lanes as one JSON object keyed by decimal stream id, in
    /// ascending stream order.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.lanes
                .iter()
                .map(|(id, lane)| (id.to_string(), lane.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_disjoint_stream_sets_is_concatenation() {
        // Two observers over disjoint streams — the sharded-replay case
        // — merge into exactly what one observer over both would hold.
        let mut a = StreamMetrics::new();
        let mut b = StreamMetrics::new();
        let mut one = StreamMetrics::new();
        for (m, stream) in [(&mut a, StreamId(1)), (&mut b, StreamId(2))] {
            m.on_issue(stream, true);
            m.on_complete(stream, true, Some(SimDuration::from_micros(50)));
            m.on_issue(stream, false);
            m.on_complete(stream, false, None);
        }
        for stream in [StreamId(1), StreamId(2)] {
            one.on_issue(stream, true);
            one.on_complete(stream, true, Some(SimDuration::from_micros(50)));
            one.on_issue(stream, false);
            one.on_complete(stream, false, None);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.streams(), 2);
        assert_eq!(merged.to_json().to_json(), one.to_json().to_json());
    }

    #[test]
    fn merging_a_shared_stream_sums_counts_and_maxes_inflight() {
        let mut a = StreamMetrics::new();
        let mut b = StreamMetrics::new();
        a.on_issue(StreamId(5), false);
        a.on_complete(StreamId(5), false, Some(SimDuration::from_micros(10)));
        b.on_issue(StreamId(5), false);
        b.on_issue(StreamId(5), false);
        b.on_complete(StreamId(5), false, Some(SimDuration::from_micros(20)));
        b.on_complete(StreamId(5), false, Some(SimDuration::from_micros(30)));
        a.merge(&b);
        let lane = a.lane(StreamId(5)).expect("merged lane");
        assert_eq!(lane.requests, 3);
        assert_eq!(lane.writes, 3);
        assert_eq!(lane.latency.count(), 3);
        // Two local high-water marks of 1 and 2 → a lower bound of 2.
        assert_eq!(lane.max_inflight, 2);
    }

    #[test]
    fn untagged_is_zero() {
        assert_eq!(StreamId::UNTAGGED, StreamId(0));
        assert!(StreamId::default().is_untagged());
        assert!(!StreamId(3).is_untagged());
        assert_eq!(StreamId::from(7u32), StreamId(7));
        assert_eq!(StreamId(12).to_string(), "12");
    }

    #[test]
    fn lanes_track_counts_and_concurrency() {
        let mut m = StreamMetrics::new();
        m.on_issue(StreamId(1), false);
        m.on_issue(StreamId(1), true);
        m.on_issue(StreamId(2), false);
        m.on_complete(StreamId(1), false, Some(SimDuration::from_micros(100)));
        m.on_complete(StreamId(1), true, None);
        m.on_complete(StreamId(2), false, Some(SimDuration::from_micros(300)));
        assert_eq!(m.streams(), 2);
        let one = m.lane(StreamId(1)).expect("lane 1");
        assert_eq!((one.requests, one.reads, one.writes), (2, 1, 1));
        assert_eq!(one.errors, 1);
        assert_eq!(one.max_inflight, 2);
        assert_eq!(one.inflight, 0);
        assert_eq!(one.latency.count(), 1);
        assert!(m.lane(StreamId(0)).is_none());
    }

    #[test]
    fn json_is_keyed_by_stream_in_order() {
        let mut m = StreamMetrics::new();
        m.on_issue(StreamId(9), false);
        m.on_issue(StreamId(2), true);
        let json = m.to_json();
        let fields = json.as_obj().expect("object");
        assert_eq!(fields[0].0, "2");
        assert_eq!(fields[1].0, "9");
        assert!(json.get("9").and_then(|l| l.get("writes")).is_some());
    }

    #[test]
    fn cancelled_is_tracked_apart_from_errors() {
        let mut m = StreamMetrics::new();
        m.on_issue(StreamId(3), false);
        m.on_issue(StreamId(3), false);
        m.on_complete(StreamId(3), false, None);
        m.on_cancelled(StreamId(3));
        let lane = m.lane(StreamId(3)).expect("lane");
        assert_eq!((lane.errors, lane.cancelled, lane.inflight), (1, 1, 0));
        let j = lane.to_json();
        assert_eq!(j.get("cancelled").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn completion_on_unissued_stream_does_not_underflow() {
        let mut m = StreamMetrics::new();
        m.on_complete(StreamId(4), false, None);
        assert_eq!(m.lane(StreamId(4)).expect("lane").inflight, 0);
    }
}
