//! Aggregation: duration histograms and the compact metrics dump.

use std::collections::BTreeMap;

use trail_sim::SimDuration;

use crate::json::JsonValue;
use crate::{Event, EventKind};

/// A power-of-two-bucket histogram of durations.
///
/// Bucket `i` holds samples whose nanosecond value has bit length `i`
/// (bucket 0 is exactly zero), so relative resolution is a factor of two
/// at every scale while storage stays constant. Percentiles are resolved
/// by nearest rank to the *upper bound* of the containing bucket — a
/// conservative estimate with bounded relative error, which is plenty
/// for spotting latency-distribution shifts.
///
/// # Examples
///
/// ```
/// use trail_sim::SimDuration;
/// use trail_telemetry::DurationHistogram;
///
/// let mut h = DurationHistogram::new();
/// for us in [100u64, 200, 400, 800] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), SimDuration::from_micros(800));
/// assert!(h.percentile(50.0) >= SimDuration::from_micros(200));
/// ```
#[derive(Clone, Debug)]
pub struct DurationHistogram {
    buckets: [u64; 65],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: [0; 65],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        // Computed in u128 so bucket 64 yields u64::MAX instead of
        // overflowing the shift.
        ((1u128 << bucket) - 1) as u64
    }
}

impl DurationHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds `other`'s samples into `self`, exactly.
    ///
    /// The histogram is a sum of per-bucket counters plus exact count,
    /// sum, min, and max — all of which merge losslessly — so merging
    /// per-shard histograms yields byte-for-byte the histogram a single
    /// observer of the combined sample stream would have produced,
    /// regardless of merge order. An empty histogram is the identity.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
        }
    }

    /// Exact minimum, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Exact maximum, or zero if empty.
    pub fn max(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// Nearest-rank percentile resolved to the containing bucket's upper
    /// bound (clamped to the exact maximum), or zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return SimDuration::from_nanos(bucket_upper_bound(i).min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// The non-empty buckets as `(upper_bound_ns, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
            .collect()
    }

    /// The histogram as a JSON object: `count`, `mean_ms`, `min_ms`,
    /// `p50_ms`, `p95_ms`, `p99_ms`, `p999_ms`, `max_ms`, and the
    /// non-empty `buckets` as `[upper_bound_ns, count]` pairs.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("count", JsonValue::Num(self.count as f64)),
            ("mean_ms", JsonValue::Num(self.mean().as_millis_f64())),
            ("min_ms", JsonValue::Num(self.min().as_millis_f64())),
            (
                "p50_ms",
                JsonValue::Num(self.percentile(50.0).as_millis_f64()),
            ),
            (
                "p95_ms",
                JsonValue::Num(self.percentile(95.0).as_millis_f64()),
            ),
            (
                "p99_ms",
                JsonValue::Num(self.percentile(99.0).as_millis_f64()),
            ),
            (
                "p999_ms",
                JsonValue::Num(self.percentile(99.9).as_millis_f64()),
            ),
            ("max_ms", JsonValue::Num(self.max().as_millis_f64())),
            (
                "buckets",
                JsonValue::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(ub, n)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(ub as f64),
                                JsonValue::Num(n as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Aggregates an event stream into a compact metrics document:
/// per-kind event counts, and latency histograms (end-to-end plus each
/// breakdown component) over the `Complete` events.
///
/// Cancelled completions never reach the recorder (the request died
/// before producing an event), so the count lives on the simulator's
/// [`trail_sim::CompletionSink`]; harnesses that track it pass it
/// through [`metrics_json_with_cancelled`]. This form reports zero.
pub fn metrics_json(events: &[Event]) -> JsonValue {
    metrics_json_with_cancelled(events, 0)
}

/// [`metrics_json`] plus the harness's cancelled-completion count
/// (from [`trail_sim::CompletionSink::cancelled_count`]), exported as
/// the top-level `cancelled_completions` field.
pub fn metrics_json_with_cancelled(events: &[Event], cancelled_completions: u64) -> JsonValue {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total = DurationHistogram::new();
    let mut queue = DurationHistogram::new();
    let mut overhead = DurationHistogram::new();
    let mut seek = DurationHistogram::new();
    let mut rotation = DurationHistogram::new();
    let mut transfer = DurationHistogram::new();
    let mut batch_writes = 0u64;
    let mut group_commits = 0u64;
    for e in events {
        *counts.entry(e.kind.name()).or_insert(0) += 1;
        match e.kind {
            EventKind::Complete { breakdown } => {
                total.record(breakdown.total);
                queue.record(breakdown.queue);
                overhead.record(breakdown.overhead);
                seek.record(breakdown.seek);
                rotation.record(breakdown.rotation);
                transfer.record(breakdown.transfer);
            }
            EventKind::BatchFlush { batch } => batch_writes += u64::from(batch),
            EventKind::GroupCommit { group } => group_commits += u64::from(group),
            _ => {}
        }
    }
    let counts_json = JsonValue::Obj(
        counts
            .iter()
            .map(|(k, v)| (k.to_string(), JsonValue::Num(*v as f64)))
            .collect(),
    );
    JsonValue::obj(vec![
        ("events", JsonValue::Num(events.len() as f64)),
        (
            "cancelled_completions",
            JsonValue::Num(cancelled_completions as f64),
        ),
        ("counts", counts_json),
        (
            "complete_latency",
            JsonValue::obj(vec![
                ("total", total.to_json()),
                ("queue", queue.to_json()),
                ("overhead", overhead.to_json()),
                ("seek", seek.to_json()),
                ("rotation", rotation.to_json()),
                ("transfer", transfer.to_json()),
            ]),
        ),
        (
            "derived",
            JsonValue::obj(vec![
                ("batched_writes", JsonValue::Num(batch_writes as f64)),
                ("group_committed_txns", JsonValue::Num(group_commits as f64)),
            ]),
        ),
    ])
}

/// Serializes [`metrics_json`] to a JSON string ready to write to disk.
pub fn metrics_json_string(events: &[Event]) -> String {
    metrics_json(events).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, RequestBreakdown};
    use trail_sim::SimTime;

    #[test]
    fn histogram_empty_is_defined() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn histogram_tracks_exact_extremes_and_bounded_percentiles() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::ZERO);
        for us in [10u64, 20, 40, 5000] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_micros(5000));
        // p100 is clamped to the exact max, not the bucket bound.
        assert_eq!(h.percentile(100.0), SimDuration::from_micros(5000));
        // The median (40 µs sample, bucket upper bound < 2× sample).
        let p50 = h.percentile(50.0);
        assert!(p50 >= SimDuration::from_micros(20));
        assert!(p50 <= SimDuration::from_micros(40));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn histogram_percentile_rejects_out_of_range() {
        DurationHistogram::new().percentile(-1.0);
    }

    #[test]
    fn histogram_merge_equals_recording_into_one() {
        // Merging two histograms is exactly recording both sample sets
        // into one — counts, extremes, mean, and every bucket — and the
        // empty histogram is the merge identity.
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        let mut both = DurationHistogram::new();
        for us in [3u64, 17, 90, 1_000] {
            a.record(SimDuration::from_micros(us));
            both.record(SimDuration::from_micros(us));
        }
        for us in [1u64, 17, 40_000] {
            b.record(SimDuration::from_micros(us));
            both.record(SimDuration::from_micros(us));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), both.count());
        assert_eq!(merged.min(), both.min());
        assert_eq!(merged.max(), both.max());
        assert_eq!(merged.mean(), both.mean());
        assert_eq!(merged.to_json().to_json(), both.to_json().to_json());
        let mut with_empty = both.clone();
        with_empty.merge(&DurationHistogram::new());
        assert_eq!(with_empty.to_json().to_json(), both.to_json().to_json());
    }

    #[test]
    fn histogram_p999_is_bounded_and_exported() {
        // 999 fast samples and one slow outlier: p99.9 must land on the
        // outlier's bucket (the 1000th rank), bounded by bucket semantics —
        // at least the sample, at most the exact maximum.
        let mut h = DurationHistogram::new();
        for _ in 0..999 {
            h.record(SimDuration::from_micros(100));
        }
        h.record(SimDuration::from_millis(50));
        let p999 = h.percentile(99.9);
        assert!(p999 >= SimDuration::from_millis(50));
        assert!(p999 <= h.max());
        // p99 stays in the fast cluster: within a factor of two above it.
        let p99 = h.percentile(99.0);
        assert!(p99 >= SimDuration::from_micros(100));
        assert!(p99 < SimDuration::from_micros(200));
        // The JSON export carries the new field, ordered p99 ≤ p99.9 ≤ max.
        let j = h.to_json();
        let get = |k: &str| j.get(k).unwrap().as_f64().unwrap();
        assert!(get("p99_ms") <= get("p999_ms"));
        assert!(get("p999_ms") <= get("max_ms"));
        assert_eq!(get("count"), 1000.0);
    }

    #[test]
    fn metrics_dump_counts_and_aggregates() {
        let breakdown = RequestBreakdown {
            queue: SimDuration::from_micros(1),
            overhead: SimDuration::from_micros(2),
            seek: SimDuration::from_micros(3),
            rotation: SimDuration::from_micros(4),
            transfer: SimDuration::from_micros(5),
            total: SimDuration::from_micros(15),
        };
        let mk = |kind| Event {
            at: SimTime::ZERO,
            dur: SimDuration::ZERO,
            layer: Layer::BlockIo,
            source: "drv".to_string(),
            req: None,
            kind,
        };
        let events = vec![
            mk(EventKind::Complete { breakdown }),
            mk(EventKind::Complete { breakdown }),
            mk(EventKind::BatchFlush { batch: 7 }),
            mk(EventKind::GroupCommit { group: 3 }),
        ];
        let m = metrics_json(&events);
        assert_eq!(m.get("events").unwrap().as_f64(), Some(4.0));
        assert_eq!(m.get("cancelled_completions").unwrap().as_f64(), Some(0.0));
        let with = metrics_json_with_cancelled(&events, 9);
        assert_eq!(
            with.get("cancelled_completions").unwrap().as_f64(),
            Some(9.0)
        );
        let counts = m.get("counts").unwrap();
        assert_eq!(counts.get("Complete").unwrap().as_f64(), Some(2.0));
        assert_eq!(counts.get("BatchFlush").unwrap().as_f64(), Some(1.0));
        let latency = m.get("complete_latency").unwrap();
        assert_eq!(
            latency.get("total").unwrap().get("count").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            latency
                .get("queue")
                .unwrap()
                .get("mean_ms")
                .unwrap()
                .as_f64(),
            Some(0.001)
        );
        let derived = m.get("derived").unwrap();
        assert_eq!(derived.get("batched_writes").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            derived.get("group_committed_txns").unwrap().as_f64(),
            Some(3.0)
        );
        // The dump itself must be valid JSON.
        assert!(JsonValue::parse(&metrics_json_string(&events)).is_ok());
    }
}
