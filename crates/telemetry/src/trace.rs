//! Chrome trace-event export.
//!
//! Renders a captured event stream in the Chrome trace-event JSON format
//! (the `{"traceEvents": [...]}` object form), which loads directly in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans
//! become duration (`"ph": "X"`) events; zero-length events become
//! instants (`"ph": "i"`). Each stack layer is mapped to its own thread
//! id so layers render as separate swim lanes.

use crate::json::JsonValue;
use crate::{Event, EventKind};

/// Converts nanoseconds to the trace format's microsecond timestamps.
fn us(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

fn kind_args(event: &Event) -> Vec<(&'static str, JsonValue)> {
    let mut args: Vec<(&'static str, JsonValue)> = Vec::new();
    if let Some(req) = event.req {
        args.push(("req", JsonValue::Num(req as f64)));
    }
    match event.kind {
        EventKind::Seek { from_cyl, to_cyl } => {
            args.push(("from_cyl", JsonValue::Num(f64::from(from_cyl))));
            args.push(("to_cyl", JsonValue::Num(f64::from(to_cyl))));
        }
        EventKind::Transfer { sectors } => {
            args.push(("sectors", JsonValue::Num(f64::from(sectors))));
        }
        EventKind::TrackSwitch { switches } => {
            args.push(("switches", JsonValue::Num(f64::from(switches))));
        }
        EventKind::Enqueue { depth } | EventKind::Dispatch { depth } => {
            args.push(("depth", JsonValue::Num(f64::from(depth))));
        }
        EventKind::Complete { breakdown } => {
            args.push(("queue_us", JsonValue::Num(us(breakdown.queue.as_nanos()))));
            args.push((
                "overhead_us",
                JsonValue::Num(us(breakdown.overhead.as_nanos())),
            ));
            args.push(("seek_us", JsonValue::Num(us(breakdown.seek.as_nanos()))));
            args.push((
                "rotation_us",
                JsonValue::Num(us(breakdown.rotation.as_nanos())),
            ));
            args.push((
                "transfer_us",
                JsonValue::Num(us(breakdown.transfer.as_nanos())),
            ));
            args.push(("total_us", JsonValue::Num(us(breakdown.total.as_nanos()))));
        }
        EventKind::Reposition { track } => {
            args.push(("track", JsonValue::Num(track as f64)));
        }
        EventKind::BatchFlush { batch } => {
            args.push(("batch", JsonValue::Num(f64::from(batch))));
        }
        EventKind::WriteBack { dev, lba } => {
            args.push(("dev", JsonValue::Num(f64::from(dev))));
            args.push(("lba", JsonValue::Num(lba as f64)));
        }
        EventKind::WalForce { bytes } => {
            args.push(("bytes", JsonValue::Num(bytes as f64)));
        }
        EventKind::GroupCommit { group } => {
            args.push(("group", JsonValue::Num(f64::from(group))));
        }
        EventKind::TxnCommit { txn } => {
            args.push(("txn", JsonValue::Num(txn as f64)));
        }
        EventKind::RotWait
        | EventKind::FullRotationMiss
        | EventKind::PredictHit
        | EventKind::PredictMiss => {}
    }
    args
}

fn trace_event(event: &Event) -> JsonValue {
    let mut fields = vec![
        ("name", JsonValue::str(event.kind.name())),
        ("cat", JsonValue::str(event.layer.as_str())),
        ("ts", JsonValue::Num(us(event.at.as_nanos()))),
        ("pid", JsonValue::Num(1.0)),
        ("tid", JsonValue::Num(f64::from(event.layer.tid()))),
    ];
    if event.dur.is_zero() {
        fields.push(("ph", JsonValue::str("i")));
        fields.push(("s", JsonValue::str("t")));
    } else {
        fields.push(("ph", JsonValue::str("X")));
        fields.push(("dur", JsonValue::Num(us(event.dur.as_nanos()))));
    }
    let mut args = vec![("source", JsonValue::str(event.source.clone()))];
    args.extend(kind_args(event));
    fields.push(("args", JsonValue::obj(args)));
    JsonValue::obj(fields)
}

/// Builds the Chrome trace-event document for an event stream.
///
/// Thread-name metadata events label each layer's swim lane.
pub fn chrome_trace(events: &[Event]) -> JsonValue {
    let mut trace_events: Vec<JsonValue> = Vec::with_capacity(events.len() + 4);
    for layer in [
        crate::Layer::Disk,
        crate::Layer::BlockIo,
        crate::Layer::Core,
        crate::Layer::Db,
    ] {
        trace_events.push(JsonValue::obj(vec![
            ("name", JsonValue::str("thread_name")),
            ("ph", JsonValue::str("M")),
            ("pid", JsonValue::Num(1.0)),
            ("tid", JsonValue::Num(f64::from(layer.tid()))),
            (
                "args",
                JsonValue::obj(vec![("name", JsonValue::str(layer.as_str()))]),
            ),
        ]));
    }
    trace_events.extend(events.iter().map(trace_event));
    JsonValue::obj(vec![
        ("traceEvents", JsonValue::Arr(trace_events)),
        ("displayTimeUnit", JsonValue::str("ms")),
    ])
}

/// Serializes [`chrome_trace`] to a JSON string ready to write to disk.
pub fn chrome_trace_string(events: &[Event]) -> String {
    chrome_trace(events).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, RequestBreakdown};
    use trail_sim::{SimDuration, SimTime};

    fn span(kind: EventKind) -> Event {
        Event {
            at: SimTime::from_nanos(2_000),
            dur: SimDuration::from_nanos(1_500),
            layer: Layer::Disk,
            source: "d0".to_string(),
            req: Some(42),
            kind,
        }
    }

    #[test]
    fn spans_become_duration_events() {
        let doc = chrome_trace(&[span(EventKind::Transfer { sectors: 8 })]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 thread-name metadata events + the span.
        assert_eq!(events.len(), 5);
        let e = &events[4];
        assert_eq!(e.get("name").unwrap().as_str(), Some("Transfer"));
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(e.get("dur").unwrap().as_f64(), Some(1.5));
        let args = e.get("args").unwrap();
        assert_eq!(args.get("sectors").unwrap().as_f64(), Some(8.0));
        assert_eq!(args.get("req").unwrap().as_f64(), Some(42.0));
        assert_eq!(args.get("source").unwrap().as_str(), Some("d0"));
    }

    #[test]
    fn instants_have_scope() {
        let mut e = span(EventKind::PredictHit);
        e.dur = SimDuration::ZERO;
        let doc = chrome_trace(&[e]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let inst = &events[4];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
        assert!(inst.get("dur").is_none());
    }

    #[test]
    fn complete_event_exposes_breakdown_in_microseconds() {
        let breakdown = RequestBreakdown {
            queue: SimDuration::from_micros(5),
            overhead: SimDuration::from_micros(4),
            seek: SimDuration::from_micros(3),
            rotation: SimDuration::from_micros(2),
            transfer: SimDuration::from_micros(1),
            total: SimDuration::from_micros(15),
        };
        let doc = chrome_trace(&[span(EventKind::Complete { breakdown })]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let args = events[4].get("args").unwrap();
        assert_eq!(args.get("queue_us").unwrap().as_f64(), Some(5.0));
        assert_eq!(args.get("total_us").unwrap().as_f64(), Some(15.0));
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let events = vec![
            span(EventKind::Seek {
                from_cyl: 10,
                to_cyl: 90,
            }),
            span(EventKind::Complete {
                breakdown: RequestBreakdown::default(),
            }),
        ];
        let text = chrome_trace_string(&events);
        let doc = JsonValue::parse(&text).expect("exported trace must parse");
        assert_eq!(
            doc.get("traceEvents").unwrap().as_arr().unwrap().len(),
            4 + events.len()
        );
    }
}
