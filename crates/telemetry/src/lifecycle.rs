//! Shared emission of the request-lifecycle events.
//!
//! Every queueing component in the stack traces the same three-phase
//! request lifecycle — `Enqueue` when a request joins its queue, `Dispatch`
//! when it is sent onward, `Complete` with the latency decomposition when
//! it finishes. Before this module each layer hand-built those [`Event`]s
//! at every call site; [`LifecycleEmitter`] centralizes the construction
//! (and the enabled-guard) so layers state only *what* happened.

use trail_sim::{SimDuration, SimTime};

use crate::{null_recorder, Event, EventKind, Layer, RecorderHandle, RequestBreakdown};

/// Emits request-lifecycle telemetry for one component.
///
/// Holds the component's [`Layer`], trace source name, and recorder handle;
/// all methods are no-ops (no formatting, no allocation) while the recorder
/// is disabled.
///
/// # Examples
///
/// ```
/// use trail_sim::SimTime;
/// use trail_telemetry::{Layer, LifecycleEmitter, MemoryRecorder};
///
/// let rec = MemoryRecorder::shared();
/// let mut lc = LifecycleEmitter::new(Layer::BlockIo, "d0");
/// lc.set_recorder(rec.clone());
/// lc.enqueue(SimTime::ZERO, 1, 1);
/// assert_eq!(rec.count_kind("Enqueue"), 1);
/// ```
pub struct LifecycleEmitter {
    recorder: RecorderHandle,
    layer: Layer,
    source: String,
}

impl LifecycleEmitter {
    /// Creates an emitter for `source` (a disk or driver name) that starts
    /// out disabled (null recorder).
    pub fn new(layer: Layer, source: impl Into<String>) -> Self {
        LifecycleEmitter {
            recorder: null_recorder(),
            layer,
            source: source.into(),
        }
    }

    /// Attaches (or replaces) the recorder.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// A clone of the current recorder handle, for wiring sub-components.
    pub fn recorder(&self) -> RecorderHandle {
        std::rc::Rc::clone(&self.recorder)
    }

    /// Whether events are currently being captured.
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Records that request `req` entered the queue (`depth` including it).
    pub fn enqueue(&self, at: SimTime, req: u64, depth: u32) {
        self.emit(
            at,
            SimDuration::ZERO,
            Some(req),
            EventKind::Enqueue { depth },
        );
    }

    /// Records that request `req` was sent onward (`depth` before removal).
    pub fn dispatch(&self, at: SimTime, req: u64, depth: u32) {
        self.emit(
            at,
            SimDuration::ZERO,
            Some(req),
            EventKind::Dispatch { depth },
        );
    }

    /// Records that request `req` completed: a span from `issued` over the
    /// full end-to-end latency, carrying the exact decomposition.
    pub fn complete(&self, issued: SimTime, req: u64, breakdown: RequestBreakdown) {
        self.emit(
            issued,
            breakdown.total,
            Some(req),
            EventKind::Complete { breakdown },
        );
    }

    /// Records any other event kind under this emitter's layer and source
    /// (for the layer-specific kinds that ride alongside the lifecycle).
    pub fn event(&self, at: SimTime, dur: SimDuration, req: Option<u64>, kind: EventKind) {
        self.emit(at, dur, req, kind);
    }

    fn emit(&self, at: SimTime, dur: SimDuration, req: Option<u64>, kind: EventKind) {
        if self.recorder.enabled() {
            self.recorder.record(Event {
                at,
                dur,
                layer: self.layer,
                source: self.source.clone(),
                req,
                kind,
            });
        }
    }
}

impl std::fmt::Debug for LifecycleEmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifecycleEmitter")
            .field("layer", &self.layer)
            .field("source", &self.source)
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;

    #[test]
    fn lifecycle_events_carry_layer_source_and_req() {
        let rec = MemoryRecorder::shared();
        let mut lc = LifecycleEmitter::new(Layer::Core, "log0");
        assert!(!lc.enabled());
        lc.enqueue(SimTime::from_nanos(1), 7, 3); // disabled: dropped
        lc.set_recorder(rec.clone());
        assert!(lc.enabled());
        lc.enqueue(SimTime::from_nanos(2), 7, 3);
        lc.dispatch(SimTime::from_nanos(3), 7, 3);
        let b = RequestBreakdown {
            total: SimDuration::from_nanos(9),
            ..RequestBreakdown::default()
        };
        lc.complete(SimTime::from_nanos(2), 7, b);
        lc.event(
            SimTime::from_nanos(5),
            SimDuration::ZERO,
            None,
            EventKind::PredictHit,
        );
        let evs = rec.snapshot();
        assert_eq!(evs.len(), 4);
        assert!(evs
            .iter()
            .all(|e| e.layer == Layer::Core && e.source == "log0"));
        assert_eq!(evs[0].kind.name(), "Enqueue");
        assert_eq!(evs[1].kind.name(), "Dispatch");
        assert_eq!(evs[2].kind.name(), "Complete");
        assert_eq!(evs[2].dur, SimDuration::from_nanos(9));
        assert_eq!(evs[3].req, None);
    }
}
