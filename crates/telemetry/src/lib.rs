//! Cross-layer tracing and metrics for the Trail stack.
//!
//! Every layer of the reproduction — the mechanical disk model, the block
//! I/O driver, the Trail log driver, and the database engine — can emit
//! typed [`Event`]s keyed by virtual [`SimTime`] through a shared
//! [`Recorder`]. The design goal is *zero overhead when disabled*: each
//! instrumented component holds an `Rc<dyn Recorder>` that defaults to
//! [`NullRecorder`], and guards event construction behind
//! [`Recorder::enabled`], so a disabled recorder costs one virtual call
//! per potential event and allocates nothing.
//!
//! With a [`MemoryRecorder`] attached, the captured stream can be
//! exported as a Chrome trace-event JSON file loadable in Perfetto
//! ([`chrome_trace_string`]) or aggregated into a compact metrics dump
//! ([`metrics_json_string`]). [`RequestBreakdown`] carries the
//! per-request latency decomposition (queue + overhead + seek +
//! rotation + transfer) whose components sum exactly to the end-to-end
//! latency in integer nanoseconds.
//!
//! # Examples
//!
//! ```
//! use std::rc::Rc;
//! use trail_sim::{SimDuration, SimTime};
//! use trail_telemetry::{Event, EventKind, Layer, MemoryRecorder, Recorder};
//!
//! let rec = Rc::new(MemoryRecorder::new());
//! rec.record(Event {
//!     at: SimTime::from_nanos(1_000),
//!     dur: SimDuration::from_nanos(500),
//!     layer: Layer::Disk,
//!     source: "d0".to_string(),
//!     req: None,
//!     kind: EventKind::RotWait,
//! });
//! assert_eq!(rec.len(), 1);
//! let trace = trail_telemetry::chrome_trace_string(&rec.snapshot());
//! assert!(trace.contains("RotWait"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use trail_sim::{SimDuration, SimTime};

pub mod json;
mod lifecycle;
mod metrics;
mod stream;
mod trace;

pub use json::{JsonError, JsonValue};
pub use lifecycle::LifecycleEmitter;
pub use metrics::{
    metrics_json, metrics_json_string, metrics_json_with_cancelled, DurationHistogram,
};
pub use stream::{StreamId, StreamLane, StreamMetrics};
pub use trace::{chrome_trace, chrome_trace_string};

/// Which layer of the stack emitted an event. Doubles as the Chrome-trace
/// thread id, so each layer gets its own swim lane in Perfetto.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Layer {
    /// The mechanical disk model (`trail-disk`).
    Disk,
    /// The block I/O driver and scheduler (`trail-blockio`).
    BlockIo,
    /// The Trail log driver (`trail-core`).
    Core,
    /// The database engine and WAL (`trail-db`).
    Db,
}

impl Layer {
    /// Stable display name, used as the trace category.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Disk => "disk",
            Layer::BlockIo => "blockio",
            Layer::Core => "core",
            Layer::Db => "db",
        }
    }

    /// The Chrome-trace thread id for this layer's swim lane.
    pub fn tid(self) -> u32 {
        match self {
            Layer::Disk => 1,
            Layer::BlockIo => 2,
            Layer::Core => 3,
            Layer::Db => 4,
        }
    }
}

/// Per-request latency decomposition. All components are integer
/// nanoseconds, and `queue + overhead + seek + rotation + transfer`
/// equals `total` exactly: the mechanical model builds its service
/// breakdown additively and the block layer adds the queue wait as the
/// difference of two instants on the same clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RequestBreakdown {
    /// Time from submission to dispatch (waiting behind other requests).
    pub queue: SimDuration,
    /// Fixed controller/command-processing overhead.
    pub overhead: SimDuration,
    /// Arm movement (seek + head switch).
    pub seek: SimDuration,
    /// Rotational latency.
    pub rotation: SimDuration,
    /// Media transfer time.
    pub transfer: SimDuration,
    /// End-to-end latency (submission to completion).
    pub total: SimDuration,
}

impl RequestBreakdown {
    /// Sum of the five components (should equal [`total`](Self::total)).
    pub fn component_sum(&self) -> SimDuration {
        self.queue + self.overhead + self.seek + self.rotation + self.transfer
    }

    /// Signed difference `total - component_sum`, in nanoseconds.
    pub fn residual_nanos(&self) -> i64 {
        self.total.as_nanos() as i64 - self.component_sum().as_nanos() as i64
    }

    /// Whether the components sum exactly to the end-to-end latency.
    pub fn is_exact(&self) -> bool {
        self.residual_nanos() == 0
    }
}

/// What happened. Field-free kinds carry their cost in [`Event::dur`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    // ---- disk layer -----------------------------------------------------
    /// Arm movement between cylinders (duration in [`Event::dur`]).
    Seek {
        /// Cylinder the arm started from.
        from_cyl: u32,
        /// Cylinder the arm ended on.
        to_cyl: u32,
    },
    /// Rotational wait for the target sector (duration in [`Event::dur`]).
    RotWait,
    /// Media transfer (duration in [`Event::dur`]).
    Transfer {
        /// Number of sectors moved.
        sectors: u32,
    },
    /// The command just missed its sector and paid (nearly) a full
    /// revolution of rotational latency.
    FullRotationMiss,
    /// A multi-track transfer crossed track boundaries.
    TrackSwitch {
        /// Number of boundary crossings in the command.
        switches: u32,
    },

    // ---- block I/O layer ------------------------------------------------
    /// A request entered the driver queue.
    Enqueue {
        /// Queue depth after insertion (including this request).
        depth: u32,
    },
    /// The scheduler picked a request and sent it to the disk.
    Dispatch {
        /// Queue depth before removal (including this request).
        depth: u32,
    },
    /// A request completed; carries the full latency decomposition.
    Complete {
        /// Queue + service breakdown summing exactly to end-to-end.
        breakdown: RequestBreakdown,
    },

    // ---- Trail core layer -----------------------------------------------
    /// A log write landed with (at most a sector of) rotational slack:
    /// the head-position prediction was accurate.
    PredictHit,
    /// A log write paid real rotational latency (the wait is in
    /// [`Event::dur`]): the prediction missed.
    PredictMiss,
    /// The log head moved to a fresh track.
    Reposition {
        /// Global track index of the new log track.
        track: u64,
    },
    /// One physical log record was dispatched covering a batch of
    /// queued writes.
    BatchFlush {
        /// Number of user writes folded into the record.
        batch: u32,
    },
    /// A logged block was written back to its home data-disk location.
    WriteBack {
        /// Data device index.
        dev: u8,
        /// Home LBA on that device.
        lba: u64,
    },

    // ---- database layer -------------------------------------------------
    /// A WAL chunk was forced to the log device.
    WalForce {
        /// Bytes in the forced chunk.
        bytes: u64,
    },
    /// One WAL force made a group of transactions durable together.
    GroupCommit {
        /// Number of commits covered by the force.
        group: u32,
    },
    /// A transaction became durable.
    TxnCommit {
        /// Transaction id.
        txn: u64,
    },
}

impl EventKind {
    /// Stable name, used as the Chrome-trace event name and metric key.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Seek { .. } => "Seek",
            EventKind::RotWait => "RotWait",
            EventKind::Transfer { .. } => "Transfer",
            EventKind::FullRotationMiss => "FullRotationMiss",
            EventKind::TrackSwitch { .. } => "TrackSwitch",
            EventKind::Enqueue { .. } => "Enqueue",
            EventKind::Dispatch { .. } => "Dispatch",
            EventKind::Complete { .. } => "Complete",
            EventKind::PredictHit => "PredictHit",
            EventKind::PredictMiss => "PredictMiss",
            EventKind::Reposition { .. } => "Reposition",
            EventKind::BatchFlush { .. } => "BatchFlush",
            EventKind::WriteBack { .. } => "WriteBack",
            EventKind::WalForce { .. } => "WalForce",
            EventKind::GroupCommit { .. } => "GroupCommit",
            EventKind::TxnCommit { .. } => "TxnCommit",
        }
    }
}

/// One recorded occurrence: when, how long, where, and what.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Virtual instant at which the span starts (or the instant occurs).
    pub at: SimTime,
    /// Span length; [`SimDuration::ZERO`] for instantaneous events.
    pub dur: SimDuration,
    /// Emitting layer.
    pub layer: Layer,
    /// Emitting component (disk or driver name).
    pub source: String,
    /// Correlating request id, when the layer tracks one.
    pub req: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// Sink for telemetry events.
///
/// Instrumented components hold an `Rc<dyn Recorder>` and must guard
/// event construction behind [`enabled`](Recorder::enabled) so that the
/// disabled path does no formatting or allocation.
pub trait Recorder {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool;
    /// Consumes one event. Only called when [`enabled`](Recorder::enabled)
    /// returns `true` (callers may rely on this for cheapness, not
    /// correctness).
    fn record(&self, event: Event);
}

/// Shared handle to a recorder, as stored by instrumented components.
pub type RecorderHandle = Rc<dyn Recorder>;

/// The default recorder: always disabled, drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: Event) {}
}

/// Returns a shared handle to the (stateless) null recorder.
pub fn null_recorder() -> RecorderHandle {
    Rc::new(NullRecorder)
}

/// Captures every event in memory, in emission order.
///
/// Emission order is deterministic for a deterministic simulation, so two
/// identically-seeded runs produce byte-identical [`fingerprint`]s.
///
/// [`fingerprint`]: MemoryRecorder::fingerprint
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: RefCell<Vec<Event>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder already wrapped in an [`Rc`].
    pub fn shared() -> Rc<Self> {
        Rc::new(Self::new())
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Clones the captured events out.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Moves the captured events out, leaving the recorder empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Number of captured events whose kind has the given
    /// [`name`](EventKind::name).
    pub fn count_kind(&self, name: &str) -> usize {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.kind.name() == name)
            .count()
    }

    /// A canonical one-line-per-event rendering of the stream. Two
    /// identically-seeded runs of a deterministic simulation produce
    /// byte-identical fingerprints.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for e in self.events.borrow().iter() {
            let _ = writeln!(
                out,
                "{} {} {} {} {:?} {:?}",
                e.at.as_nanos(),
                e.dur.as_nanos(),
                e.layer.as_str(),
                e.source,
                e.req,
                e.kind,
            );
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, event: Event) {
        self.events.borrow_mut().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::from_nanos(at_ns),
            dur: SimDuration::from_nanos(10),
            layer: Layer::Disk,
            source: "d".to_string(),
            req: Some(7),
            kind,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let r = null_recorder();
        assert!(!r.enabled());
        r.record(ev(0, EventKind::RotWait)); // must be a no-op, not a panic
    }

    #[test]
    fn memory_recorder_captures_in_order() {
        let r = MemoryRecorder::new();
        assert!(r.is_empty());
        r.record(ev(5, EventKind::RotWait));
        r.record(ev(9, EventKind::PredictHit));
        assert_eq!(r.len(), 2);
        assert_eq!(r.count_kind("RotWait"), 1);
        assert_eq!(r.count_kind("PredictHit"), 1);
        assert_eq!(r.count_kind("Seek"), 0);
        let evs = r.snapshot();
        assert_eq!(evs[0].at.as_nanos(), 5);
        assert_eq!(evs[1].at.as_nanos(), 9);
        assert_eq!(r.take().len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn fingerprints_are_reproducible() {
        let mk = || {
            let r = MemoryRecorder::new();
            r.record(ev(
                5,
                EventKind::Seek {
                    from_cyl: 1,
                    to_cyl: 4,
                },
            ));
            r.record(ev(9, EventKind::TxnCommit { txn: 3 }));
            r.fingerprint()
        };
        let a = mk();
        assert_eq!(a, mk());
        assert_eq!(a.lines().count(), 2);
    }

    #[test]
    fn breakdown_exactness() {
        let b = RequestBreakdown {
            queue: SimDuration::from_nanos(10),
            overhead: SimDuration::from_nanos(20),
            seek: SimDuration::from_nanos(30),
            rotation: SimDuration::from_nanos(40),
            transfer: SimDuration::from_nanos(50),
            total: SimDuration::from_nanos(150),
        };
        assert_eq!(b.component_sum().as_nanos(), 150);
        assert!(b.is_exact());
        let off = RequestBreakdown {
            total: SimDuration::from_nanos(151),
            ..b
        };
        assert_eq!(off.residual_nanos(), 1);
        assert!(!off.is_exact());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::FullRotationMiss.name(), "FullRotationMiss");
        assert_eq!(EventKind::Enqueue { depth: 3 }.name(), "Enqueue");
        assert_eq!(EventKind::WalForce { bytes: 512 }.name(), "WalForce");
    }
}
