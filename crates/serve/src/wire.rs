//! The versioned, framed binary wire protocol.
//!
//! Every message is one frame: an 8-byte header — magic `"TS"`, version,
//! a tag byte, and a little-endian `u32` body length — followed by the
//! body. Requests and responses share the framing but use disjoint tag
//! namespaces (requests `0x01..`, responses `0x81..`), so a peer can
//! never confuse the two directions.
//!
//! | frame | tag | body (little-endian) |
//! |---|---|---|
//! | `Request::Open`    | `0x01` | `stream: u32` |
//! | `Request::Get`     | `0x02` | `dev: u16, lba: u64, sectors: u32` |
//! | `Request::Put`     | `0x03` | `dev: u16, lba: u64, data: [u8]` |
//! | `Request::Commit`  | `0x04` | — |
//! | `Request::Close`   | `0x05` | — |
//! | `Response::Opened` | `0x81` | `session: u64` |
//! | `Response::Data`   | `0x82` | `status: u8, payload: [u8]` |
//! | `Response::Done`   | `0x83` | `status: u8` |
//! | `Response::Closed` | `0x84` | `completed: u64, cancelled: u64` |
//!
//! Decoding is total: any byte string yields either a frame or a
//! structured [`WireError`] — never a panic and never an allocation
//! bigger than the declared body (itself capped at [`MAX_BODY`]). A
//! decoded frame re-encodes byte-identically, which the proptest suite
//! pins down.
//!
//! ```
//! use trail_serve::wire::{Request, Response, Status};
//!
//! let frame = Request::Get { dev: 1, lba: 42, sectors: 8 }.encode();
//! let (decoded, used) = Request::decode(&frame).unwrap();
//! assert_eq!(used, frame.len());
//! assert_eq!(decoded.encode(), frame);
//!
//! let reply = Response::Done { status: Status::Ok }.encode();
//! assert!(Response::decode(&reply).is_ok());
//! ```

use std::fmt;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"TS";

/// The protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Upper bound on a frame body; larger declared lengths are rejected
/// before any allocation happens.
pub const MAX_BODY: u32 = 1 << 20;

/// Length of the fixed frame header.
pub const HEADER_LEN: usize = 8;

/// Why a byte string is not a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 2],
    },
    /// The version byte names a protocol this build does not speak.
    BadVersion {
        /// What was found instead of [`VERSION`].
        found: u8,
    },
    /// The tag byte names no frame in this direction.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// The declared body length does not fit the tagged frame's layout.
    BadLength {
        /// The frame tag.
        tag: u8,
        /// The declared body length.
        len: u32,
    },
    /// The declared body length exceeds [`MAX_BODY`].
    Oversize {
        /// The declared body length.
        len: u32,
    },
    /// A status byte outside the [`Status`] codes.
    BadStatus {
        /// The offending code.
        code: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "frame truncated: needs {needed} bytes, have {have}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            WireError::BadVersion { found } => write!(f, "unsupported protocol version {found}"),
            WireError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::BadLength { tag, len } => {
                write!(f, "body length {len} does not fit frame tag {tag:#04x}")
            }
            WireError::Oversize { len } => write!(f, "declared body length {len} exceeds cap"),
            WireError::BadStatus { code } => write!(f, "unknown status code {code}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The outcome a response carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Served.
    Ok,
    /// Refused at admission (queue full).
    Rejected,
    /// Admitted but dropped at dispatch (waited past its deadline).
    Shed,
    /// The request's session was torn down while it was in flight.
    Cancelled,
    /// The frame was malformed or not valid in this state.
    BadRequest,
    /// No open session on this connection.
    NotOpen,
}

impl Status {
    /// The on-wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Rejected => 1,
            Status::Shed => 2,
            Status::Cancelled => 3,
            Status::BadRequest => 4,
            Status::NotOpen => 5,
        }
    }

    /// Decodes an on-wire code.
    ///
    /// # Errors
    ///
    /// [`WireError::BadStatus`] for unknown codes.
    pub fn from_code(code: u8) -> Result<Status, WireError> {
        Ok(match code {
            0 => Status::Ok,
            1 => Status::Rejected,
            2 => Status::Shed,
            3 => Status::Cancelled,
            4 => Status::BadRequest,
            5 => Status::NotOpen,
            _ => return Err(WireError::BadStatus { code }),
        })
    }

    /// `true` for [`Status::Ok`].
    #[must_use]
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

/// A client-to-server frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Open a session keyed by `stream` (terminal-as-stream).
    Open {
        /// The session's stream identity.
        stream: u32,
    },
    /// Read `sectors` sectors at `lba` on device `dev`.
    Get {
        /// Target device.
        dev: u16,
        /// Starting logical block address.
        lba: u64,
        /// Sectors to read.
        sectors: u32,
    },
    /// Durably write `data` at `lba` on device `dev`.
    Put {
        /// Target device.
        dev: u16,
        /// Starting logical block address.
        lba: u64,
        /// The payload, in whole sectors.
        data: Vec<u8>,
    },
    /// Barrier: answered when every earlier `Put` on this session is
    /// durable.
    Commit,
    /// Graceful teardown; queued requests are cancelled.
    Close,
}

/// A server-to-client frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The session is open.
    Opened {
        /// Server-assigned session number.
        session: u64,
    },
    /// A `Get` answer; `payload` is empty unless `status` is `Ok`.
    Data {
        /// The outcome.
        status: Status,
        /// The sectors read.
        payload: Vec<u8>,
    },
    /// A `Put` or `Commit` acknowledgement.
    Done {
        /// The outcome.
        status: Status,
    },
    /// A `Close` acknowledgement with the session's lifetime counts.
    Closed {
        /// Requests this session saw served.
        completed: u64,
        /// Requests cancelled by the teardown.
        cancelled: u64,
    },
}

fn push_header(out: &mut Vec<u8>, tag: u8, body_len: usize) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
}

/// Validates the fixed header and returns `(tag, body)` for one frame.
fn split_frame(buf: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    let found = [buf[0], buf[1]];
    if found != MAGIC {
        return Err(WireError::BadMagic { found });
    }
    if buf[2] != VERSION {
        return Err(WireError::BadVersion { found: buf[2] });
    }
    let tag = buf[3];
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_BODY {
        return Err(WireError::Oversize { len });
    }
    let end = HEADER_LEN + len as usize;
    if buf.len() < end {
        return Err(WireError::Truncated {
            needed: end,
            have: buf.len(),
        });
    }
    Ok((tag, &buf[HEADER_LEN..end]))
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

impl Request {
    const TAG_OPEN: u8 = 0x01;
    const TAG_GET: u8 = 0x02;
    const TAG_PUT: u8 = 0x03;
    const TAG_COMMIT: u8 = 0x04;
    const TAG_CLOSE: u8 = 0x05;

    /// Encodes the request as one frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 14);
        match self {
            Request::Open { stream } => {
                push_header(&mut out, Self::TAG_OPEN, 4);
                out.extend_from_slice(&stream.to_le_bytes());
            }
            Request::Get { dev, lba, sectors } => {
                push_header(&mut out, Self::TAG_GET, 14);
                out.extend_from_slice(&dev.to_le_bytes());
                out.extend_from_slice(&lba.to_le_bytes());
                out.extend_from_slice(&sectors.to_le_bytes());
            }
            Request::Put { dev, lba, data } => {
                push_header(&mut out, Self::TAG_PUT, 10 + data.len());
                out.extend_from_slice(&dev.to_le_bytes());
                out.extend_from_slice(&lba.to_le_bytes());
                out.extend_from_slice(data);
            }
            Request::Commit => push_header(&mut out, Self::TAG_COMMIT, 0),
            Request::Close => push_header(&mut out, Self::TAG_CLOSE, 0),
        }
        out
    }

    /// Decodes one frame from the front of `buf`, returning the request
    /// and the bytes consumed.
    ///
    /// # Errors
    ///
    /// A structured [`WireError`]; never panics on any input.
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), WireError> {
        let (tag, body) = split_frame(buf)?;
        let bad = || WireError::BadLength {
            tag,
            len: body.len() as u32,
        };
        let req = match tag {
            Self::TAG_OPEN => {
                if body.len() != 4 {
                    return Err(bad());
                }
                Request::Open {
                    stream: le_u32(body),
                }
            }
            Self::TAG_GET => {
                if body.len() != 14 {
                    return Err(bad());
                }
                Request::Get {
                    dev: le_u16(body),
                    lba: le_u64(&body[2..]),
                    sectors: le_u32(&body[10..]),
                }
            }
            Self::TAG_PUT => {
                if body.len() < 10 {
                    return Err(bad());
                }
                Request::Put {
                    dev: le_u16(body),
                    lba: le_u64(&body[2..]),
                    data: body[10..].to_vec(),
                }
            }
            Self::TAG_COMMIT => {
                if !body.is_empty() {
                    return Err(bad());
                }
                Request::Commit
            }
            Self::TAG_CLOSE => {
                if !body.is_empty() {
                    return Err(bad());
                }
                Request::Close
            }
            tag => return Err(WireError::UnknownTag { tag }),
        };
        Ok((req, HEADER_LEN + body.len()))
    }
}

impl Response {
    const TAG_OPENED: u8 = 0x81;
    const TAG_DATA: u8 = 0x82;
    const TAG_DONE: u8 = 0x83;
    const TAG_CLOSED: u8 = 0x84;

    /// Encodes the response as one frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 16);
        match self {
            Response::Opened { session } => {
                push_header(&mut out, Self::TAG_OPENED, 8);
                out.extend_from_slice(&session.to_le_bytes());
            }
            Response::Data { status, payload } => {
                push_header(&mut out, Self::TAG_DATA, 1 + payload.len());
                out.push(status.code());
                out.extend_from_slice(payload);
            }
            Response::Done { status } => {
                push_header(&mut out, Self::TAG_DONE, 1);
                out.push(status.code());
            }
            Response::Closed {
                completed,
                cancelled,
            } => {
                push_header(&mut out, Self::TAG_CLOSED, 16);
                out.extend_from_slice(&completed.to_le_bytes());
                out.extend_from_slice(&cancelled.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one frame from the front of `buf`, returning the response
    /// and the bytes consumed.
    ///
    /// # Errors
    ///
    /// A structured [`WireError`]; never panics on any input.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), WireError> {
        let (tag, body) = split_frame(buf)?;
        let bad = || WireError::BadLength {
            tag,
            len: body.len() as u32,
        };
        let resp = match tag {
            Self::TAG_OPENED => {
                if body.len() != 8 {
                    return Err(bad());
                }
                Response::Opened {
                    session: le_u64(body),
                }
            }
            Self::TAG_DATA => {
                if body.is_empty() {
                    return Err(bad());
                }
                Response::Data {
                    status: Status::from_code(body[0])?,
                    payload: body[1..].to_vec(),
                }
            }
            Self::TAG_DONE => {
                if body.len() != 1 {
                    return Err(bad());
                }
                Response::Done {
                    status: Status::from_code(body[0])?,
                }
            }
            Self::TAG_CLOSED => {
                if body.len() != 16 {
                    return Err(bad());
                }
                Response::Closed {
                    completed: le_u64(body),
                    cancelled: le_u64(&body[8..]),
                }
            }
            tag => return Err(WireError::UnknownTag { tag }),
        };
        Ok((resp, HEADER_LEN + body.len()))
    }

    /// The response's status, if it carries one (`Opened`/`Closed` are
    /// implicitly `Ok`).
    #[must_use]
    pub fn status(&self) -> Status {
        match self {
            Response::Opened { .. } | Response::Closed { .. } => Status::Ok,
            Response::Data { status, .. } | Response::Done { status } => *status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_byte_identically() {
        let frames = [
            Request::Open { stream: 7 },
            Request::Get {
                dev: 2,
                lba: 0xDEAD_BEEF,
                sectors: 8,
            },
            Request::Put {
                dev: 0,
                lba: 1,
                data: vec![0x5A; 512],
            },
            Request::Commit,
            Request::Close,
        ];
        for f in frames {
            let bytes = f.encode();
            let (back, used) = Request::decode(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(back, f);
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn responses_round_trip_byte_identically() {
        let frames = [
            Response::Opened { session: 99 },
            Response::Data {
                status: Status::Ok,
                payload: vec![1, 2, 3],
            },
            Response::Done {
                status: Status::Shed,
            },
            Response::Closed {
                completed: 10,
                cancelled: 2,
            },
        ];
        for f in frames {
            let bytes = f.encode();
            let (back, used) = Response::decode(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(back, f);
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn truncation_and_corruption_are_structured_errors() {
        let bytes = Request::Get {
            dev: 1,
            lba: 2,
            sectors: 3,
        }
        .encode();
        assert!(matches!(
            Request::decode(&bytes[..5]),
            Err(WireError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Request::decode(&bad),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad = bytes.clone();
        bad[2] = 9;
        assert_eq!(
            Request::decode(&bad),
            Err(WireError::BadVersion { found: 9 })
        );
        let mut bad = bytes.clone();
        bad[3] = 0x77;
        assert_eq!(
            Request::decode(&bad),
            Err(WireError::UnknownTag { tag: 0x77 })
        );
        // A response tag is not a request.
        let opened = Response::Opened { session: 1 }.encode();
        assert!(matches!(
            Request::decode(&opened),
            Err(WireError::UnknownTag { .. })
        ));
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = Request::Commit.encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&bytes),
            Err(WireError::Oversize { len: u32::MAX })
        );
    }

    #[test]
    fn status_codes_are_total() {
        for s in [
            Status::Ok,
            Status::Rejected,
            Status::Shed,
            Status::Cancelled,
            Status::BadRequest,
            Status::NotOpen,
        ] {
            assert_eq!(Status::from_code(s.code()), Ok(s));
        }
        assert_eq!(
            Status::from_code(200),
            Err(WireError::BadStatus { code: 200 })
        );
    }
}
