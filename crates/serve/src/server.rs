//! Sessions and the admission-controlled request executor.
//!
//! A [`Server`] fronts a [`StorageService`] with the connection model a
//! network daemon would have, entirely on the simulator clock:
//!
//! - **Sessions** are keyed by [`StreamId`] (terminal-as-stream): every
//!   request a session submits is tagged with its stream, so a Trail
//!   array underneath can route the session's log writes by affinity.
//!   A [`SessionHandle`] is the client's end of the connection;
//!   **dropping it mid-flight cancels the session's outstanding
//!   requests** through the `Completion` cancel-cascade — queued
//!   requests' reply tokens are dropped (the sink parks and delivers
//!   `Err(Cancelled)`), and in-service requests are cancelled when
//!   their disk I/O surfaces.
//! - **The executor** is a bounded pool of worker slots over one FIFO
//!   admission queue. A slot is held from dispatch until the stack
//!   acknowledges durability, so when the log disk saturates the queue
//!   grows and the admission policy pushes back — that is the whole
//!   backpressure story.
//! - **Admission policies**: [`AdmissionPolicy::Unbounded`] (queue
//!   without limit; the tail diverges under overload),
//!   [`AdmissionPolicy::BoundedQueue`] (reject arrivals when the queue
//!   is full; admitted requests see bounded queueing delay), and
//!   [`AdmissionPolicy::DeadlineShed`] (admit everything, shed at
//!   dispatch any request that already waited past its deadline).
//!
//! Requests arrive and leave as encoded wire frames ([`crate::wire`]),
//! so the protocol codec is load-bearing for every simulated byte.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_db::StorageService;
use trail_sim::{Completion, Delivered, SimDuration, SimTime, Simulator};
use trail_telemetry::StreamId;

use crate::wire::{Request, Response, Status};

/// What the executor does when a request arrives while the pool is busy.
#[derive(Clone, Copy, Debug)]
pub enum AdmissionPolicy {
    /// Queue without limit; nothing is refused, the tail pays.
    Unbounded,
    /// Refuse arrivals once the queue holds `max_queue` requests.
    BoundedQueue {
        /// Queue capacity; arrivals beyond it answer `Rejected`.
        max_queue: usize,
    },
    /// Admit everything, but drop (answer `Shed`) any request that has
    /// already waited longer than `max_wait` when a slot frees up.
    DeadlineShed {
        /// Maximum queueing delay before a request is shed at dispatch.
        max_wait: SimDuration,
    },
}

impl AdmissionPolicy {
    /// A short stable label for reports (`unbounded`, `bounded`,
    /// `deadline`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Unbounded => "unbounded",
            AdmissionPolicy::BoundedQueue { .. } => "bounded",
            AdmissionPolicy::DeadlineShed { .. } => "deadline",
        }
    }
}

/// Executor sizing and policy.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Concurrent requests in service (each holds one slot from dispatch
    /// to durability).
    pub worker_slots: usize,
    /// The admission policy.
    pub admission: AdmissionPolicy,
}

impl Default for ServerConfig {
    /// Four worker slots, unbounded admission.
    fn default() -> Self {
        ServerConfig {
            worker_slots: 4,
            admission: AdmissionPolicy::Unbounded,
        }
    }
}

/// Lifetime counters for one server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Sessions opened.
    pub opened: u64,
    /// Sessions closed (gracefully or by drop).
    pub closed: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests answered `Ok` (including commits).
    pub completed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests dropped at dispatch by the deadline policy.
    pub shed: u64,
    /// Requests cancelled by session teardown.
    pub cancelled: u64,
    /// Commit barriers requested.
    pub commits: u64,
    /// Frames that failed to decode or were invalid in their state.
    pub bad_frames: u64,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: usize,
}

struct SessionState {
    open: bool,
    /// `true` only for abrupt teardown (handle dropped); in-service
    /// requests of an aborted session are cancelled instead of answered.
    aborted: bool,
    completed: u64,
    cancelled: u64,
}

struct Queued {
    session: u64,
    stream: StreamId,
    at: SimTime,
    req: Request,
    reply: Completion<Vec<u8>>,
}

struct ServerInner {
    service: StorageService,
    config: ServerConfig,
    sessions: BTreeMap<u64, SessionState>,
    next_session: u64,
    queue: VecDeque<Queued>,
    busy: usize,
    stats: ServerStats,
}

/// The storage-service front-end; cheap to clone (shared state).
#[derive(Clone)]
pub struct Server {
    inner: Rc<RefCell<ServerInner>>,
}

/// The client's end of one open session. Not `Clone`: ownership is the
/// connection, and dropping it is an abrupt disconnect that cancels the
/// session's outstanding requests.
pub struct SessionHandle {
    server: Server,
    id: u64,
    stream: StreamId,
}

fn respond(sim: &mut Simulator, reply: Completion<Vec<u8>>, resp: &Response) {
    reply.complete(sim, resp.encode());
}

/// The refusal response matching a request's expected answer shape.
fn refusal(req: &Request, status: Status) -> Response {
    match req {
        Request::Get { .. } => Response::Data {
            status,
            payload: Vec::new(),
        },
        _ => Response::Done { status },
    }
}

enum PumpJob {
    Run(Queued),
    Shed(Queued),
}

impl Server {
    /// Fronts `service` with the given executor configuration.
    #[must_use]
    pub fn new(service: StorageService, config: ServerConfig) -> Self {
        assert!(config.worker_slots >= 1, "at least one worker slot");
        Server {
            inner: Rc::new(RefCell::new(ServerInner {
                service,
                config,
                sessions: BTreeMap::new(),
                next_session: 1,
                queue: VecDeque::new(),
                busy: 0,
                stats: ServerStats::default(),
            })),
        }
    }

    /// Number of devices behind the service.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.inner.borrow().service.devices()
    }

    /// Smallest device capacity in sectors (see
    /// [`StorageService::min_capacity`]).
    #[must_use]
    pub fn min_capacity(&self) -> u64 {
        self.inner.borrow().service.min_capacity()
    }

    /// Snapshot of the lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.inner.borrow().stats
    }

    /// Requests currently waiting for a worker slot.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Requests currently holding a worker slot.
    #[must_use]
    pub fn in_service(&self) -> usize {
        self.inner.borrow().busy
    }

    /// The wire handshake: decodes an `Open` frame and opens the session
    /// it names.
    ///
    /// # Errors
    ///
    /// An encoded `BadRequest` response (ready to send back) when the
    /// frame does not decode to `Request::Open`.
    pub fn connect(&self, frame: &[u8]) -> Result<(SessionHandle, Vec<u8>), Vec<u8>> {
        match Request::decode(frame) {
            Ok((Request::Open { stream }, _)) => Ok(self.open(StreamId(stream))),
            _ => {
                self.inner.borrow_mut().stats.bad_frames += 1;
                Err(Response::Done {
                    status: Status::BadRequest,
                }
                .encode())
            }
        }
    }

    /// Opens a session keyed by `stream`, returning the handle and the
    /// encoded `Opened` response.
    #[must_use]
    pub fn open(&self, stream: StreamId) -> (SessionHandle, Vec<u8>) {
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_session;
            inner.next_session += 1;
            inner.stats.opened += 1;
            inner.sessions.insert(
                id,
                SessionState {
                    open: true,
                    aborted: false,
                    completed: 0,
                    cancelled: 0,
                },
            );
            id
        };
        (
            SessionHandle {
                server: self.clone(),
                id,
                stream,
            },
            Response::Opened { session: id }.encode(),
        )
    }

    fn submit(
        &self,
        sim: &mut Simulator,
        session: u64,
        stream: StreamId,
        frame: &[u8],
        reply: Completion<Vec<u8>>,
    ) {
        let req = match Request::decode(frame) {
            Ok((req, _)) => req,
            Err(_) => {
                self.inner.borrow_mut().stats.bad_frames += 1;
                respond(
                    sim,
                    reply,
                    &Response::Done {
                        status: Status::BadRequest,
                    },
                );
                return;
            }
        };
        let open = self
            .inner
            .borrow()
            .sessions
            .get(&session)
            .is_some_and(|s| s.open);
        if !open {
            respond(sim, reply, &refusal(&req, Status::NotOpen));
            return;
        }
        match req {
            Request::Open { .. } => {
                self.inner.borrow_mut().stats.bad_frames += 1;
                respond(
                    sim,
                    reply,
                    &Response::Done {
                        status: Status::BadRequest,
                    },
                );
            }
            Request::Close => self.close_session(sim, session, reply),
            Request::Commit => self.commit(sim, session, stream, reply),
            req @ (Request::Get { .. } | Request::Put { .. }) => {
                let full = {
                    let inner = self.inner.borrow();
                    matches!(
                        inner.config.admission,
                        AdmissionPolicy::BoundedQueue { max_queue }
                            if inner.queue.len() >= max_queue
                    )
                };
                if full {
                    self.inner.borrow_mut().stats.rejected += 1;
                    respond(sim, reply, &refusal(&req, Status::Rejected));
                    return;
                }
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.admitted += 1;
                    inner.queue.push_back(Queued {
                        session,
                        stream,
                        at: sim.now(),
                        req,
                        reply,
                    });
                    let depth = inner.queue.len();
                    inner.stats.max_queue_depth = inner.stats.max_queue_depth.max(depth);
                }
                self.pump(sim);
            }
        }
    }

    fn commit(
        &self,
        sim: &mut Simulator,
        session: u64,
        stream: StreamId,
        reply: Completion<Vec<u8>>,
    ) {
        let service = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.commits += 1;
            inner.service.clone()
        };
        let server = self.clone();
        let done = sim.completion(move |sim, d: Delivered<()>| {
            let mut inner = server.inner.borrow_mut();
            match d {
                Ok(()) => {
                    inner.stats.completed += 1;
                    if let Some(s) = inner.sessions.get_mut(&session) {
                        s.completed += 1;
                    }
                    drop(inner);
                    respond(sim, reply, &Response::Done { status: Status::Ok });
                }
                Err(_) => {
                    inner.stats.cancelled += 1;
                    drop(inner);
                    reply.cancel(sim);
                }
            }
        });
        service.commit(sim, stream, done);
    }

    fn close_session(&self, sim: &mut Simulator, session: u64, reply: Completion<Vec<u8>>) {
        let (purged, resp) = {
            let mut inner = self.inner.borrow_mut();
            let already_closed = inner.sessions.get(&session).is_none_or(|s| !s.open);
            if already_closed {
                drop(inner);
                return respond(sim, reply, &refusal(&Request::Close, Status::NotOpen));
            }
            let state = inner.sessions.get_mut(&session).expect("session exists");
            state.open = false;
            inner.stats.closed += 1;
            let (keep, purged): (VecDeque<Queued>, VecDeque<Queued>) =
                std::mem::take(&mut inner.queue)
                    .into_iter()
                    .partition(|q| q.session != session);
            inner.queue = keep;
            inner.stats.cancelled += purged.len() as u64;
            let state = inner.sessions.get_mut(&session).expect("session exists");
            state.cancelled += purged.len() as u64;
            let resp = Response::Closed {
                completed: state.completed,
                cancelled: state.cancelled,
            };
            (purged, resp)
        };
        for q in purged {
            q.reply.cancel(sim);
        }
        respond(sim, reply, &resp);
    }

    /// Abrupt disconnect (the handle was dropped): purge the session's
    /// queued requests by *dropping* their reply tokens — the completion
    /// sink parks each cancellation and the simulator delivers
    /// `Err(Cancelled)` on its next step. No `&mut Simulator` needed,
    /// which is what lets this run from `Drop`.
    fn abort(&self, session: u64) {
        let mut inner = self.inner.borrow_mut();
        let Some(state) = inner.sessions.get_mut(&session) else {
            return;
        };
        if !state.open {
            return;
        }
        state.open = false;
        state.aborted = true;
        inner.stats.closed += 1;
        let (keep, purged): (VecDeque<Queued>, VecDeque<Queued>) = std::mem::take(&mut inner.queue)
            .into_iter()
            .partition(|q| q.session != session);
        inner.queue = keep;
        inner.stats.cancelled += purged.len() as u64;
        let state = inner.sessions.get_mut(&session).expect("session exists");
        state.cancelled += purged.len() as u64;
        drop(inner);
        // Dropping `purged` drops the reply tokens: the cancel-cascade
        // takes it from here.
        drop(purged);
    }

    /// Fills free worker slots from the queue, shedding stale requests
    /// under the deadline policy.
    fn pump(&self, sim: &mut Simulator) {
        loop {
            let job = {
                let mut inner = self.inner.borrow_mut();
                if inner.busy >= inner.config.worker_slots {
                    return;
                }
                let Some(q) = inner.queue.pop_front() else {
                    return;
                };
                let stale = matches!(
                    inner.config.admission,
                    AdmissionPolicy::DeadlineShed { max_wait } if sim.now() - q.at > max_wait
                );
                if stale {
                    inner.stats.shed += 1;
                    PumpJob::Shed(q)
                } else {
                    inner.busy += 1;
                    PumpJob::Run(q)
                }
            };
            match job {
                PumpJob::Shed(q) => {
                    respond(sim, q.reply, &refusal(&q.req, Status::Shed));
                }
                PumpJob::Run(q) => self.dispatch(sim, q),
            }
        }
    }

    fn dispatch(&self, sim: &mut Simulator, q: Queued) {
        let service = self.inner.borrow().service.clone();
        let server = self.clone();
        let session = q.session;
        let reply = q.reply;
        match q.req {
            Request::Get { dev, lba, sectors } => {
                let done = sim.completion(move |sim, d: Delivered<IoDone>| {
                    let outcome = d.map(|io| Response::Data {
                        status: Status::Ok,
                        payload: io.data.unwrap_or_default(),
                    });
                    server.finish_io(sim, session, reply, outcome);
                });
                let _ = service.get(sim, q.stream, dev, lba, sectors, done);
            }
            Request::Put { dev, lba, data } => {
                let done = sim.completion(move |sim, d: Delivered<IoDone>| {
                    let outcome = d.map(|_| Response::Done { status: Status::Ok });
                    server.finish_io(sim, session, reply, outcome);
                });
                let _ = service.put(sim, q.stream, dev, lba, data, done);
            }
            // Open/Commit/Close never enter the queue.
            _ => unreachable!("only Get/Put are queued"),
        }
    }

    /// A worker slot came back: account the outcome, answer (or cancel)
    /// the client, and pump the queue again.
    fn finish_io(
        &self,
        sim: &mut Simulator,
        session: u64,
        reply: Completion<Vec<u8>>,
        outcome: Delivered<Response>,
    ) {
        let aborted = {
            let mut inner = self.inner.borrow_mut();
            inner.busy -= 1;
            let aborted = inner.sessions.get(&session).is_none_or(|s| s.aborted);
            match (&outcome, aborted) {
                (Ok(_), false) => {
                    inner.stats.completed += 1;
                    if let Some(s) = inner.sessions.get_mut(&session) {
                        s.completed += 1;
                    }
                }
                _ => {
                    inner.stats.cancelled += 1;
                    if let Some(s) = inner.sessions.get_mut(&session) {
                        s.cancelled += 1;
                    }
                }
            }
            aborted
        };
        match outcome {
            Ok(resp) if !aborted => respond(sim, reply, &resp),
            _ => reply.cancel(sim),
        }
        self.pump(sim);
    }
}

impl SessionHandle {
    /// The server-assigned session number.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's stream identity.
    #[must_use]
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Submits one encoded request frame; `reply` receives the encoded
    /// response frame, or `Err(Cancelled)` if the session is torn down
    /// first.
    pub fn submit(&self, sim: &mut Simulator, frame: &[u8], reply: Completion<Vec<u8>>) {
        self.server.submit(sim, self.id, self.stream, frame, reply);
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.server.abort(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use trail_db::StandardStack;
    use trail_disk::{profiles, Disk};

    fn server(config: ServerConfig) -> (Simulator, Server) {
        let sim = Simulator::new();
        let disks = vec![Disk::new("d0", profiles::tiny_test_disk())];
        let capacity = disks.iter().map(|d| d.geometry().total_sectors()).collect();
        let stack: trail_db::SharedStack = Rc::new(StandardStack::new(disks));
        let service = StorageService::new(stack, capacity);
        (sim, Server::new(service, config))
    }

    fn ok_count(sim: &mut Simulator, server: &Server, frames: usize) -> u64 {
        let (session, _) = server.open(StreamId(1));
        for i in 0..frames {
            let frame = Request::Put {
                dev: 0,
                lba: i as u64,
                data: vec![i as u8; 512],
            }
            .encode();
            let reply = sim.completion(|_, _: Delivered<Vec<u8>>| {});
            session.submit(sim, &frame, reply);
        }
        sim.run();
        server.stats().completed
    }

    #[test]
    fn serves_puts_and_gets_through_the_wire() {
        let (mut sim, srv) = server(ServerConfig::default());
        let (session, opened) = srv.open(StreamId(7));
        assert!(matches!(
            Response::decode(&opened),
            Ok((Response::Opened { session: 1 }, _))
        ));
        let put = Request::Put {
            dev: 0,
            lba: 3,
            data: vec![0xAB; 512],
        }
        .encode();
        let reply = sim.completion(|_, d: Delivered<Vec<u8>>| {
            let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
            assert_eq!(resp.status(), Status::Ok);
        });
        session.submit(&mut sim, &put, reply);
        sim.run();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let get = Request::Get {
            dev: 0,
            lba: 3,
            sectors: 1,
        }
        .encode();
        let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
            let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
            match resp {
                Response::Data { status, payload } => {
                    assert_eq!(status, Status::Ok);
                    assert_eq!(payload[0], 0xAB);
                }
                other => panic!("unexpected response {other:?}"),
            }
            s.set(true);
        });
        session.submit(&mut sim, &get, reply);
        sim.run();
        assert!(seen.get());
        assert_eq!(srv.stats().completed, 2);
        assert_eq!(srv.queue_depth(), 0);
        assert_eq!(srv.in_service(), 0);
    }

    #[test]
    fn bounded_queue_rejects_the_overflow() {
        let (mut sim, srv) = server(ServerConfig {
            worker_slots: 1,
            admission: AdmissionPolicy::BoundedQueue { max_queue: 2 },
        });
        let (session, _) = srv.open(StreamId(1));
        let rejected = Rc::new(Cell::new(0u32));
        for i in 0..8 {
            let frame = Request::Put {
                dev: 0,
                lba: i,
                data: vec![1; 512],
            }
            .encode();
            let r = Rc::clone(&rejected);
            let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
                let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
                if resp.status() == Status::Rejected {
                    r.set(r.get() + 1);
                }
            });
            session.submit(&mut sim, &frame, reply);
        }
        sim.run();
        let stats = srv.stats();
        // 1 dispatched immediately + 2 queued; 5 refused.
        assert_eq!(stats.rejected, 5);
        assert_eq!(rejected.get(), 5);
        assert_eq!(stats.completed, 3);
        assert!(stats.max_queue_depth <= 2);
    }

    #[test]
    fn deadline_shed_drops_stale_queue_entries() {
        let (mut sim, srv) = server(ServerConfig {
            worker_slots: 1,
            admission: AdmissionPolicy::DeadlineShed {
                max_wait: SimDuration::from_micros(1),
            },
        });
        let (session, _) = srv.open(StreamId(1));
        let shed = Rc::new(Cell::new(0u32));
        for i in 0..6 {
            let frame = Request::Put {
                dev: 0,
                lba: i,
                data: vec![1; 512],
            }
            .encode();
            let s = Rc::clone(&shed);
            let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
                let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
                if resp.status() == Status::Shed {
                    s.set(s.get() + 1);
                }
            });
            session.submit(&mut sim, &frame, reply);
        }
        sim.run();
        let stats = srv.stats();
        // The first request dispatches with no wait; everything behind it
        // waited a full service time >> 1 µs and is shed.
        assert_eq!(stats.shed, 5);
        assert_eq!(shed.get(), 5);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn commit_answers_after_puts_are_durable() {
        let (mut sim, srv) = server(ServerConfig::default());
        let (session, _) = srv.open(StreamId(2));
        let put = Request::Put {
            dev: 0,
            lba: 0,
            data: vec![9; 512],
        }
        .encode();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&order);
        let reply = sim.completion(move |_, _: Delivered<Vec<u8>>| o.borrow_mut().push("put"));
        session.submit(&mut sim, &put, reply);
        let o = Rc::clone(&order);
        let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
            let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
            assert_eq!(resp.status(), Status::Ok);
            o.borrow_mut().push("commit");
        });
        session.submit(&mut sim, &Request::Commit.encode(), reply);
        sim.run();
        assert_eq!(order.borrow().len(), 2);
        assert_eq!(srv.stats().commits, 1);
    }

    #[test]
    fn graceful_close_cancels_queued_and_acks_with_counts() {
        let (mut sim, srv) = server(ServerConfig {
            worker_slots: 1,
            admission: AdmissionPolicy::Unbounded,
        });
        let (session, _) = srv.open(StreamId(3));
        let cancelled = Rc::new(Cell::new(0u32));
        for i in 0..4 {
            let frame = Request::Put {
                dev: 0,
                lba: i,
                data: vec![1; 512],
            }
            .encode();
            let c = Rc::clone(&cancelled);
            let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
                if d.is_err() {
                    c.set(c.get() + 1);
                }
            });
            session.submit(&mut sim, &frame, reply);
        }
        let closed = Rc::new(Cell::new(false));
        let cl = Rc::clone(&closed);
        let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
            let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
            assert!(matches!(resp, Response::Closed { cancelled: 3, .. }));
            cl.set(true);
        });
        session.submit(&mut sim, &Request::Close.encode(), reply);
        sim.run();
        assert!(closed.get());
        // 3 queued requests cancelled; the in-service one drains and
        // completes (graceful close is a drain, not an abort).
        assert_eq!(cancelled.get(), 3);
        assert_eq!(srv.stats().completed, 1);
        // Submitting after close answers NotOpen.
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
            let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
            assert_eq!(resp.status(), Status::NotOpen);
            s.set(true);
        });
        session.submit(&mut sim, &Request::Commit.encode(), reply);
        sim.run();
        assert!(seen.get());
    }

    #[test]
    fn bad_frames_answer_bad_request_never_panic() {
        let (mut sim, srv) = server(ServerConfig::default());
        let (session, _) = srv.open(StreamId(1));
        for garbage in [vec![], vec![0xFF; 3], vec![0xFF; 64]] {
            let seen = Rc::new(Cell::new(false));
            let s = Rc::clone(&seen);
            let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| {
                let (resp, _) = Response::decode(&d.expect("answered")).expect("decodes");
                assert_eq!(resp.status(), Status::BadRequest);
                s.set(true);
            });
            session.submit(&mut sim, &garbage, reply);
            sim.run();
            assert!(seen.get());
        }
        assert_eq!(srv.stats().bad_frames, 3);
    }

    #[test]
    fn throughput_accounting_is_consistent() {
        let (mut sim, srv) = server(ServerConfig::default());
        let completed = ok_count(&mut sim, &srv, 32);
        assert_eq!(completed, 32);
        let stats = srv.stats();
        assert_eq!(stats.admitted, 32);
        assert_eq!(stats.rejected + stats.shed + stats.cancelled, 0);
    }
}
