//! # trail-serve: a storage service front-end over the Trail stack
//!
//! The paper's setting is a *server*: terminals hit a database whose
//! log rides a track-based disk log. This crate closes that loop by
//! putting a serving layer on top of the storage stack, entirely on the
//! simulator clock:
//!
//! - [`wire`] — a versioned, framed binary protocol
//!   (`Get`/`Put`/`Commit`/`Open`/`Close` requests; status + payload
//!   responses). Every simulated request is really encoded to bytes and
//!   decoded back, so the codec is load-bearing, not decorative.
//! - [`Server`] / [`SessionHandle`] — sessions keyed by
//!   [`StreamId`](trail_telemetry::StreamId) (terminal-as-stream, so a
//!   multi-log Trail array underneath can route by stream affinity),
//!   with **drop-cancels-in-flight** built on the `Completion`
//!   cancel-cascade: dropping a handle abruptly disconnects the session
//!   and every outstanding request answers `Err(Cancelled)`.
//! - [`AdmissionPolicy`] — a bounded pool of worker slots fed by one
//!   admission queue: queue without limit, reject when full, or shed
//!   stale work at dispatch. Slots are held to durability, so log-disk
//!   saturation is what backpressure actually propagates.
//! - [`run_fleet`] — a simulated client fleet: one session per workload
//!   stream, open- or closed-loop arrivals reusing the `trail-trace`
//!   generator, per-client latency lanes (p50/p95/p99/p99.9), and
//!   connection churn mid-run.
//!
//! ```
//! use trail_serve::{run_fleet, FleetMode, FleetSpec, Server, ServerConfig};
//! use trail_db::{SharedStack, StandardStack, StorageService};
//! use trail_disk::{profiles, Disk};
//! use trail_sim::Simulator;
//! use std::rc::Rc;
//!
//! let mut sim = Simulator::new();
//! let disks = vec![Disk::new("d0", profiles::tiny_test_disk())];
//! let capacity = disks.iter().map(|d| d.geometry().total_sectors()).collect();
//! let stack: SharedStack = Rc::new(StandardStack::new(disks));
//! let server = Server::new(StorageService::new(stack, capacity), ServerConfig::default());
//! let report = run_fleet(
//!     &mut sim,
//!     &server,
//!     &FleetSpec { sessions: 2, requests: 16, ..FleetSpec::default() },
//! );
//! assert_eq!(report.served, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod server;
pub mod wire;

pub use fleet::{run_fleet, FleetMode, FleetReport, FleetSpec};
pub use server::{AdmissionPolicy, Server, ServerConfig, ServerStats, SessionHandle};
pub use wire::{Request, Response, Status, WireError, MAX_BODY, VERSION};
