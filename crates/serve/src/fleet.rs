//! A simulated client fleet: thousands of sessions driving a [`Server`].
//!
//! The fleet reuses the synthetic workload generator from `trail-trace`
//! — every distinct stream in the generated trace becomes one session
//! (terminal-as-stream), and the per-stream arrival process becomes
//! either request arrival times (**open loop**: requests fire on
//! schedule whether or not earlier ones answered, so queues grow under
//! overload) or think times (**closed loop**: each client waits for its
//! answer, thinks, and only then issues the next request, so offered
//! load self-limits). An `overload` factor compresses both the same way
//! the replay engine's `speed` knob compresses arrivals: `2.0` offers
//! twice the load the arrival model drew.
//!
//! Everything crosses the wire codec: clients encode request frames,
//! byte-count them, and decode the response frames the server answers
//! with — `wire_tx`/`wire_rx` in the report are real protocol bytes.
//!
//! Per-client latency lands in a [`StreamMetrics`] lane per session
//! (p50/p95/p99/p99.9 via the shared histogram), measured from submit
//! to decoded response, **served requests only** — a rejected or shed
//! request answers fast precisely because it was refused, and folding
//! it into the latency distribution would flatter the overloaded
//! server. Refusals are counted instead, and cancellations (session
//! churn tearing down in-flight requests) are counted separately again.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use trail_disk::SECTOR_SIZE;
use trail_sim::{Delivered, SimDuration, SimTime, Simulator};
use trail_telemetry::{DurationHistogram, JsonValue, StreamId, StreamMetrics};
use trail_trace::{generate, ArrivalModel, SpatialModel, SyntheticSpec, TraceOp, TraceRecord};

use crate::server::{Server, ServerStats, SessionHandle};
use crate::wire::{Request, Response, Status};

/// How clients pace themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetMode {
    /// Requests fire at their generated arrival instants regardless of
    /// outstanding work — offered load is fixed, queues absorb overload.
    OpenLoop,
    /// Each client issues, waits for the answer, thinks for the
    /// generated inter-arrival gap, then issues again — offered load
    /// self-limits to the service rate.
    ClosedLoop,
}

impl FleetMode {
    /// Stable label for reports (`open` / `closed`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FleetMode::OpenLoop => "open",
            FleetMode::ClosedLoop => "closed",
        }
    }
}

/// Fleet shape and workload.
#[derive(Clone, Copy, Debug)]
pub struct FleetSpec {
    /// Workload seed (streams derive independent sub-seeds).
    pub seed: u64,
    /// Number of client sessions (= workload streams).
    pub sessions: u32,
    /// Total data requests across the fleet.
    pub requests: usize,
    /// Open or closed loop.
    pub mode: FleetMode,
    /// Load multiplier: arrival gaps (open loop) or think times (closed
    /// loop) are divided by this. Clamped to `0.05..=16.0`.
    pub overload: f64,
    /// Per-session mean inter-arrival time at `overload = 1.0`.
    pub mean_iat: SimDuration,
    /// Fraction of requests that are `Get`s.
    pub read_fraction: f64,
    /// Sectors per request (payload = this × 512 bytes for `Put`s).
    pub payload_sectors: u32,
    /// Issue a `Commit` after every N served `Put`s per session
    /// (`0` = never).
    pub commit_every: u32,
    /// Open loop only: halfway through its schedule each session drops
    /// its connection abruptly (cancelling in-flight requests through
    /// the completion cascade) and reopens under the same stream.
    pub churn: bool,
    /// Address locality of the workload.
    pub spatial: SpatialModel,
}

impl Default for FleetSpec {
    /// Eight open-loop sessions, 256 requests, nominal load, 30% reads,
    /// 1-KiB payloads, a commit every 16 puts, no churn, Zipf locality.
    fn default() -> Self {
        FleetSpec {
            seed: 1,
            sessions: 8,
            requests: 256,
            mode: FleetMode::OpenLoop,
            overload: 1.0,
            mean_iat: SimDuration::from_millis(20),
            read_fraction: 0.3,
            payload_sectors: 2,
            commit_every: 16,
            churn: false,
            spatial: SpatialModel::Zipf { skew: 2.0 },
        }
    }
}

/// What one fleet run measured.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Sessions that participated.
    pub sessions: u32,
    /// Data requests issued.
    pub issued: u64,
    /// Requests answered `Ok`.
    pub served: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests shed at dispatch.
    pub shed: u64,
    /// Requests whose reply was cancelled (session teardown).
    pub cancelled: u64,
    /// Commits answered `Ok`.
    pub commits_ok: u64,
    /// Open-loop churn reopens.
    pub reopened: u64,
    /// Fleet-wide latency over served requests, measured at the client.
    pub latency: DurationHistogram,
    /// Per-client lanes (one per session stream).
    pub clients: StreamMetrics,
    /// Server-side counters.
    pub server: ServerStats,
    /// Request-frame bytes clients encoded and sent.
    pub wire_tx: u64,
    /// Response-frame bytes clients received and decoded.
    pub wire_rx: u64,
    /// First arrival to last response.
    pub duration: SimDuration,
    /// Completion-sink cancellations attributable to this run (the
    /// cancel-cascade at work; see `CompletionSink::cancelled_count`).
    pub cancelled_completions: u64,
}

impl FleetReport {
    /// The report as JSON, with every client lane inlined.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        self.to_json_with_clients(usize::MAX)
    }

    /// The report as JSON, inlining at most `limit` client lanes (in
    /// stream order) next to a min/median/max summary of per-client p99
    /// over *all* lanes — full fidelity for spot-checking, bounded size
    /// for thousand-session fleets.
    #[must_use]
    pub fn to_json_with_clients(&self, limit: usize) -> JsonValue {
        let mut p99s: Vec<f64> = self
            .clients
            .iter()
            .filter(|(_, lane)| lane.latency.count() > 0)
            .map(|(_, lane)| lane.latency.percentile(99.0).as_millis_f64())
            .collect();
        p99s.sort_by(f64::total_cmp);
        let spread = if p99s.is_empty() {
            JsonValue::Null
        } else {
            JsonValue::obj(vec![
                ("min_ms", JsonValue::Num(p99s[0])),
                ("median_ms", JsonValue::Num(p99s[p99s.len() / 2])),
                ("max_ms", JsonValue::Num(p99s[p99s.len() - 1])),
            ])
        };
        let clients = JsonValue::Obj(
            self.clients
                .iter()
                .take(limit)
                .map(|(id, lane)| (id.to_string(), lane.to_json()))
                .collect(),
        );
        JsonValue::obj(vec![
            ("sessions", JsonValue::Num(f64::from(self.sessions))),
            ("issued", JsonValue::Num(self.issued as f64)),
            ("served", JsonValue::Num(self.served as f64)),
            ("rejected", JsonValue::Num(self.rejected as f64)),
            ("shed", JsonValue::Num(self.shed as f64)),
            ("cancelled", JsonValue::Num(self.cancelled as f64)),
            ("commits_ok", JsonValue::Num(self.commits_ok as f64)),
            ("reopened", JsonValue::Num(self.reopened as f64)),
            (
                "cancelled_completions",
                JsonValue::Num(self.cancelled_completions as f64),
            ),
            ("wire_tx_bytes", JsonValue::Num(self.wire_tx as f64)),
            ("wire_rx_bytes", JsonValue::Num(self.wire_rx as f64)),
            ("duration_ms", JsonValue::Num(self.duration.as_millis_f64())),
            ("latency", self.latency.to_json()),
            ("client_p99_spread", spread),
            (
                "server",
                JsonValue::obj(vec![
                    ("opened", JsonValue::Num(self.server.opened as f64)),
                    ("closed", JsonValue::Num(self.server.closed as f64)),
                    ("admitted", JsonValue::Num(self.server.admitted as f64)),
                    ("completed", JsonValue::Num(self.server.completed as f64)),
                    ("rejected", JsonValue::Num(self.server.rejected as f64)),
                    ("shed", JsonValue::Num(self.server.shed as f64)),
                    ("cancelled", JsonValue::Num(self.server.cancelled as f64)),
                    ("commits", JsonValue::Num(self.server.commits as f64)),
                    ("bad_frames", JsonValue::Num(self.server.bad_frames as f64)),
                    (
                        "max_queue_depth",
                        JsonValue::Num(self.server.max_queue_depth as f64),
                    ),
                ]),
            ),
            ("clients", clients),
        ])
    }
}

/// Mutable run state shared by every client closure.
struct FleetState {
    clients: StreamMetrics,
    latency: DurationHistogram,
    issued: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    cancelled: u64,
    commits_ok: u64,
    reopened: u64,
    tx: u64,
    rx: u64,
    last_done: SimTime,
}

impl FleetState {
    fn new() -> Self {
        FleetState {
            clients: StreamMetrics::new(),
            latency: DurationHistogram::new(),
            issued: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            cancelled: 0,
            commits_ok: 0,
            reopened: 0,
            tx: 0,
            rx: 0,
            last_done: SimTime::ZERO,
        }
    }

    /// Accounts one data-request outcome; returns `true` when it was
    /// served `Ok`.
    fn settle(
        &mut self,
        stream: StreamId,
        is_read: bool,
        issued_at: SimTime,
        now: SimTime,
        d: &Delivered<Vec<u8>>,
    ) -> bool {
        self.last_done = self.last_done.max(now);
        match d {
            Ok(bytes) => {
                self.rx += bytes.len() as u64;
                let status = Response::decode(bytes)
                    .map(|(resp, _)| resp.status())
                    .unwrap_or(Status::BadRequest);
                match status {
                    Status::Ok => {
                        let lat = now - issued_at;
                        self.latency.record(lat);
                        self.clients.on_complete(stream, is_read, Some(lat));
                        self.served += 1;
                        true
                    }
                    Status::Rejected => {
                        self.rejected += 1;
                        self.clients.on_complete(stream, is_read, None);
                        false
                    }
                    Status::Shed => {
                        self.shed += 1;
                        self.clients.on_complete(stream, is_read, None);
                        false
                    }
                    _ => {
                        self.clients.on_complete(stream, is_read, None);
                        false
                    }
                }
            }
            Err(_) => {
                self.cancelled += 1;
                self.clients.on_cancelled(stream);
                false
            }
        }
    }
}

fn scale_ns(ns: u64, overload: f64) -> u64 {
    if overload == 1.0 {
        ns
    } else {
        (ns as f64 / overload) as u64
    }
}

/// The wire frame for one trace record, and whether it is a read.
fn frame_for(rec: &TraceRecord) -> (Vec<u8>, bool) {
    match rec.op {
        TraceOp::Read => (
            Request::Get {
                dev: rec.dev,
                lba: rec.lba,
                sectors: rec.sectors,
            }
            .encode(),
            true,
        ),
        TraceOp::Write => {
            let fill = (rec.stream.0 as u8) ^ (rec.lba as u8);
            (
                Request::Put {
                    dev: rec.dev,
                    lba: rec.lba,
                    data: vec![fill; rec.sectors as usize * SECTOR_SIZE],
                }
                .encode(),
                false,
            )
        }
    }
}

/// Per-session driver context shared by that session's closures.
struct ClientCtx {
    server: Server,
    handle: RefCell<Option<SessionHandle>>,
    state: Rc<RefCell<FleetState>>,
    /// Session stream (trace stream shifted by one so no session rides
    /// the untagged stream).
    stream: StreamId,
    served_puts: Cell<u64>,
    commit_every: u32,
}

impl ClientCtx {
    /// (Re)connects: opens a server session and accounts the handshake
    /// frames' bytes.
    fn open(&self) {
        let (handle, opened) = self.server.open(self.stream);
        let mut st = self.state.borrow_mut();
        st.tx += Request::Open {
            stream: self.stream.0,
        }
        .encode()
        .len() as u64;
        st.rx += opened.len() as u64;
        drop(st);
        *self.handle.borrow_mut() = Some(handle);
    }

    /// Counts a served put against the commit cadence; `true` when a
    /// `Commit` is due.
    fn commit_due(&self) -> bool {
        if self.commit_every == 0 {
            return false;
        }
        let n = self.served_puts.get() + 1;
        self.served_puts.set(n);
        n.is_multiple_of(u64::from(self.commit_every))
    }

    /// Sends a `Commit` frame with the given reply token.
    fn submit_commit(&self, sim: &mut Simulator, reply: trail_sim::Completion<Vec<u8>>) {
        let frame = Request::Commit.encode();
        self.state.borrow_mut().tx += frame.len() as u64;
        let handle = self.handle.borrow();
        if let Some(h) = handle.as_ref() {
            h.submit(sim, &frame, reply);
        }
    }

    /// Accounts a `Commit` response.
    fn account_commit(&self, now: SimTime, d: &Delivered<Vec<u8>>) {
        let mut st = self.state.borrow_mut();
        st.last_done = st.last_done.max(now);
        if let Ok(bytes) = d {
            st.rx += bytes.len() as u64;
            if Response::decode(bytes).is_ok_and(|(r, _)| r.status() == Status::Ok) {
                st.commits_ok += 1;
            }
        }
    }

    /// Fire-and-forget `Commit` (open loop).
    fn fire_commit(self: &Rc<Self>, sim: &mut Simulator) {
        let ctx = Rc::clone(self);
        let reply = sim.completion(move |sim, d: Delivered<Vec<u8>>| {
            ctx.account_commit(sim.now(), &d);
        });
        self.submit_commit(sim, reply);
    }
}

/// Drives `spec` against `server` until every client is done, and
/// returns what the fleet measured. The simulator is run to quiescence.
#[must_use]
pub fn run_fleet(sim: &mut Simulator, server: &Server, spec: &FleetSpec) -> FleetReport {
    let overload = spec.overload.clamp(0.05, 16.0);
    let cancelled_before = sim.completions().cancelled_count();
    let start = sim.now();
    let trace = generate(&SyntheticSpec {
        seed: spec.seed,
        requests: spec.requests,
        devices: server.devices() as u16,
        capacity_sectors: server.min_capacity(),
        read_fraction: spec.read_fraction,
        request_sectors: spec.payload_sectors,
        streams: spec.sessions.max(1),
        arrivals: ArrivalModel::Poisson {
            mean_iat: spec.mean_iat,
        },
        spatial: spec.spatial,
    });
    let mut by_stream: BTreeMap<StreamId, Vec<TraceRecord>> = BTreeMap::new();
    for rec in &trace.records {
        by_stream.entry(rec.stream).or_default().push(*rec);
    }
    let state = Rc::new(RefCell::new(FleetState::new()));
    let sessions = by_stream.len() as u32;
    for (trace_stream, records) in by_stream {
        let ctx = Rc::new(ClientCtx {
            server: server.clone(),
            handle: RefCell::new(None),
            state: Rc::clone(&state),
            stream: StreamId(trace_stream.0 + 1),
            served_puts: Cell::new(0),
            commit_every: spec.commit_every,
        });
        ctx.open();
        match spec.mode {
            FleetMode::OpenLoop => {
                schedule_open_loop(sim, start, overload, spec.churn, &ctx, records);
            }
            FleetMode::ClosedLoop => {
                schedule_closed_loop(sim, start, overload, ctx, records);
            }
        }
    }
    sim.run();
    let st = state.borrow();
    FleetReport {
        sessions,
        issued: st.issued,
        served: st.served,
        rejected: st.rejected,
        shed: st.shed,
        cancelled: st.cancelled,
        commits_ok: st.commits_ok,
        reopened: st.reopened,
        latency: st.latency.clone(),
        clients: st.clients.clone(),
        server: server.stats(),
        wire_tx: st.tx,
        wire_rx: st.rx,
        duration: st.last_done.max(start) - start,
        cancelled_completions: sim.completions().cancelled_count() - cancelled_before,
    }
}

/// Open loop: every record is scheduled at its (compressed) arrival
/// instant up front; with churn, the session is dropped and reopened at
/// the midpoint of its schedule.
fn schedule_open_loop(
    sim: &mut Simulator,
    start: SimTime,
    overload: f64,
    churn: bool,
    ctx: &Rc<ClientCtx>,
    records: Vec<TraceRecord>,
) {
    let mid = records.len() / 2;
    for (i, rec) in records.into_iter().enumerate() {
        let arrival = start + SimDuration::from_nanos(scale_ns(rec.at.as_nanos(), overload));
        let ctx = Rc::clone(ctx);
        sim.schedule_at(arrival, move |sim| {
            if churn && i == mid {
                // Abrupt disconnect: dropping the handle cancels this
                // session's queued and in-flight requests through the
                // completion cascade; then reconnect under the same
                // stream identity.
                ctx.handle.borrow_mut().take();
                ctx.open();
                ctx.state.borrow_mut().reopened += 1;
            }
            issue_open(sim, &ctx, &rec);
        });
    }
}

/// Closed loop: think for the generated gap, issue, wait for the
/// answer, repeat; ends with a graceful `Close` handshake.
fn schedule_closed_loop(
    sim: &mut Simulator,
    start: SimTime,
    overload: f64,
    ctx: Rc<ClientCtx>,
    records: Vec<TraceRecord>,
) {
    let mut thinks = Vec::with_capacity(records.len());
    let mut prev = SimTime::ZERO;
    for rec in &records {
        thinks.push(SimDuration::from_nanos(scale_ns(
            (rec.at - prev).as_nanos(),
            overload,
        )));
        prev = rec.at;
    }
    let chain = Rc::new(ChainCtx {
        ctx,
        records,
        thinks,
    });
    let first = chain.thinks.first().copied().unwrap_or(SimDuration::ZERO);
    let chain2 = Rc::clone(&chain);
    sim.schedule_at(start + first, move |sim| issue_chained(sim, chain2, 0));
}

struct ChainCtx {
    ctx: Rc<ClientCtx>,
    records: Vec<TraceRecord>,
    thinks: Vec<SimDuration>,
}

fn issue_chained(sim: &mut Simulator, chain: Rc<ChainCtx>, idx: usize) {
    if idx >= chain.records.len() {
        // Done: graceful close handshake, then drop the handle.
        let frame = Request::Close.encode();
        let ctx = Rc::clone(&chain.ctx);
        ctx.state.borrow_mut().tx += frame.len() as u64;
        let reply = sim.completion(move |sim, d: Delivered<Vec<u8>>| {
            let mut st = ctx.state.borrow_mut();
            st.last_done = st.last_done.max(sim.now());
            if let Ok(bytes) = &d {
                st.rx += bytes.len() as u64;
            }
            drop(st);
            ctx.handle.borrow_mut().take();
        });
        let handle = chain.ctx.handle.borrow();
        if let Some(h) = handle.as_ref() {
            h.submit(sim, &frame, reply);
        }
        return;
    }
    let rec = chain.records[idx];
    let (frame, is_read) = frame_for(&rec);
    {
        let mut st = chain.ctx.state.borrow_mut();
        st.issued += 1;
        st.tx += frame.len() as u64;
        st.clients.on_issue(chain.ctx.stream, is_read);
    }
    let issued_at = sim.now();
    let chain2 = Rc::clone(&chain);
    let reply = sim.completion(move |sim, d: Delivered<Vec<u8>>| {
        let served = chain2.ctx.state.borrow_mut().settle(
            chain2.ctx.stream,
            is_read,
            issued_at,
            sim.now(),
            &d,
        );
        if served && !is_read && chain2.ctx.commit_due() {
            // Commit at cadence, and only think once it answers — a
            // closed-loop client's commit is synchronous.
            let chain3 = Rc::clone(&chain2);
            let reply = sim.completion(move |sim, d: Delivered<Vec<u8>>| {
                chain3.ctx.account_commit(sim.now(), &d);
                schedule_next(sim, chain3, idx);
            });
            chain2.ctx.submit_commit(sim, reply);
        } else {
            schedule_next(sim, chain2, idx);
        }
    });
    let handle = chain.ctx.handle.borrow();
    if let Some(h) = handle.as_ref() {
        h.submit(sim, &frame, reply);
    }
}

/// Thinks for the generated gap, then issues request `idx + 1`.
fn schedule_next(sim: &mut Simulator, chain: Rc<ChainCtx>, idx: usize) {
    let think = chain
        .thinks
        .get(idx + 1)
        .copied()
        .unwrap_or(SimDuration::ZERO);
    let next = Rc::clone(&chain);
    sim.schedule_in(think, move |sim| issue_chained(sim, next, idx + 1));
}

/// Issues one open-loop data request: fire, account the answer, and
/// fire a cadence `Commit` when due.
fn issue_open(sim: &mut Simulator, ctx: &Rc<ClientCtx>, rec: &TraceRecord) {
    let (frame, is_read) = frame_for(rec);
    {
        let mut st = ctx.state.borrow_mut();
        st.issued += 1;
        st.tx += frame.len() as u64;
        st.clients.on_issue(ctx.stream, is_read);
    }
    let issued_at = sim.now();
    let ctx2 = Rc::clone(ctx);
    let stream = ctx.stream;
    let reply = sim.completion(move |sim, d: Delivered<Vec<u8>>| {
        let served = ctx2
            .state
            .borrow_mut()
            .settle(stream, is_read, issued_at, sim.now(), &d);
        if served && !is_read && ctx2.commit_due() {
            ctx2.fire_commit(sim);
        }
    });
    let handle = ctx.handle.borrow();
    if let Some(h) = handle.as_ref() {
        h.submit(sim, &frame, reply);
    }
    // A `None` handle (between drop and reopen) simply drops the reply
    // token: the cascade parks the cancellation and the client counts it.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{AdmissionPolicy, ServerConfig};
    use trail_db::{SharedStack, StandardStack, StorageService};
    use trail_disk::{profiles, Disk};

    fn fleet_server(config: ServerConfig) -> (Simulator, Server) {
        let sim = Simulator::new();
        let disks = vec![
            Disk::new("d0", profiles::tiny_test_disk()),
            Disk::new("d1", profiles::tiny_test_disk()),
        ];
        let capacity = disks.iter().map(|d| d.geometry().total_sectors()).collect();
        let stack: SharedStack = Rc::new(StandardStack::new(disks));
        let service = StorageService::new(stack, capacity);
        (sim, Server::new(service, config))
    }

    #[test]
    fn open_loop_serves_every_request_at_nominal_load() {
        let (mut sim, srv) = fleet_server(ServerConfig::default());
        let spec = FleetSpec {
            sessions: 4,
            requests: 64,
            ..FleetSpec::default()
        };
        let report = run_fleet(&mut sim, &srv, &spec);
        assert_eq!(report.sessions, 4);
        assert_eq!(report.issued, 64);
        assert_eq!(report.served, 64);
        assert_eq!(report.rejected + report.shed + report.cancelled, 0);
        assert_eq!(report.latency.count(), 64);
        assert_eq!(report.clients.streams(), 4);
        assert!(report.wire_tx > 0 && report.wire_rx > 0);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn closed_loop_closes_gracefully_and_commits() {
        let (mut sim, srv) = fleet_server(ServerConfig::default());
        let spec = FleetSpec {
            sessions: 3,
            requests: 48,
            mode: FleetMode::ClosedLoop,
            commit_every: 4,
            read_fraction: 0.0,
            ..FleetSpec::default()
        };
        let report = run_fleet(&mut sim, &srv, &spec);
        assert_eq!(report.served, 48);
        assert!(report.commits_ok > 0);
        let stats = srv.stats();
        // Every session opened once and closed via the Close handshake.
        assert_eq!(stats.opened, 3);
        assert_eq!(stats.closed, 3);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn churn_cancels_in_flight_and_reopens() {
        let (mut sim, srv) = fleet_server(ServerConfig {
            worker_slots: 1,
            admission: AdmissionPolicy::Unbounded,
        });
        let spec = FleetSpec {
            sessions: 2,
            requests: 64,
            overload: 8.0,
            churn: true,
            read_fraction: 0.0,
            commit_every: 0,
            ..FleetSpec::default()
        };
        let report = run_fleet(&mut sim, &srv, &spec);
        assert_eq!(report.reopened, 2);
        assert!(report.cancelled > 0, "churn cancels queued requests");
        assert_eq!(report.cancelled_completions, srv.stats().cancelled);
        assert!(report.served + report.cancelled <= report.issued);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn bounded_admission_rejects_under_overload() {
        let (mut sim, srv) = fleet_server(ServerConfig {
            worker_slots: 2,
            admission: AdmissionPolicy::BoundedQueue { max_queue: 4 },
        });
        let spec = FleetSpec {
            sessions: 8,
            requests: 256,
            overload: 8.0,
            mean_iat: SimDuration::from_millis(5),
            ..FleetSpec::default()
        };
        let report = run_fleet(&mut sim, &srv, &spec);
        assert!(
            report.rejected > 0,
            "8x overload must overflow a queue of 4"
        );
        assert_eq!(report.served + report.rejected + report.shed, report.issued);
        assert!(report.server.max_queue_depth <= 4);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn reports_serialize_deterministically() {
        let run = || {
            let (mut sim, srv) = fleet_server(ServerConfig::default());
            let spec = FleetSpec {
                sessions: 3,
                requests: 30,
                ..FleetSpec::default()
            };
            run_fleet(&mut sim, &srv, &spec)
                .to_json_with_clients(2)
                .to_json()
        };
        assert_eq!(run(), run());
    }
}
