//! Session teardown end-to-end: dropping a [`SessionHandle`] mid-flight
//! cancels the session's outstanding requests through the `Completion`
//! cancel-cascade, with no leaked pending events.
//!
//! The contract under test, layer by layer:
//!
//! - every reply token the client armed settles exactly once — `Ok`
//!   for requests answered before the drop, `Err(Cancelled)` after;
//! - the completion sink's `cancelled_count` (the telemetry surface
//!   added for exactly this) grows by the number of torn-down requests;
//! - the simulator drains to quiescence: `events_pending()` returns to
//!   zero and no orphaned completion state is left behind, even though
//!   the disk I/O the session started keeps running under an aborted
//!   session.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use trail::StackBuilder;
use trail_db::StorageService;
use trail_serve::{Request, Server, ServerConfig, SessionHandle};
use trail_sim::{Delivered, Simulator};
use trail_telemetry::{StreamId, StreamMetrics};

/// A Trail-backed server plus its simulator.
fn trail_server() -> (Simulator, Server) {
    let built = StackBuilder::new()
        .data_disks(2)
        .trail_default()
        .build()
        .expect("stack builds");
    let capacity = built
        .data_disks
        .iter()
        .map(|d| d.geometry().total_sectors())
        .collect();
    let service = StorageService::new(Rc::clone(&built.stack), capacity);
    (built.sim, Server::new(service, ServerConfig::default()))
}

/// Settled outcomes for a batch of replies, shared with the closures.
#[derive(Default)]
struct Outcomes {
    ok: Cell<u32>,
    cancelled: Cell<u32>,
}

fn submit_puts(
    sim: &mut Simulator,
    session: &SessionHandle,
    outcomes: &Rc<Outcomes>,
    metrics: &Rc<RefCell<StreamMetrics>>,
    count: u32,
) {
    for i in 0..count {
        let frame = Request::Put {
            dev: (i % 2) as u16,
            lba: u64::from(i) * 8,
            data: vec![i as u8; 1024],
        }
        .encode();
        let out = Rc::clone(outcomes);
        let m = Rc::clone(metrics);
        let stream = session.stream();
        m.borrow_mut().on_issue(stream, false);
        let reply = sim.completion(move |_, d: Delivered<Vec<u8>>| match d {
            Ok(_) => {
                out.ok.set(out.ok.get() + 1);
                m.borrow_mut().on_complete(stream, false, None);
            }
            Err(_) => {
                out.cancelled.set(out.cancelled.get() + 1);
                m.borrow_mut().on_cancelled(stream);
            }
        });
        session.submit(sim, &frame, reply);
    }
}

#[test]
fn dropping_a_session_mid_flight_cancels_outstanding_requests() {
    let (mut sim, server) = trail_server();
    let baseline_pending = sim.events_pending();
    let cancelled_before = sim.completions().cancelled_count();

    let (session, _) = server.open(StreamId(7));
    let outcomes = Rc::new(Outcomes::default());
    let metrics = Rc::new(RefCell::new(StreamMetrics::new()));
    submit_puts(&mut sim, &session, &outcomes, &metrics, 16);

    // Let a little of the work land, then yank the connection.
    for _ in 0..40 {
        if !sim.step() {
            break;
        }
    }
    let settled_early = outcomes.ok.get();
    drop(session);
    sim.run();

    // Every reply settled exactly once.
    assert_eq!(outcomes.ok.get() + outcomes.cancelled.get(), 16);
    assert!(
        outcomes.cancelled.get() > 0,
        "the drop must cancel something still in flight \
         ({settled_early} served before the drop)"
    );

    // The cascade was visible at the sink: at least one cancellation per
    // torn-down reply (the server's own tracking tokens add more).
    let cascade = sim.completions().cancelled_count() - cancelled_before;
    assert!(
        cascade >= u64::from(outcomes.cancelled.get()),
        "sink saw {cascade} cancellations for {} cancelled replies",
        outcomes.cancelled.get()
    );

    // Server accounting matches the client's view.
    let stats = server.stats();
    assert_eq!(stats.opened, 1);
    assert_eq!(stats.closed, 1);
    assert_eq!(u64::from(outcomes.cancelled.get()), stats.cancelled);
    assert_eq!(u64::from(outcomes.ok.get()), stats.completed);

    // No leaked pending events and no half-finished server state.
    assert_eq!(sim.events_pending(), baseline_pending);
    assert_eq!(sim.completions().orphan_count(), 0);
    assert_eq!(server.queue_depth(), 0);
    assert_eq!(server.in_service(), 0);

    // Per-stream telemetry separates teardown from refusals.
    let m = metrics.borrow();
    let lane = m.lane(StreamId(7)).expect("lane exists");
    assert_eq!(lane.cancelled, u64::from(outcomes.cancelled.get()));
    assert_eq!(lane.inflight, 0);
}

#[test]
fn immediate_drop_cancels_everything_without_running() {
    let (mut sim, server) = trail_server();
    let (session, _) = server.open(StreamId(1));
    let outcomes = Rc::new(Outcomes::default());
    let metrics = Rc::new(RefCell::new(StreamMetrics::new()));
    submit_puts(&mut sim, &session, &outcomes, &metrics, 8);
    // Drop before the simulator ever steps: nothing was served, so the
    // whole batch dies with the connection (modulo requests already
    // dispatched into worker slots, which surface as cancelled too).
    drop(session);
    sim.run();
    assert_eq!(outcomes.ok.get(), 0);
    assert_eq!(outcomes.cancelled.get(), 8);
    assert_eq!(sim.events_pending(), 0);
    assert_eq!(sim.completions().orphan_count(), 0);
}

#[test]
fn other_sessions_are_untouched_by_a_teardown() {
    let (mut sim, server) = trail_server();
    let (doomed, _) = server.open(StreamId(1));
    let (survivor, _) = server.open(StreamId(2));
    let doomed_out = Rc::new(Outcomes::default());
    let survivor_out = Rc::new(Outcomes::default());
    let metrics = Rc::new(RefCell::new(StreamMetrics::new()));
    submit_puts(&mut sim, &doomed, &doomed_out, &metrics, 6);
    submit_puts(&mut sim, &survivor, &survivor_out, &metrics, 6);
    drop(doomed);
    sim.run();
    assert_eq!(survivor_out.ok.get(), 6, "survivor's requests all serve");
    assert_eq!(survivor_out.cancelled.get(), 0);
    assert_eq!(doomed_out.ok.get() + doomed_out.cancelled.get(), 6);
    assert!(doomed_out.cancelled.get() > 0);
    assert_eq!(sim.events_pending(), 0);
}
