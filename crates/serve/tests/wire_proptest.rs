//! Property tests for the serving wire protocol.
//!
//! The codec's contract, exercised over arbitrary frames:
//!
//! - **Round trip**: `encode → decode` returns the original frame and
//!   consumes exactly the encoded bytes; re-encoding is byte-identical.
//! - **Truncation**: every strict prefix of a valid frame decodes to a
//!   structured [`WireError`] — never a panic, never a bogus frame.
//! - **Corruption**: flipping any byte never panics; when the flipped
//!   buffer still decodes, the decoded frame re-encodes to exactly the
//!   bytes consumed (the codec has one canonical encoding, so it cannot
//!   "repair" corrupt input into something it would not itself emit).
//! - **Garbage**: arbitrary byte soup decodes to a structured error or
//!   a canonically re-encodable frame, and every error formats.

use proptest::prelude::*;

use trail_serve::wire::HEADER_LEN;
use trail_serve::{Request, Response, Status, WireError};

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        any::<u32>().prop_map(|stream| Request::Open { stream }),
        (any::<u16>(), any::<u64>(), 1u32..1024).prop_map(|(dev, lba, sectors)| Request::Get {
            dev,
            lba,
            sectors
        }),
        (
            any::<u16>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(dev, lba, data)| Request::Put { dev, lba, data }),
        Just(Request::Commit),
        Just(Request::Close),
    ]
    .boxed()
}

fn arb_status() -> BoxedStrategy<Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::Rejected),
        Just(Status::Shed),
        Just(Status::Cancelled),
        Just(Status::BadRequest),
        Just(Status::NotOpen),
    ]
    .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        any::<u64>().prop_map(|session| Response::Opened { session }),
        (
            arb_status(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(status, payload)| Response::Data { status, payload }),
        arb_status().prop_map(|status| Response::Done { status }),
        (any::<u64>(), any::<u64>()).prop_map(|(completed, cancelled)| Response::Closed {
            completed,
            cancelled
        }),
    ]
    .boxed()
}

/// Decoding `bytes` as both frame kinds must never panic; any success
/// must re-encode to exactly the bytes consumed.
fn assert_decode_is_total_and_canonical(bytes: &[u8]) -> Result<(), TestCaseError> {
    match Request::decode(bytes) {
        Ok((req, consumed)) => {
            prop_assert!(consumed <= bytes.len());
            prop_assert_eq!(req.encode(), &bytes[..consumed]);
        }
        Err(e) => prop_assert!(!e.to_string().is_empty(), "error must format"),
    }
    match Response::decode(bytes) {
        Ok((resp, consumed)) => {
            prop_assert!(consumed <= bytes.len());
            prop_assert_eq!(resp.encode(), &bytes[..consumed]);
        }
        Err(e) => prop_assert!(!e.to_string().is_empty(), "error must format"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_byte_identically(req in arb_request()) {
        let bytes = req.encode();
        let (back, consumed) = Request::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn responses_round_trip_byte_identically(resp in arb_response()) {
        let bytes = resp.encode();
        let (back, consumed) = Response::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncated_requests_error_structurally(req in arb_request(), frac in 0.0f64..1.0) {
        let bytes = req.encode();
        // Every header-region prefix, plus an arbitrary body cut.
        let mut cuts: Vec<usize> = (0..bytes.len().min(HEADER_LEN)).collect();
        cuts.push((bytes.len() - 1).min((bytes.len() as f64 * frac) as usize));
        for cut in cuts {
            let err = Request::decode(&bytes[..cut]).expect_err("prefix cannot decode");
            prop_assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {} gave {:?}", cut, err
            );
        }
    }

    #[test]
    fn truncated_responses_error_structurally(resp in arb_response(), frac in 0.0f64..1.0) {
        let bytes = resp.encode();
        let mut cuts: Vec<usize> = (0..bytes.len().min(HEADER_LEN)).collect();
        cuts.push((bytes.len() - 1).min((bytes.len() as f64 * frac) as usize));
        for cut in cuts {
            let err = Response::decode(&bytes[..cut]).expect_err("prefix cannot decode");
            prop_assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {} gave {:?}", cut, err
            );
        }
    }

    #[test]
    fn corrupted_frames_never_panic(
        req in arb_request(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = req.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        assert_decode_is_total_and_canonical(&bytes)?;
    }

    #[test]
    fn corrupted_responses_never_panic(
        resp in arb_response(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = resp.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        assert_decode_is_total_and_canonical(&bytes)?;
    }

    #[test]
    fn garbage_decodes_to_structured_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        assert_decode_is_total_and_canonical(&bytes)?;
    }

    #[test]
    fn cross_kind_decoding_is_rejected(req in arb_request(), resp in arb_response()) {
        // A response frame fed to the request decoder (and vice versa)
        // must fail with UnknownTag, not misparse.
        let rbytes = resp.encode();
        prop_assert!(matches!(
            Request::decode(&rbytes),
            Err(WireError::UnknownTag { .. })
        ));
        let qbytes = req.encode();
        prop_assert!(matches!(
            Response::decode(&qbytes),
            Err(WireError::UnknownTag { .. })
        ));
    }

    #[test]
    fn status_codes_are_total(code in any::<u8>()) {
        match Status::from_code(code) {
            Ok(status) => prop_assert_eq!(status.code(), code),
            Err(e) => prop_assert!(matches!(e, WireError::BadStatus { code: c } if c == code)),
        }
    }
}
