//! Physical disk geometry: zones, address translation, and angular layout.
//!
//! The Trail driver's head-position prediction (paper §3.1) consumes exactly
//! three geometric quantities: the number of sectors in the current track
//! (*SPT*), the rotation cycle time, and the logical-to-physical address
//! mapping. This module models a zoned multi-surface disk:
//!
//! - cylinders are grouped into **zones**; every track in a zone has the
//!   same number of sectors (outer zones hold more sectors);
//! - LBAs are assigned cylinder-major: all sectors of cylinder 0 (head 0,
//!   then head 1, …), then cylinder 1, …;
//! - consecutive tracks are rotationally offset by a **track skew** (plus a
//!   **cylinder skew** at cylinder boundaries) so that sequential transfers
//!   survive a head switch without losing a revolution.

use std::fmt;

/// Size of one disk sector in bytes. All devices in the reproduction use
/// 512-byte sectors, matching the paper's drives.
pub const SECTOR_SIZE: usize = 512;

/// A logical block address: the index of a 512-byte sector on one disk.
pub type Lba = u64;

/// A physical (cylinder, head, sector) address.
///
/// # Examples
///
/// ```
/// use trail_disk::Chs;
///
/// let a = Chs { cylinder: 3, head: 1, sector: 40 };
/// assert_eq!(a.to_string(), "(cyl 3, head 1, sec 40)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Chs {
    /// Cylinder number, `0..cylinders()`.
    pub cylinder: u32,
    /// Surface number within the cylinder, `0..heads`.
    pub head: u32,
    /// Sector number within the track, `0..spt(cylinder)`.
    pub sector: u32,
}

impl fmt::Display for Chs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(cyl {}, head {}, sec {})",
            self.cylinder, self.head, self.sector
        )
    }
}

/// A recording zone: a run of cylinders sharing one sectors-per-track value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Zone {
    /// Number of consecutive cylinders in this zone.
    pub cylinders: u32,
    /// Sectors per track throughout the zone.
    pub spt: u32,
}

/// Immutable description of a disk's physical layout.
///
/// # Examples
///
/// ```
/// use trail_disk::{DiskGeometry, Zone};
///
/// let g = DiskGeometry::new(
///     2,
///     vec![Zone { cylinders: 10, spt: 100 }, Zone { cylinders: 10, spt: 80 }],
///     10,
///     5,
/// );
/// assert_eq!(g.total_tracks(), 40);
/// assert_eq!(g.total_sectors(), 2 * (10 * 100 + 10 * 80) as u64);
/// let chs = g.lba_to_chs(105).unwrap();
/// assert_eq!(g.chs_to_lba(chs).unwrap(), 105);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiskGeometry {
    heads: u32,
    zones: Vec<Zone>,
    track_skew: u32,
    cyl_skew: u32,
    /// First cylinder of each zone (same length as `zones`).
    zone_start_cyl: Vec<u32>,
    /// First LBA of each zone (same length as `zones`).
    zone_start_lba: Vec<u64>,
    total_cylinders: u32,
    total_sectors: u64,
}

impl DiskGeometry {
    /// Builds a geometry from surface count, zone table and skews.
    ///
    /// `track_skew` and `cyl_skew` are expressed in sectors (of the local
    /// zone). The cylinder skew is applied *in addition to* the track skew
    /// when crossing a cylinder boundary.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is zero, `zones` is empty, or any zone has zero
    /// cylinders or zero sectors per track.
    pub fn new(heads: u32, zones: Vec<Zone>, track_skew: u32, cyl_skew: u32) -> Self {
        assert!(heads > 0, "disk must have at least one head");
        assert!(!zones.is_empty(), "disk must have at least one zone");
        let mut zone_start_cyl = Vec::with_capacity(zones.len());
        let mut zone_start_lba = Vec::with_capacity(zones.len());
        let mut cyl = 0u32;
        let mut lba = 0u64;
        for z in &zones {
            assert!(z.cylinders > 0, "zone must span at least one cylinder");
            assert!(z.spt > 0, "zone must have at least one sector per track");
            zone_start_cyl.push(cyl);
            zone_start_lba.push(lba);
            cyl += z.cylinders;
            lba += u64::from(z.cylinders) * u64::from(heads) * u64::from(z.spt);
        }
        DiskGeometry {
            heads,
            zones,
            track_skew,
            cyl_skew,
            zone_start_cyl,
            zone_start_lba,
            total_cylinders: cyl,
            total_sectors: lba,
        }
    }

    /// Number of surfaces (tracks per cylinder).
    pub fn heads(&self) -> u32 {
        self.heads
    }

    /// The zone table.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Rotational offset between consecutive tracks, in sectors.
    pub fn track_skew(&self) -> u32 {
        self.track_skew
    }

    /// Additional rotational offset at cylinder boundaries, in sectors.
    pub fn cyl_skew(&self) -> u32 {
        self.cyl_skew
    }

    /// Total number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.total_cylinders
    }

    /// Total number of tracks (cylinders × heads).
    pub fn total_tracks(&self) -> u64 {
        u64::from(self.total_cylinders) * u64::from(self.heads)
    }

    /// Total number of sectors (the disk capacity in sectors).
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Disk capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors * SECTOR_SIZE as u64
    }

    /// Index of the zone containing `cylinder`.
    ///
    /// # Panics
    ///
    /// Panics if `cylinder` is out of range.
    pub fn zone_of_cylinder(&self, cylinder: u32) -> usize {
        assert!(
            cylinder < self.total_cylinders,
            "cylinder {cylinder} out of range (disk has {})",
            self.total_cylinders
        );
        match self.zone_start_cyl.binary_search(&cylinder) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Sectors per track for tracks in `cylinder`.
    ///
    /// # Panics
    ///
    /// Panics if `cylinder` is out of range.
    pub fn spt_of_cylinder(&self, cylinder: u32) -> u32 {
        self.zones[self.zone_of_cylinder(cylinder)].spt
    }

    /// Sectors per track for the track containing `lba`.
    ///
    /// Returns `None` if `lba` is out of range.
    pub fn spt_of_lba(&self, lba: Lba) -> Option<u32> {
        let chs = self.lba_to_chs(lba)?;
        Some(self.spt_of_cylinder(chs.cylinder))
    }

    /// The global track index of a physical address: `cylinder × heads +
    /// head`. Track indexes order tracks in LBA order.
    pub fn track_index(&self, chs: Chs) -> u64 {
        u64::from(chs.cylinder) * u64::from(self.heads) + u64::from(chs.head)
    }

    /// The (cylinder, head) pair for a global track index.
    ///
    /// # Panics
    ///
    /// Panics if `track` is out of range.
    pub fn track_to_cyl_head(&self, track: u64) -> (u32, u32) {
        assert!(
            track < self.total_tracks(),
            "track {track} out of range (disk has {})",
            self.total_tracks()
        );
        (
            (track / u64::from(self.heads)) as u32,
            (track % u64::from(self.heads)) as u32,
        )
    }

    /// The track index containing `lba`, or `None` if out of range.
    pub fn track_of_lba(&self, lba: Lba) -> Option<u64> {
        Some(self.track_index(self.lba_to_chs(lba)?))
    }

    /// The first LBA of a track.
    ///
    /// # Panics
    ///
    /// Panics if `track` is out of range.
    pub fn track_first_lba(&self, track: u64) -> Lba {
        let (cyl, head) = self.track_to_cyl_head(track);
        let z = self.zone_of_cylinder(cyl);
        let zone = &self.zones[z];
        let cyl_in_zone = u64::from(cyl - self.zone_start_cyl[z]);
        self.zone_start_lba[z]
            + (cyl_in_zone * u64::from(self.heads) + u64::from(head)) * u64::from(zone.spt)
    }

    /// Sectors per track of a track index.
    ///
    /// # Panics
    ///
    /// Panics if `track` is out of range.
    pub fn spt_of_track(&self, track: u64) -> u32 {
        let (cyl, _) = self.track_to_cyl_head(track);
        self.spt_of_cylinder(cyl)
    }

    /// Translates an LBA to its physical address, or `None` if out of range.
    pub fn lba_to_chs(&self, lba: Lba) -> Option<Chs> {
        if lba >= self.total_sectors {
            return None;
        }
        let z = match self.zone_start_lba.binary_search(&lba) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let zone = &self.zones[z];
        let rel = lba - self.zone_start_lba[z];
        let per_cyl = u64::from(self.heads) * u64::from(zone.spt);
        let cylinder = self.zone_start_cyl[z] + (rel / per_cyl) as u32;
        let in_cyl = rel % per_cyl;
        let head = (in_cyl / u64::from(zone.spt)) as u32;
        let sector = (in_cyl % u64::from(zone.spt)) as u32;
        Some(Chs {
            cylinder,
            head,
            sector,
        })
    }

    /// Translates a physical address to its LBA, or `None` if out of range.
    pub fn chs_to_lba(&self, chs: Chs) -> Option<Lba> {
        if chs.cylinder >= self.total_cylinders || chs.head >= self.heads {
            return None;
        }
        let z = self.zone_of_cylinder(chs.cylinder);
        let zone = &self.zones[z];
        if chs.sector >= zone.spt {
            return None;
        }
        let cyl_in_zone = u64::from(chs.cylinder - self.zone_start_cyl[z]);
        Some(
            self.zone_start_lba[z]
                + (cyl_in_zone * u64::from(self.heads) + u64::from(chs.head)) * u64::from(zone.spt)
                + u64::from(chs.sector),
        )
    }

    /// The skew offset (in sectors) of a track: how far logical sector 0 of
    /// the track is rotated from the disk's angular origin.
    ///
    /// Skew accumulates `track_skew` per track and an extra `cyl_skew` per
    /// cylinder boundary, all modulo the local sectors-per-track.
    pub fn skew_offset(&self, track: u64) -> u32 {
        let (cyl, _) = self.track_to_cyl_head(track);
        let spt = u64::from(self.spt_of_cylinder(cyl));
        ((track * u64::from(self.track_skew) + u64::from(cyl) * u64::from(self.cyl_skew)) % spt)
            as u32
    }

    /// The angular position (fraction of a revolution, `0.0..1.0`) at which
    /// logical `sector` of `track` *begins*.
    ///
    /// # Panics
    ///
    /// Panics if `track` is out of range or `sector >= spt`.
    pub fn sector_angle(&self, track: u64, sector: u32) -> f64 {
        let spt = self.spt_of_track(track);
        assert!(sector < spt, "sector {sector} out of range (spt {spt})");
        let rotated = (sector + self.skew_offset(track)) % spt;
        f64::from(rotated) / f64::from(spt)
    }

    /// The logical sector of `track` whose angular span contains angle
    /// `frac` (fraction of a revolution in `0.0..1.0`).
    pub fn sector_at_angle(&self, track: u64, frac: f64) -> u32 {
        let spt = self.spt_of_track(track);
        debug_assert!((0.0..1.0).contains(&frac) || frac == 0.0);
        let physical = (frac * f64::from(spt)).floor() as u32 % spt;
        // Invert the skew rotation: logical = physical - skew (mod spt).
        (physical + spt - self.skew_offset(track) % spt) % spt
    }

    /// The logical sector of `track` whose *start* is the next to pass
    /// under the head at or after angle `frac` (fraction of a revolution).
    ///
    /// Angles within one part in 10⁶ of a sector boundary count as that
    /// boundary, absorbing floating-point dust from time arithmetic.
    pub fn next_sector_from_angle(&self, track: u64, frac: f64) -> u32 {
        let spt = self.spt_of_track(track);
        let frac = frac.rem_euclid(1.0);
        let physical = frac * f64::from(spt);
        let k = (physical - 1e-6).ceil().max(0.0) as u32 % spt;
        (k + spt - self.skew_offset(track) % spt) % spt
    }

    /// Iterates over the maximal single-track runs covering `count` sectors
    /// starting at `lba`: each item is `(track, first_sector, run_len)`.
    ///
    /// Returns `None` if the range exceeds the disk capacity.
    pub fn track_runs(&self, lba: Lba, count: u32) -> Option<Vec<TrackRun>> {
        if count == 0 || lba + u64::from(count) > self.total_sectors {
            return None;
        }
        let mut runs = Vec::new();
        let mut cur = lba;
        let mut left = count;
        while left > 0 {
            let chs = self.lba_to_chs(cur).expect("range checked above");
            let spt = self.spt_of_cylinder(chs.cylinder);
            let in_track = spt - chs.sector;
            let take = in_track.min(left);
            runs.push(TrackRun {
                track: self.track_index(chs),
                first_sector: chs.sector,
                len: take,
            });
            cur += u64::from(take);
            left -= take;
        }
        Some(runs)
    }
}

/// A run of consecutive sectors on a single track (see
/// [`DiskGeometry::track_runs`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrackRun {
    /// Global track index.
    pub track: u64,
    /// First sector of the run within the track.
    pub first_sector: u32,
    /// Number of sectors in the run.
    pub len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DiskGeometry {
        DiskGeometry::new(
            2,
            vec![
                Zone {
                    cylinders: 4,
                    spt: 10,
                },
                Zone {
                    cylinders: 4,
                    spt: 8,
                },
            ],
            3,
            2,
        )
    }

    #[test]
    fn totals() {
        let g = small();
        assert_eq!(g.cylinders(), 8);
        assert_eq!(g.total_tracks(), 16);
        assert_eq!(g.total_sectors(), (4 * 2 * 10 + 4 * 2 * 8) as u64);
        assert_eq!(g.capacity_bytes(), g.total_sectors() * 512);
    }

    #[test]
    fn zone_lookup() {
        let g = small();
        assert_eq!(g.zone_of_cylinder(0), 0);
        assert_eq!(g.zone_of_cylinder(3), 0);
        assert_eq!(g.zone_of_cylinder(4), 1);
        assert_eq!(g.zone_of_cylinder(7), 1);
        assert_eq!(g.spt_of_cylinder(0), 10);
        assert_eq!(g.spt_of_cylinder(7), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zone_lookup_out_of_range_panics() {
        small().zone_of_cylinder(8);
    }

    #[test]
    fn lba_chs_round_trip_exhaustive() {
        let g = small();
        for lba in 0..g.total_sectors() {
            let chs = g.lba_to_chs(lba).expect("lba in range");
            assert_eq!(g.chs_to_lba(chs), Some(lba), "round trip at {lba}");
        }
        assert_eq!(g.lba_to_chs(g.total_sectors()), None);
    }

    #[test]
    fn chs_to_lba_rejects_bad_addresses() {
        let g = small();
        assert_eq!(
            g.chs_to_lba(Chs {
                cylinder: 8,
                head: 0,
                sector: 0
            }),
            None
        );
        assert_eq!(
            g.chs_to_lba(Chs {
                cylinder: 0,
                head: 2,
                sector: 0
            }),
            None
        );
        assert_eq!(
            g.chs_to_lba(Chs {
                cylinder: 0,
                head: 0,
                sector: 10
            }),
            None
        );
        // Sector 9 valid in zone 0 (spt 10) but not zone 1 (spt 8).
        assert!(g
            .chs_to_lba(Chs {
                cylinder: 4,
                head: 0,
                sector: 9
            })
            .is_none());
    }

    #[test]
    fn lba_order_is_cylinder_major() {
        let g = small();
        // LBA 0..10 = cyl 0 head 0; 10..20 = cyl 0 head 1; 20.. = cyl 1.
        assert_eq!(
            g.lba_to_chs(0).unwrap(),
            Chs {
                cylinder: 0,
                head: 0,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(10).unwrap(),
            Chs {
                cylinder: 0,
                head: 1,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(20).unwrap(),
            Chs {
                cylinder: 1,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn track_indexing() {
        let g = small();
        let chs = Chs {
            cylinder: 2,
            head: 1,
            sector: 5,
        };
        let t = g.track_index(chs);
        assert_eq!(t, 5);
        assert_eq!(g.track_to_cyl_head(t), (2, 1));
        assert_eq!(
            g.track_first_lba(t),
            g.chs_to_lba(Chs { sector: 0, ..chs }).unwrap()
        );
        assert_eq!(g.spt_of_track(t), 10);
        assert_eq!(g.spt_of_track(15), 8);
    }

    #[test]
    fn skew_accumulates() {
        let g = small();
        assert_eq!(g.skew_offset(0), 0);
        assert_eq!(g.skew_offset(1), 3);
        // Track 2 = cylinder 1: 2 tracks of skew + 1 cylinder skew = 8 mod 10.
        assert_eq!(g.skew_offset(2), 8);
    }

    #[test]
    fn sector_angle_and_inverse_agree() {
        let g = small();
        for track in 0..g.total_tracks() {
            let spt = g.spt_of_track(track);
            for s in 0..spt {
                let a = g.sector_angle(track, s);
                assert!((0.0..1.0).contains(&a));
                // Probe just inside the sector's angular span.
                assert_eq!(
                    g.sector_at_angle(track, a + 1e-9),
                    s,
                    "track {track} sector {s}"
                );
            }
        }
    }

    #[test]
    fn next_sector_from_angle_is_forward_rounding() {
        let g = small();
        for track in 0..4 {
            let spt = g.spt_of_track(track);
            for s in 0..spt {
                let start = g.sector_angle(track, s);
                // Exactly at the boundary: that sector itself.
                assert_eq!(g.next_sector_from_angle(track, start), s);
                // Just past the boundary: the following sector.
                assert_eq!(
                    g.next_sector_from_angle(track, start + 0.6 / f64::from(spt)),
                    (s + 1) % spt,
                    "track {track} sector {s}"
                );
            }
        }
    }

    #[test]
    fn track_runs_split_at_boundaries() {
        let g = small();
        // 10 sectors per track in zone 0; a 25-sector range from LBA 5
        // covers track 0 (5), track 1 (10), track 2 (10).
        let runs = g.track_runs(5, 25).unwrap();
        assert_eq!(
            runs,
            vec![
                TrackRun {
                    track: 0,
                    first_sector: 5,
                    len: 5
                },
                TrackRun {
                    track: 1,
                    first_sector: 0,
                    len: 10
                },
                TrackRun {
                    track: 2,
                    first_sector: 0,
                    len: 10
                },
            ]
        );
        assert!(g.track_runs(g.total_sectors() - 1, 2).is_none());
        assert!(g.track_runs(0, 0).is_none());
    }
}
