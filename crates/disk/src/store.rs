//! The recording medium: a sparse, sector-atomic byte store.
//!
//! Sectors are the atomic persistence unit: a power failure either persists
//! a sector completely or not at all (torn *multi*-sector writes are the
//! interesting failure mode; torn intra-sector writes are prevented by drive
//! ECC on the hardware the paper targets).

use std::collections::HashMap;

use crate::geometry::{Lba, SECTOR_SIZE};

/// One sector's payload.
pub type SectorBuf = [u8; SECTOR_SIZE];

/// A sparse map from LBA to sector contents. Unwritten sectors read as
/// zeros, matching a freshly formatted drive.
///
/// # Examples
///
/// ```
/// use trail_disk::{SectorStore, SECTOR_SIZE};
///
/// let mut s = SectorStore::new(100);
/// assert_eq!(s.read_sector(5), [0u8; SECTOR_SIZE]);
/// s.write_sector(5, &[7u8; SECTOR_SIZE]);
/// assert_eq!(s.read_sector(5)[0], 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SectorStore {
    sectors: HashMap<Lba, Box<SectorBuf>>,
    capacity: u64,
}

impl SectorStore {
    /// Creates an all-zero store of `capacity` sectors.
    pub fn new(capacity: u64) -> Self {
        SectorStore {
            sectors: HashMap::new(),
            capacity,
        }
    }

    /// The store's capacity in sectors.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The number of sectors that have ever been written.
    pub fn written_sectors(&self) -> usize {
        self.sectors.len()
    }

    /// Reads one sector (zeros if never written).
    ///
    /// # Panics
    ///
    /// Panics if `lba` is beyond the capacity.
    pub fn read_sector(&self, lba: Lba) -> SectorBuf {
        assert!(lba < self.capacity, "read beyond capacity: lba {lba}");
        match self.sectors.get(&lba) {
            Some(b) => **b,
            None => [0u8; SECTOR_SIZE],
        }
    }

    /// Overwrites one sector.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is beyond the capacity.
    pub fn write_sector(&mut self, lba: Lba, data: &SectorBuf) {
        assert!(lba < self.capacity, "write beyond capacity: lba {lba}");
        match self.sectors.get_mut(&lba) {
            Some(b) => **b = *data,
            None => {
                self.sectors.insert(lba, Box::new(*data));
            }
        }
    }

    /// Reads consecutive sectors directly into `out` (one whole number of
    /// sectors), without intermediate per-sector copies. Unwritten sectors
    /// read as zeros.
    ///
    /// This is the borrowed-read primitive the data path is built on:
    /// callers that already own a destination buffer (device DMA targets,
    /// file-system block caches) fill it in place instead of paying
    /// [`read_range`](Self::read_range)'s allocation.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a whole number of sectors or the range
    /// exceeds the capacity.
    pub fn read_into(&self, lba: Lba, out: &mut [u8]) {
        assert!(
            out.len().is_multiple_of(SECTOR_SIZE),
            "buffer must be sector-aligned, got {} bytes",
            out.len()
        );
        let count = (out.len() / SECTOR_SIZE) as u64;
        assert!(
            lba + count <= self.capacity,
            "read beyond capacity: lba {lba} count {count}"
        );
        for (i, chunk) in out.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            match self.sectors.get(&(lba + i as u64)) {
                Some(b) => chunk.copy_from_slice(&**b),
                None => chunk.fill(0),
            }
        }
    }

    /// Reads `count` consecutive sectors into one contiguous buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the capacity.
    pub fn read_range(&self, lba: Lba, count: u32) -> Vec<u8> {
        let mut out = vec![0u8; count as usize * SECTOR_SIZE];
        self.read_into(lba, &mut out);
        out
    }

    /// Writes a contiguous buffer as consecutive sectors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of sectors or the range
    /// exceeds the capacity.
    pub fn write_range(&mut self, lba: Lba, data: &[u8]) {
        assert!(
            data.len().is_multiple_of(SECTOR_SIZE),
            "data must be sector-aligned, got {} bytes",
            data.len()
        );
        for (i, chunk) in data.chunks_exact(SECTOR_SIZE).enumerate() {
            let buf: &SectorBuf = chunk.try_into().expect("chunk is exactly one sector");
            self.write_sector(lba + i as u64, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_sectors_read_zero() {
        let s = SectorStore::new(10);
        assert_eq!(s.read_sector(9), [0u8; SECTOR_SIZE]);
        assert_eq!(s.written_sectors(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = SectorStore::new(10);
        let mut buf = [0u8; SECTOR_SIZE];
        buf[0] = 0xAB;
        buf[511] = 0xCD;
        s.write_sector(3, &buf);
        assert_eq!(s.read_sector(3), buf);
        assert_eq!(s.written_sectors(), 1);
        // Overwrite in place.
        buf[0] = 0xEF;
        s.write_sector(3, &buf);
        assert_eq!(s.read_sector(3)[0], 0xEF);
        assert_eq!(s.written_sectors(), 1);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn read_past_capacity_panics() {
        SectorStore::new(10).read_sector(10);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn write_past_capacity_panics() {
        SectorStore::new(10).write_sector(10, &[0u8; SECTOR_SIZE]);
    }

    #[test]
    fn range_io_round_trips() {
        let mut s = SectorStore::new(10);
        let data: Vec<u8> = (0..3 * SECTOR_SIZE).map(|i| (i % 251) as u8).collect();
        s.write_range(2, &data);
        assert_eq!(s.read_range(2, 3), data);
        // Partially overlapping read sees zeros before the write.
        let r = s.read_range(1, 2);
        assert_eq!(&r[..SECTOR_SIZE], &[0u8; SECTOR_SIZE]);
        assert_eq!(&r[SECTOR_SIZE..], &data[..SECTOR_SIZE]);
    }

    #[test]
    #[should_panic(expected = "sector-aligned")]
    fn unaligned_range_write_panics() {
        SectorStore::new(10).write_range(0, &[1, 2, 3]);
    }
}
