//! The simulated disk device: one-command-at-a-time service, persistence,
//! statistics, and power-failure injection.
//!
//! [`Disk`] is a cheaply cloneable handle (`Rc<RefCell<_>>`) so that driver
//! layers and completion events can all reach the same device. The device
//! itself has **no queue**: like real drive electronics of the paper's era
//! (no tagged queuing in the prototype), it services exactly one command at
//! a time, and the driver above is responsible for queueing — which is
//! exactly where Trail's batching happens.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use trail_sim::{
    BusyMeter, Completion, Fault, FaultKind, FaultSink, FaultTarget, LatencySummary, SimDuration,
    SimTime, Simulator,
};
use trail_telemetry::{null_recorder, Event, EventKind, Layer, RecorderHandle};

use crate::geometry::{DiskGeometry, Lba, SECTOR_SIZE};
use crate::mechanics::{CommandKind, HeadPosition, MechanicalModel, ServiceBreakdown};
use crate::store::{SectorBuf, SectorStore};

/// A command submitted to a disk.
#[derive(Clone, Debug)]
pub enum DiskCommand {
    /// Read `count` sectors starting at `lba`.
    Read {
        /// First sector.
        lba: Lba,
        /// Number of sectors (must be positive).
        count: u32,
    },
    /// Write `data` (a whole number of sectors) starting at `lba`.
    Write {
        /// First sector.
        lba: Lba,
        /// Sector-aligned payload.
        data: Vec<u8>,
    },
    /// Move the arm to the track containing `lba` without transferring.
    Seek {
        /// Target sector (identifies the track).
        lba: Lba,
    },
}

impl DiskCommand {
    fn kind(&self) -> CommandKind {
        match self {
            DiskCommand::Read { .. } => CommandKind::Read,
            DiskCommand::Write { .. } => CommandKind::Write,
            DiskCommand::Seek { .. } => CommandKind::Seek,
        }
    }

    fn lba(&self) -> Lba {
        match self {
            DiskCommand::Read { lba, .. }
            | DiskCommand::Write { lba, .. }
            | DiskCommand::Seek { lba } => *lba,
        }
    }
}

/// The completion record delivered to a command's callback.
#[derive(Clone, Debug)]
pub struct DiskResult {
    /// The command's kind.
    pub kind: CommandKind,
    /// The command's first LBA.
    pub lba: Lba,
    /// Data read from the medium (reads only).
    pub data: Option<Vec<u8>>,
    /// When the command was submitted.
    pub issued: SimTime,
    /// When the command completed (interrupt time).
    pub completed: SimTime,
    /// Mechanical timing decomposition.
    pub breakdown: ServiceBreakdown,
}

/// Errors returned synchronously by [`Disk::submit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskError {
    /// A command is already in flight; the device takes one at a time.
    Busy,
    /// The device has lost power.
    PoweredOff,
    /// The device has failed (whole-member fault injection) and will
    /// reject every command until the simulation ends.
    Failed,
    /// The addressed range falls outside the disk.
    OutOfRange,
    /// A write payload was empty or not sector-aligned.
    BadDataLength,
    /// An injected transient I/O error consumed this command: the device
    /// rejected it electronically, with no mechanical side effects, and
    /// will take the next one (see [`Disk::inject_transient_errors`]).
    Transient,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Busy => write!(f, "disk is busy servicing another command"),
            DiskError::PoweredOff => write!(f, "disk is powered off"),
            DiskError::Failed => write!(f, "disk has failed"),
            DiskError::OutOfRange => write!(f, "addressed sector range is outside the disk"),
            DiskError::BadDataLength => {
                write!(
                    f,
                    "write payload must be a positive multiple of {SECTOR_SIZE} bytes"
                )
            }
            DiskError::Transient => write!(f, "injected transient I/O error"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Aggregated per-disk measurements.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Completed seek commands.
    pub seeks: u64,
    /// Sectors transferred by reads.
    pub sectors_read: u64,
    /// Sectors transferred by writes.
    pub sectors_written: u64,
    /// Busy-time accounting (command in flight).
    pub busy: BusyMeter,
    /// Rotational-latency samples, one per transfer command — the quantity
    /// Trail's head prediction is designed to eliminate.
    pub rotation_waits: LatencySummary,
    /// Sum of fixed command overheads.
    pub total_overhead: SimDuration,
    /// Sum of seek (arm movement) time.
    pub total_seek: SimDuration,
    /// Sum of rotational latency.
    pub total_rotation: SimDuration,
    /// Sum of media transfer time.
    pub total_transfer: SimDuration,
    /// Commands consumed by injected transient errors.
    pub injected_errors: u64,
    /// Total service time added by injected latency spikes.
    pub injected_delay: SimDuration,
}

/// The in-flight write's payload, staged whole (moved from the command,
/// never copied) with per-sector media-completion instants so a power cut
/// can persist exactly the sectors already on the medium.
struct StagedWrite {
    lba: Lba,
    data: Vec<u8>,
    sector_done: Vec<SimTime>,
}

struct DiskInner {
    name: String,
    geometry: DiskGeometry,
    mech: MechanicalModel,
    store: SectorStore,
    head: HeadPosition,
    busy: bool,
    prev_was_write: bool,
    powered: bool,
    failed: bool,
    power_epoch: u64,
    in_flight: Option<StagedWrite>,
    // Armed transient-fault charges (see `inject_transient_errors` /
    // `inject_latency_spike`); each affected command consumes one.
    transient_errors: u32,
    spike_extra: SimDuration,
    spike_count: u32,
    stats: DiskStats,
    recorder: RecorderHandle,
}

/// A simulated disk drive. Clones share the same device.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk, DiskCommand, SECTOR_SIZE};
///
/// let mut sim = Simulator::new();
/// let disk = Disk::new("log", profiles::seagate_st41601n());
/// let done = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&done);
/// let token = sim.completion(move |_, res: trail_sim::Delivered<trail_disk::DiskResult>| {
///     let res = res.expect("delivered");
///     assert!(res.completed > res.issued);
///     flag.set(true);
/// });
/// disk.submit(
///     &mut sim,
///     DiskCommand::Write { lba: 0, data: vec![0xAB; SECTOR_SIZE] },
///     token,
/// )
/// .unwrap();
/// sim.run();
/// assert!(done.get());
/// ```
#[derive(Clone)]
pub struct Disk {
    inner: Rc<RefCell<DiskInner>>,
}

impl Disk {
    /// Creates a powered-on disk with an all-zero medium and the arm on
    /// cylinder 0, surface 0.
    pub fn new(name: impl Into<String>, profile: crate::profiles::DriveProfile) -> Self {
        let capacity = profile.geometry.total_sectors();
        Disk {
            inner: Rc::new(RefCell::new(DiskInner {
                name: name.into(),
                geometry: profile.geometry,
                mech: profile.mech,
                store: SectorStore::new(capacity),
                head: HeadPosition::default(),
                busy: false,
                prev_was_write: false,
                powered: true,
                failed: false,
                power_epoch: 0,
                in_flight: None,
                transient_errors: 0,
                spike_extra: SimDuration::ZERO,
                spike_count: 0,
                stats: DiskStats::default(),
                recorder: null_recorder(),
            })),
        }
    }

    /// Attaches a telemetry recorder. The default [`null_recorder`] keeps
    /// instrumentation free; an enabled recorder receives one
    /// [`Event`] per mechanical phase of every completed command.
    pub fn set_recorder(&self, recorder: RecorderHandle) {
        self.inner.borrow_mut().recorder = recorder;
    }

    /// The device's name (for diagnostics).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// A copy of the device's geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.inner.borrow().geometry.clone()
    }

    /// A copy of the device's mechanical model.
    pub fn mechanics(&self) -> MechanicalModel {
        self.inner.borrow().mech.clone()
    }

    /// Whether a command is currently in flight.
    pub fn is_busy(&self) -> bool {
        self.inner.borrow().busy
    }

    /// Whether the device has power.
    pub fn is_powered(&self) -> bool {
        self.inner.borrow().powered
    }

    /// Whether the device has suffered an injected whole-member failure.
    pub fn is_failed(&self) -> bool {
        self.inner.borrow().failed
    }

    /// Runs `f` against the accumulated statistics.
    pub fn with_stats<R>(&self, f: impl FnOnce(&DiskStats) -> R) -> R {
        f(&self.inner.borrow().stats)
    }

    /// Resets the accumulated statistics (the medium is untouched).
    ///
    /// # Panics
    ///
    /// Panics if a command is in flight (its busy interval would be torn).
    pub fn reset_stats(&self) {
        let mut d = self.inner.borrow_mut();
        assert!(!d.busy, "cannot reset stats while a command is in flight");
        d.stats = DiskStats::default();
    }

    /// Submits a command; `done` is delivered from the event loop at
    /// completion (the interrupt). On any rejection or power loss the
    /// token is dropped, so the submitter hears `Err(Cancelled)` instead
    /// of waiting forever.
    ///
    /// # Errors
    ///
    /// Returns an error without mechanical side effects if the device is
    /// busy or powered off, the range is outside the disk, or a write
    /// payload is not sector-aligned (the token is consumed either way).
    pub fn submit(
        &self,
        sim: &mut Simulator,
        cmd: DiskCommand,
        done: Completion<DiskResult>,
    ) -> Result<(), DiskError> {
        let now = sim.now();
        let (plan, kind, lba, count, epoch, from_cyl) = {
            let mut d = self.inner.borrow_mut();
            if d.failed {
                return Err(DiskError::Failed);
            }
            if !d.powered {
                return Err(DiskError::PoweredOff);
            }
            if d.busy {
                return Err(DiskError::Busy);
            }
            if d.transient_errors > 0 {
                d.transient_errors -= 1;
                d.stats.injected_errors += 1;
                return Err(DiskError::Transient);
            }
            let kind = cmd.kind();
            let lba = cmd.lba();
            let mut plan = match &cmd {
                DiskCommand::Read { lba, count } => {
                    if *count == 0 {
                        return Err(DiskError::OutOfRange);
                    }
                    d.mech
                        .plan(
                            &d.geometry,
                            now,
                            d.head,
                            CommandKind::Read,
                            *lba,
                            *count,
                            d.prev_was_write,
                        )
                        .ok_or(DiskError::OutOfRange)?
                }
                DiskCommand::Write { lba, data } => {
                    if data.is_empty() || data.len() % SECTOR_SIZE != 0 {
                        return Err(DiskError::BadDataLength);
                    }
                    let count = (data.len() / SECTOR_SIZE) as u32;
                    d.mech
                        .plan(
                            &d.geometry,
                            now,
                            d.head,
                            CommandKind::Write,
                            *lba,
                            count,
                            d.prev_was_write,
                        )
                        .ok_or(DiskError::OutOfRange)?
                }
                DiskCommand::Seek { lba } => d
                    .mech
                    .plan_seek(&d.geometry, now, d.head, *lba)
                    .ok_or(DiskError::OutOfRange)?,
            };
            // An armed latency spike stretches this command by `extra`
            // of controller overhead at the front: the completion
            // interrupt and every per-sector media instant shift by the
            // same amount, so the breakdown still sums exactly and a
            // power cut during the spiked command persists the right
            // prefix.
            if d.spike_count > 0 {
                d.spike_count -= 1;
                let extra = d.spike_extra;
                plan.completion += extra;
                for t in &mut plan.sector_done {
                    *t += extra;
                }
                plan.breakdown.overhead += extra;
                plan.breakdown.total += extra;
                d.stats.injected_delay += extra;
            }
            let count = match &cmd {
                DiskCommand::Read { count, .. } => *count,
                DiskCommand::Write { data, .. } => (data.len() / SECTOR_SIZE) as u32,
                DiskCommand::Seek { .. } => 0,
            };
            // Stage the write payload by moving it out of the command —
            // no per-sector copies on the happy path.
            if let DiskCommand::Write { lba, data } = cmd {
                debug_assert!(d.in_flight.is_none(), "one command in flight at a time");
                d.in_flight = Some(StagedWrite {
                    lba,
                    data,
                    sector_done: plan.sector_done.clone(),
                });
            }
            d.busy = true;
            d.stats.busy.start(now);
            (plan, kind, lba, count, d.power_epoch, d.head.cylinder)
        };

        let disk = self.clone();
        sim.schedule_at(plan.completion, move |sim| {
            let (result, telemetry) = {
                let mut d = disk.inner.borrow_mut();
                if !d.powered || d.power_epoch != epoch {
                    // Power was cut while this command was in flight;
                    // dropping `done` delivers Err(Cancelled) to the
                    // host on the next simulator step.
                    return;
                }
                // Persist the staged write (all sectors transferred by now).
                if let Some(w) = d.in_flight.take() {
                    d.store.write_range(w.lba, &w.data);
                }
                let data = if kind == CommandKind::Read {
                    Some(d.store.read_range(lba, count))
                } else {
                    None
                };
                d.head = plan.end_head;
                d.busy = false;
                d.prev_was_write = kind == CommandKind::Write;
                let now = sim.now();
                d.stats.busy.stop(now);
                match kind {
                    CommandKind::Read => {
                        d.stats.reads += 1;
                        d.stats.sectors_read += u64::from(count);
                    }
                    CommandKind::Write => {
                        d.stats.writes += 1;
                        d.stats.sectors_written += u64::from(count);
                    }
                    CommandKind::Seek => d.stats.seeks += 1,
                }
                if kind != CommandKind::Seek {
                    d.stats.rotation_waits.record(plan.breakdown.rotation);
                }
                d.stats.total_overhead += plan.breakdown.overhead;
                d.stats.total_seek += plan.breakdown.seek;
                d.stats.total_rotation += plan.breakdown.rotation;
                d.stats.total_transfer += plan.breakdown.transfer;
                let telemetry = d.recorder.enabled().then(|| {
                    (
                        Rc::clone(&d.recorder),
                        d.name.clone(),
                        d.mech.rotation_period,
                        d.head.cylinder,
                    )
                });
                let result = DiskResult {
                    kind,
                    lba,
                    data,
                    issued: now - plan.breakdown.total,
                    completed: now,
                    breakdown: plan.breakdown,
                };
                (result, telemetry)
            };
            if let Some((recorder, name, rotation_period, to_cyl)) = telemetry {
                emit_phase_events(
                    &*recorder,
                    &name,
                    &result,
                    &plan,
                    rotation_period,
                    from_cyl,
                    to_cyl,
                );
            }
            done.complete(sim, result);
        });
        Ok(())
    }

    /// Cuts power at `now`. Sectors whose media transfer completed before
    /// `now` persist; the rest of any in-flight command is lost, and its
    /// completion token is delivered as `Err(Cancelled)` on the next
    /// simulator step.
    pub fn power_cut(&self, now: SimTime) {
        let mut d = self.inner.borrow_mut();
        if !d.powered {
            return;
        }
        d.powered = false;
        d.power_epoch += 1;
        if let Some(w) = d.in_flight.take() {
            for (i, done_at) in w.sector_done.iter().enumerate() {
                if *done_at <= now {
                    let chunk = &w.data[i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE];
                    let buf: &SectorBuf = chunk.try_into().expect("chunk is exactly one sector");
                    d.store.write_sector(w.lba + i as u64, buf);
                }
            }
        }
        if d.busy {
            d.busy = false;
            d.stats.busy.stop(now);
        }
    }

    /// Fails the whole member at `now`: any in-flight command is lost
    /// (its token cancel-cascades on the next step) and every subsequent
    /// [`Disk::submit`] returns [`DiskError::Failed`]. Unlike a power
    /// cut, nothing of an in-flight write persists and [`Disk::power_on`]
    /// does not revive the device — a failed member stays failed, which
    /// is what RAID degraded-mode paths are rebuilt against.
    pub fn fail(&self, now: SimTime) {
        let mut d = self.inner.borrow_mut();
        if d.failed {
            return;
        }
        d.failed = true;
        // Bumping the epoch makes the pending completion event drop its
        // token instead of delivering — the same cancel-cascade a power
        // cut uses.
        d.power_epoch += 1;
        d.in_flight = None;
        if d.busy {
            d.busy = false;
            d.stats.busy.stop(now);
        }
    }

    /// Arms `count` transient I/O errors: each of the next `count`
    /// submitted commands is rejected with [`DiskError::Transient`]
    /// (consuming its completion token) with no mechanical side effects.
    /// Charges accumulate across calls.
    pub fn inject_transient_errors(&self, count: u32) {
        self.inner.borrow_mut().transient_errors += count;
    }

    /// Arms `count` latency spikes: each of the next `count` submitted
    /// commands takes `extra` longer, accounted as controller overhead.
    /// Charges accumulate; the most recent `extra` wins.
    pub fn inject_latency_spike(&self, extra: SimDuration, count: u32) {
        let mut d = self.inner.borrow_mut();
        d.spike_extra = extra;
        d.spike_count += count;
    }

    /// A fault-plane sink for this device: registering it on a
    /// [`FaultClock`](trail_sim::FaultClock) makes the device honor
    /// [`FaultTarget::System`] faults plus those addressed to `role`.
    pub fn fault_sink(&self, role: DiskRole) -> Rc<dyn FaultSink> {
        Rc::new(DiskFaultSink {
            disk: self.clone(),
            role,
        })
    }

    /// Restores power. The arm recalibrates to cylinder 0, surface 0; the
    /// medium is untouched.
    pub fn power_on(&self) {
        let mut d = self.inner.borrow_mut();
        if d.powered {
            return;
        }
        d.powered = true;
        d.head = HeadPosition::default();
        d.prev_was_write = false;
    }

    /// Reads a sector directly off the medium, bypassing timing.
    ///
    /// Intended for test assertions and post-mortem inspection only; the
    /// Trail recovery path performs *timed* reads through [`submit`].
    ///
    /// [`submit`]: Disk::submit
    pub fn peek_sector(&self, lba: Lba) -> SectorBuf {
        self.inner.borrow().store.read_sector(lba)
    }

    /// Writes a sector directly onto the medium, bypassing timing.
    ///
    /// Intended for formatting tools and test setup.
    pub fn poke_sector(&self, lba: Lba, data: &SectorBuf) {
        self.inner.borrow_mut().store.write_sector(lba, data);
    }

    /// The current arm position (test/diagnostic use).
    pub fn head_position(&self) -> HeadPosition {
        self.inner.borrow().head
    }
}

/// Replays a completed command's mechanical phases into the recorder as
/// consecutive spans. For multi-track transfers the per-phase sums are
/// rendered as single spans (the decomposition stays exact; only the
/// interleaving of repeated seek/rotate/transfer cycles is collapsed).
fn emit_phase_events(
    recorder: &dyn trail_telemetry::Recorder,
    name: &str,
    result: &DiskResult,
    plan: &crate::mechanics::ServicePlan,
    rotation_period: SimDuration,
    from_cyl: u32,
    to_cyl: u32,
) {
    let b = result.breakdown;
    let ev = |at: SimTime, dur: SimDuration, kind: EventKind| Event {
        at,
        dur,
        layer: Layer::Disk,
        source: name.to_string(),
        req: None,
        kind,
    };
    let mut t = result.issued + b.overhead;
    if !b.seek.is_zero() || result.kind == CommandKind::Seek {
        recorder.record(ev(t, b.seek, EventKind::Seek { from_cyl, to_cyl }));
    }
    t += b.seek;
    if result.kind == CommandKind::Seek {
        return;
    }
    recorder.record(ev(t, b.rotation, EventKind::RotWait));
    // "Just missed it": the command paid at least 90% of a revolution
    // waiting for its sector to come around again.
    if b.rotation.as_nanos() * 10 >= rotation_period.as_nanos() * 9 {
        recorder.record(ev(t, SimDuration::ZERO, EventKind::FullRotationMiss));
    }
    t += b.rotation;
    recorder.record(ev(
        t,
        b.transfer,
        EventKind::Transfer {
            sectors: plan.sector_done.len() as u32,
        },
    ));
    if plan.track_switches > 0 {
        recorder.record(ev(
            t,
            SimDuration::ZERO,
            EventKind::TrackSwitch {
                switches: plan.track_switches,
            },
        ));
    }
}

/// The role a device plays in a stack, for fault-plane addressing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskRole {
    /// Data disk `i` in stack device order — matches
    /// [`FaultTarget::Data`].
    Data(usize),
    /// Log disk `i` in instance order — matches [`FaultTarget::Log`].
    Log(usize),
}

struct DiskFaultSink {
    disk: Disk,
    role: DiskRole,
}

impl FaultSink for DiskFaultSink {
    fn apply(&self, sim: &mut Simulator, fault: &Fault) -> bool {
        let addressed = match (fault.target, self.role) {
            (FaultTarget::System, _) => true,
            (FaultTarget::Data(i), DiskRole::Data(j)) => i == j,
            (FaultTarget::Log(i), DiskRole::Log(j)) => i == j,
            _ => false,
        };
        if !addressed {
            return false;
        }
        match fault.kind {
            FaultKind::PowerCut => self.disk.power_cut(sim.now()),
            FaultKind::Fail => self.disk.fail(sim.now()),
            FaultKind::TransientError { count } => self.disk.inject_transient_errors(count),
            FaultKind::LatencySpike { extra, count } => {
                self.disk.inject_latency_spike(extra, count)
            }
        }
        true
    }
}

impl fmt::Debug for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.borrow();
        f.debug_struct("Disk")
            .field("name", &d.name)
            .field("busy", &d.busy)
            .field("powered", &d.powered)
            .field("failed", &d.failed)
            .field("head", &d.head)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use std::cell::Cell;

    fn setup() -> (Simulator, Disk) {
        (Simulator::new(), Disk::new("t", profiles::tiny_test_disk()))
    }

    fn write_buf(byte: u8, sectors: usize) -> Vec<u8> {
        vec![byte; sectors * SECTOR_SIZE]
    }

    #[test]
    fn write_then_read_round_trips_through_commands() {
        let (mut sim, disk) = setup();
        let got = Rc::new(RefCell::new(None));
        let d2 = disk.clone();
        let got2 = Rc::clone(&got);
        let token = sim.completion(move |sim: &mut Simulator, res: Delivered<DiskResult>| {
            assert_eq!(res.expect("delivered").kind, CommandKind::Write);
            let read_done = sim.completion(move |_, res: Delivered<DiskResult>| {
                *got2.borrow_mut() = res.expect("delivered").data;
            });
            d2.submit(sim, DiskCommand::Read { lba: 7, count: 2 }, read_done)
                .unwrap();
        });
        disk.submit(
            &mut sim,
            DiskCommand::Write {
                lba: 7,
                data: write_buf(0x5A, 2),
            },
            token,
        )
        .unwrap();
        sim.run();
        assert_eq!(got.borrow().as_deref(), Some(&write_buf(0x5A, 2)[..]));
    }

    #[test]
    fn busy_disk_rejects_submission() {
        let (mut sim, disk) = setup();
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
            .unwrap();
        assert!(disk.is_busy());
        // The rejected submission consumes its token: the submitter hears
        // Err(Cancelled) instead of waiting forever.
        let rejected = Rc::new(Cell::new(false));
        let r2 = Rc::clone(&rejected);
        let token = sim.completion(move |_, res: Delivered<DiskResult>| {
            r2.set(res.is_err());
        });
        let err = disk
            .submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
            .unwrap_err();
        assert_eq!(err, DiskError::Busy);
        sim.run();
        assert!(!disk.is_busy());
        assert!(rejected.get(), "rejected token must cancel-cascade");
    }

    #[test]
    fn rejects_bad_requests() {
        let (mut sim, disk) = setup();
        let cap = disk.geometry().total_sectors();
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(&mut sim, DiskCommand::Read { lba: cap, count: 1 }, token)
                .unwrap_err(),
            DiskError::OutOfRange
        );
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 0 }, token)
                .unwrap_err(),
            DiskError::OutOfRange
        );
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(
                &mut sim,
                DiskCommand::Write {
                    lba: 0,
                    data: vec![1, 2, 3]
                },
                token
            )
            .unwrap_err(),
            DiskError::BadDataLength
        );
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(
                &mut sim,
                DiskCommand::Write {
                    lba: 0,
                    data: vec![]
                },
                token
            )
            .unwrap_err(),
            DiskError::BadDataLength
        );
    }

    #[test]
    fn seek_moves_head_without_touching_medium() {
        let (mut sim, disk) = setup();
        let g = disk.geometry();
        let target = g.track_first_lba(5);
        let token = sim.completion(|_, res: Delivered<DiskResult>| {
            let res = res.expect("delivered");
            assert_eq!(res.kind, CommandKind::Seek);
            assert!(res.data.is_none());
        });
        disk.submit(&mut sim, DiskCommand::Seek { lba: target }, token)
            .unwrap();
        sim.run();
        let (cyl, head) = g.track_to_cyl_head(5);
        assert_eq!(disk.head_position().cylinder, cyl);
        assert_eq!(disk.head_position().head, head);
        assert_eq!(disk.with_stats(|s| s.seeks), 1);
    }

    #[test]
    fn stats_accumulate() {
        let (mut sim, disk) = setup();
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        disk.submit(
            &mut sim,
            DiskCommand::Write {
                lba: 0,
                data: write_buf(1, 3),
            },
            token,
        )
        .unwrap();
        sim.run();
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 3 }, token)
            .unwrap();
        sim.run();
        disk.with_stats(|s| {
            assert_eq!(s.writes, 1);
            assert_eq!(s.reads, 1);
            assert_eq!(s.sectors_written, 3);
            assert_eq!(s.sectors_read, 3);
            assert_eq!(s.rotation_waits.count(), 2);
            assert!(s.busy.busy_time() > SimDuration::ZERO);
            assert!(!s.busy.is_busy());
        });
        disk.reset_stats();
        disk.with_stats(|s| assert_eq!(s.writes, 0));
    }

    #[test]
    fn power_cut_mid_transfer_persists_prefix_only() {
        let (mut sim, disk) = setup();
        // A multi-sector write; cut power after the 2nd sector lands.
        let fired = Rc::new(Cell::new(None));
        let f = Rc::clone(&fired);
        let token = sim.completion(move |_, res: Delivered<DiskResult>| {
            f.set(Some(res.is_err()));
        });
        disk.submit(
            &mut sim,
            DiskCommand::Write {
                lba: 0,
                data: write_buf(0x77, 8),
            },
            token,
        )
        .unwrap();
        // Find the moment 2 sectors are done: peek into the plan indirectly
        // by advancing a little at a time until exactly 2 sectors persist.
        let mech = disk.mechanics();
        let g = disk.geometry();
        // overhead + rotation to sector 0 + 2 sector times, plus epsilon.
        let t0 = SimTime::ZERO + mech.overhead(CommandKind::Write, false);
        let rot = mech.time_until_angle(t0, g.sector_angle(0, 0));
        let cut = t0 + rot + mech.sector_time(g.spt_of_track(0)) * 2 + SimDuration::from_nanos(10);
        sim.run_until(cut);
        disk.power_cut(sim.now());
        sim.run();
        assert_eq!(
            fired.get(),
            Some(true),
            "token must be delivered as cancelled after power cut"
        );
        assert_eq!(disk.peek_sector(0)[0], 0x77);
        assert_eq!(disk.peek_sector(1)[0], 0x77);
        assert_eq!(disk.peek_sector(2)[0], 0x00, "third sector was torn off");
        // Power back on: medium intact, device usable again.
        disk.power_on();
        assert!(disk.is_powered());
        assert!(!disk.is_busy());
        let ok = Rc::new(Cell::new(false));
        let ok2 = Rc::clone(&ok);
        let token = sim.completion(move |_, res: Delivered<DiskResult>| {
            assert_eq!(res.expect("delivered").data.unwrap()[0], 0x77);
            ok2.set(true);
        });
        disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
            .unwrap();
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn powered_off_disk_rejects_commands() {
        let (mut sim, disk) = setup();
        disk.power_cut(sim.now());
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
                .unwrap_err(),
            DiskError::PoweredOff
        );
    }

    #[test]
    fn failed_disk_rejects_commands_and_stays_failed() {
        let (mut sim, disk) = setup();
        disk.fail(sim.now());
        assert!(disk.is_failed());
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
                .unwrap_err(),
            DiskError::Failed
        );
        // Power cycling does not resurrect a failed member.
        disk.power_cut(sim.now());
        disk.power_on();
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        assert_eq!(
            disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
                .unwrap_err(),
            DiskError::Failed
        );
    }

    #[test]
    fn scheduled_failure_cancels_in_flight_command() {
        let (mut sim, disk) = setup();
        let outcome = Rc::new(Cell::new(None));
        let o2 = Rc::clone(&outcome);
        let token = sim.completion(move |_, res: Delivered<DiskResult>| {
            o2.set(Some(res.is_err()));
        });
        disk.submit(
            &mut sim,
            DiskCommand::Write {
                lba: 0,
                data: write_buf(0x44, 8),
            },
            token,
        )
        .unwrap();
        // Fail mid-service via the fault plane: the write must cancel,
        // not complete, and nothing of it lands on the medium.
        let clock = FaultClock::new();
        clock.register(disk.fault_sink(DiskRole::Data(0)));
        clock.arm(
            &mut sim,
            &FaultPlan::new().with(Fault {
                at: SimDuration::from_nanos(100),
                target: FaultTarget::Data(0),
                kind: FaultKind::Fail,
            }),
        );
        sim.run();
        assert_eq!(clock.fired(), 1);
        assert_eq!(clock.unhandled(), 0);
        assert_eq!(outcome.get(), Some(true), "in-flight command cancelled");
        assert!(disk.is_failed());
        assert!(!disk.is_busy());
        assert_eq!(disk.peek_sector(0)[0], 0, "failed write left no sectors");
    }

    #[test]
    fn peek_poke_bypass_timing() {
        let (_, disk) = setup();
        let mut buf = [0u8; SECTOR_SIZE];
        buf[9] = 9;
        disk.poke_sector(42, &buf);
        assert_eq!(disk.peek_sector(42)[9], 9);
    }

    #[test]
    fn transient_errors_consume_exactly_count_commands() {
        let (mut sim, disk) = setup();
        disk.inject_transient_errors(2);
        for _ in 0..2 {
            let cancelled = Rc::new(Cell::new(false));
            let c2 = Rc::clone(&cancelled);
            let token = sim.completion(move |_, res: Delivered<DiskResult>| {
                c2.set(res.is_err());
            });
            assert_eq!(
                disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
                    .unwrap_err(),
                DiskError::Transient
            );
            sim.run();
            assert!(cancelled.get(), "rejected token must cancel-cascade");
            assert!(
                !disk.is_busy(),
                "transient error leaves no command in flight"
            );
        }
        // Charges exhausted: the third command services normally.
        let ok = Rc::new(Cell::new(false));
        let ok2 = Rc::clone(&ok);
        let token = sim.completion(move |_, res: Delivered<DiskResult>| {
            ok2.set(res.is_ok());
        });
        disk.submit(&mut sim, DiskCommand::Read { lba: 0, count: 1 }, token)
            .unwrap();
        sim.run();
        assert!(ok.get());
        assert_eq!(disk.with_stats(|s| s.injected_errors), 2);
    }

    #[test]
    fn latency_spike_stretches_service_exactly() {
        let extra = SimDuration::from_millis(30);
        let service = |spiked: bool| {
            let (mut sim, disk) = setup();
            if spiked {
                disk.inject_latency_spike(extra, 1);
            }
            let done_at = Rc::new(Cell::new(SimTime::ZERO));
            let d2 = Rc::clone(&done_at);
            let token = sim.completion(move |sim: &mut Simulator, res: Delivered<DiskResult>| {
                let res = res.expect("delivered");
                assert_eq!(res.breakdown.total, res.completed - res.issued);
                d2.set(sim.now());
            });
            disk.submit(
                &mut sim,
                DiskCommand::Write {
                    lba: 3,
                    data: write_buf(0xEE, 2),
                },
                token,
            )
            .unwrap();
            sim.run();
            assert_eq!(disk.peek_sector(3)[0], 0xEE);
            done_at.get()
        };
        let (base, spiked) = (service(false), service(true));
        assert_eq!(spiked - base, extra, "spike adds exactly `extra`");
    }

    #[test]
    fn power_cut_during_spiked_write_respects_shifted_sector_instants() {
        let (mut sim, disk) = setup();
        let extra = SimDuration::from_millis(50);
        disk.inject_latency_spike(extra, 1);
        let token = sim.completion(|_, _: Delivered<DiskResult>| {});
        disk.submit(
            &mut sim,
            DiskCommand::Write {
                lba: 0,
                data: write_buf(0x31, 4),
            },
            token,
        )
        .unwrap();
        // At the un-spiked completion horizon nothing has landed yet:
        // the spike pushed every media instant out by 50 ms.
        let mech = disk.mechanics();
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        disk.power_cut(sim.now());
        sim.run();
        assert!(mech.rotation_period < SimDuration::from_millis(25));
        assert_eq!(
            disk.peek_sector(0)[0],
            0,
            "no sector may land inside the spike window"
        );
    }

    use std::cell::RefCell;
    use std::rc::Rc;
    use trail_sim::{Delivered, FaultClock, FaultPlan};
}
