//! Canned drive profiles matching the paper's testbed.
//!
//! The paper's measurements use a Seagate ST41601N 5400-RPM SCSI disk as the
//! Trail log disk and Western Digital 10-GB 5400-RPM IDE disks as data
//! disks. These profiles are calibrated so that the *anchor measurements*
//! the paper reports emerge from the model:
//!
//! - one 512-byte sector transfers in ≈0.13 ms (§5.1);
//! - a one-sector write with perfect head prediction completes in ≈1.4 ms,
//!   i.e. ≈1.25 ms of fixed controller/on-disk overhead (§5.1);
//! - repositioning to the next track costs ≈1.5 ms (§5.1);
//! - the calibrated prediction offset δ is below 15 sectors (§3.1);
//! - the log disk has 35,717 tracks (§5.3: 2101 cylinders × 17 heads);
//! - average rotational delay is ≈5.5 ms (5400 RPM).

use trail_sim::SimDuration;

use crate::geometry::{DiskGeometry, Zone};
use crate::mechanics::{MechanicalModel, SeekModel};

/// A complete drive description: geometry plus mechanical timing.
#[derive(Clone, Debug)]
pub struct DriveProfile {
    /// Marketing/model name.
    pub name: &'static str,
    /// Physical layout.
    pub geometry: DiskGeometry,
    /// Timing model.
    pub mech: MechanicalModel,
}

/// One spindle revolution at 5400 RPM.
pub const ROTATION_5400_RPM: SimDuration = SimDuration::from_nanos(11_111_111);

/// The Trail log disk: Seagate ST41601N-class, 5400 RPM SCSI, ~1.5 GB,
/// 2101 cylinders × 17 heads = 35,717 tracks.
///
/// # Examples
///
/// ```
/// let p = trail_disk::profiles::seagate_st41601n();
/// assert_eq!(p.geometry.total_tracks(), 35_717);
/// ```
pub fn seagate_st41601n() -> DriveProfile {
    let geometry = DiskGeometry::new(
        17,
        vec![
            Zone {
                cylinders: 700,
                spt: 90,
            },
            Zone {
                cylinders: 700,
                spt: 84,
            },
            Zone {
                cylinders: 701,
                spt: 78,
            },
        ],
        // Track skew covers the 1.0 ms head switch (≈8.1 sectors at spt 90).
        9,
        // Cylinder skew adds the 1.7 ms track-to-track seek minus the head
        // switch already covered (≈6 sectors).
        6,
    );
    let mech = MechanicalModel {
        rotation_period: ROTATION_5400_RPM,
        seek: SeekModel::new(
            SimDuration::from_micros(1_700),
            SimDuration::from_micros(11_500),
            SimDuration::from_micros(24_000),
            geometry.cylinders(),
        ),
        head_switch: SimDuration::from_micros(1_000),
        read_overhead: SimDuration::from_micros(400),
        write_overhead: SimDuration::from_micros(1_200),
        seek_overhead: SimDuration::from_micros(300),
        write_after_write: SimDuration::from_micros(150),
        spindle_wander: SimDuration::ZERO,
        wander_period: SimDuration::from_secs(1),
    };
    DriveProfile {
        name: "Seagate ST41601N (5400 RPM SCSI)",
        geometry,
        mech,
    }
}

/// A Trail data disk: Western Digital Caviar-class 10-GB 5400-RPM IDE.
///
/// # Examples
///
/// ```
/// let p = trail_disk::profiles::wd_caviar_10gb();
/// assert!(p.geometry.capacity_bytes() > 9_000_000_000);
/// ```
pub fn wd_caviar_10gb() -> DriveProfile {
    let geometry = DiskGeometry::new(
        6,
        vec![
            Zone {
                cylinders: 4_500,
                spt: 280,
            },
            Zone {
                cylinders: 4_500,
                spt: 240,
            },
            Zone {
                cylinders: 4_500,
                spt: 200,
            },
        ],
        26,
        25,
    );
    let mech = MechanicalModel {
        rotation_period: ROTATION_5400_RPM,
        seek: SeekModel::new(
            SimDuration::from_micros(2_000),
            SimDuration::from_micros(9_500),
            SimDuration::from_micros(20_000),
            geometry.cylinders(),
        ),
        head_switch: SimDuration::from_micros(1_000),
        read_overhead: SimDuration::from_micros(300),
        write_overhead: SimDuration::from_micros(500),
        seek_overhead: SimDuration::from_micros(200),
        write_after_write: SimDuration::from_micros(100),
        spindle_wander: SimDuration::ZERO,
        wander_period: SimDuration::from_secs(1),
    };
    DriveProfile {
        name: "Western Digital Caviar 10 GB (5400 RPM IDE)",
        geometry,
        mech,
    }
}

/// A deliberately small disk for fast unit tests: 2 surfaces, 2 zones,
/// short seeks, same 5400-RPM spindle.
pub fn tiny_test_disk() -> DriveProfile {
    let geometry = DiskGeometry::new(
        2,
        vec![
            Zone {
                cylinders: 32,
                spt: 40,
            },
            Zone {
                cylinders: 32,
                spt: 32,
            },
        ],
        4,
        3,
    );
    let mech = MechanicalModel {
        rotation_period: ROTATION_5400_RPM,
        seek: SeekModel::new(
            SimDuration::from_micros(1_000),
            SimDuration::from_micros(4_000),
            SimDuration::from_micros(8_000),
            geometry.cylinders(),
        ),
        head_switch: SimDuration::from_micros(800),
        read_overhead: SimDuration::from_micros(300),
        write_overhead: SimDuration::from_micros(900),
        seek_overhead: SimDuration::from_micros(200),
        write_after_write: SimDuration::from_micros(100),
        spindle_wander: SimDuration::ZERO,
        wander_period: SimDuration::from_secs(1),
    };
    DriveProfile {
        name: "tiny test disk",
        geometry,
        mech,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_disk_matches_paper_anchors() {
        let p = seagate_st41601n();
        // 35,717 tracks (paper §5.3).
        assert_eq!(p.geometry.total_tracks(), 35_717);
        // ~0.13 ms single-sector transfer in the outer zone (paper §5.1).
        let xfer = p.mech.sector_time(90).as_millis_f64();
        assert!((0.11..0.14).contains(&xfer), "sector transfer {xfer} ms");
        // Average rotational latency ≈ 5.5 ms (paper §5.1).
        assert!((p.mech.rotation_period.as_millis_f64() / 2.0 - 5.5).abs() < 0.1);
        // Capacity in the right class (paper: 1.37 GB).
        let gb = p.geometry.capacity_bytes() as f64 / 1e9;
        assert!((1.2..1.8).contains(&gb), "capacity {gb} GB");
    }

    #[test]
    fn data_disk_capacity_is_ten_gb_class() {
        let p = wd_caviar_10gb();
        let gb = p.geometry.capacity_bytes() as f64 / 1e9;
        assert!((9.0..11.0).contains(&gb), "capacity {gb} GB");
        assert_eq!(
            p.mech.seek.track_to_track(),
            SimDuration::from_micros(2_000),
            "2-ms track-to-track per the paper"
        );
    }

    #[test]
    fn skew_roughly_covers_head_switch_on_log_disk() {
        let p = seagate_st41601n();
        let sector_time = p.mech.sector_time(90);
        let skew_time = sector_time * u64::from(p.geometry.track_skew());
        // Skew must be at least the head switch (else every sequential
        // track crossing costs a full revolution) and not absurdly larger.
        assert!(skew_time >= p.mech.head_switch);
        assert!(skew_time <= p.mech.head_switch + sector_time * 2);
    }

    #[test]
    fn tiny_disk_is_small_and_valid() {
        let p = tiny_test_disk();
        assert!(p.geometry.total_sectors() < 10_000);
        assert!(p
            .geometry
            .lba_to_chs(p.geometry.total_sectors() - 1)
            .is_some());
    }
}
