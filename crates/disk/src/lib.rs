//! # trail-disk: a mechanical rotating-disk model
//!
//! The hardware substrate of the Trail reproduction (Chiueh & Huang,
//! *Track-Based Disk Logging*, DSN 2002). Trail's entire contribution rests
//! on mechanical-disk physics — rotational position, track-switch costs,
//! zoned geometry — so the reproduction models those physics explicitly:
//!
//! - [`DiskGeometry`]: zoned multi-surface layout, LBA↔CHS translation,
//!   track/cylinder skew, and the angular position of every sector;
//! - [`MechanicalModel`]: seek curve, spindle phase (a pure function of
//!   virtual time), per-command service planning with per-sector media
//!   completion instants;
//! - [`Disk`]: the device actor — one command at a time, sector-atomic
//!   persistence, statistics, and **power-failure injection** (a crash
//!   persists exactly the sectors already transferred);
//! - [`profiles`]: drive profiles calibrated to the paper's testbed
//!   (Seagate ST41601N log disk, WD Caviar data disks).
//!
//! # Examples
//!
//! ```
//! use trail_sim::Simulator;
//! use trail_disk::{profiles, Disk, DiskCommand, SECTOR_SIZE};
//!
//! let mut sim = Simulator::new();
//! let disk = Disk::new("log", profiles::seagate_st41601n());
//! let done = sim.completion(|_, res: trail_sim::Delivered<trail_disk::DiskResult>| {
//!     // Fixed overhead + seek + rotation + transfer.
//!     assert!(res.expect("delivered").breakdown.total.as_millis_f64() > 1.0);
//! });
//! disk.submit(
//!     &mut sim,
//!     DiskCommand::Write { lba: 100, data: vec![1u8; SECTOR_SIZE] },
//!     done,
//! )?;
//! sim.run();
//! assert_eq!(disk.peek_sector(100)[0], 1);
//! # Ok::<(), trail_disk::DiskError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod geometry;
mod mechanics;
pub mod profiles;
mod store;

pub use device::{Disk, DiskCommand, DiskError, DiskResult, DiskRole, DiskStats};
pub use geometry::{Chs, DiskGeometry, Lba, TrackRun, Zone, SECTOR_SIZE};
pub use mechanics::{
    CommandKind, HeadPosition, MechanicalModel, SeekModel, ServiceBreakdown, ServicePlan,
};
pub use store::{SectorBuf, SectorStore};
