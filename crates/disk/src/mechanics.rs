//! The mechanical timing model: seek curve, spindle phase, service times.
//!
//! Given a command, the current arm position, and the instant at which the
//! disk starts working on it, [`MechanicalModel::plan`] computes the exact
//! completion time as the sum of
//!
//! 1. **command overhead** — controller + on-disk processing (the paper
//!    measures ≈1.3 ms of fixed overhead per write on the ST41601N);
//! 2. **seek** — arm movement between cylinders, plus head-switch/settle;
//! 3. **rotational latency** — waiting for the target sector to pass under
//!    the head, derived from the *absolute spindle phase*: the platter angle
//!    is a pure function of virtual time, which is what makes Trail's
//!    software-only head-position prediction possible at all;
//! 4. **media transfer** — rotation-locked at one sector per
//!    `rotation_period / spt`.
//!
//! The model also records *per-sector* completion instants so that power
//! failures can be injected with sector granularity (a crash mid-transfer
//! persists exactly the sectors already written — the adversary Trail's
//! self-describing log format is designed for).

use trail_sim::{SimDuration, SimTime};

use crate::geometry::{DiskGeometry, Lba};

/// The arm's resting position: which cylinder and surface the head is on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HeadPosition {
    /// Current cylinder.
    pub cylinder: u32,
    /// Current surface.
    pub head: u32,
}

/// Piecewise seek-time curve built from three datasheet numbers.
///
/// Short seeks follow a square-root acceleration profile from the
/// track-to-track time up to the average seek time (reached at one third of
/// the full stroke, the mean seek distance for uniformly random targets);
/// longer seeks grow linearly up to the full-stroke time.
///
/// # Examples
///
/// ```
/// use trail_sim::SimDuration;
/// use trail_disk::SeekModel;
///
/// let s = SeekModel::new(
///     SimDuration::from_micros(1700),
///     SimDuration::from_millis(11),
///     SimDuration::from_millis(23),
///     2101,
/// );
/// assert_eq!(s.seek_time(0), SimDuration::ZERO);
/// assert_eq!(s.seek_time(1), SimDuration::from_micros(1700));
/// assert_eq!(s.seek_time(2100), SimDuration::from_millis(23));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeekModel {
    track_to_track: SimDuration,
    average: SimDuration,
    full_stroke: SimDuration,
    max_cylinders: u32,
}

impl SeekModel {
    /// Builds a seek curve from datasheet numbers.
    ///
    /// # Panics
    ///
    /// Panics unless `track_to_track <= average <= full_stroke` and
    /// `max_cylinders >= 2`.
    pub fn new(
        track_to_track: SimDuration,
        average: SimDuration,
        full_stroke: SimDuration,
        max_cylinders: u32,
    ) -> Self {
        assert!(
            track_to_track <= average && average <= full_stroke,
            "seek curve must be monotone: t2t {track_to_track} <= avg {average} <= full {full_stroke}"
        );
        assert!(max_cylinders >= 2, "disk must have at least two cylinders");
        SeekModel {
            track_to_track,
            average,
            full_stroke,
            max_cylinders,
        }
    }

    /// Track-to-track (single-cylinder) seek time.
    pub fn track_to_track(&self) -> SimDuration {
        self.track_to_track
    }

    /// Average (one-third-stroke) seek time.
    pub fn average(&self) -> SimDuration {
        self.average
    }

    /// Full-stroke seek time.
    pub fn full_stroke(&self) -> SimDuration {
        self.full_stroke
    }

    /// Seek time for a move of `distance` cylinders. Zero distance is free.
    pub fn seek_time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let max_dist = self.max_cylinders - 1;
        let distance = distance.min(max_dist);
        let knee = (max_dist / 3).max(1);
        if distance <= knee {
            if knee == 1 {
                return self.track_to_track;
            }
            let frac = (f64::from(distance - 1) / f64::from(knee - 1)).sqrt();
            self.track_to_track + (self.average - self.track_to_track).mul_f64(frac)
        } else {
            let frac = f64::from(distance - knee) / f64::from(max_dist - knee);
            self.average + (self.full_stroke - self.average).mul_f64(frac)
        }
    }
}

/// The kind of a disk command, which selects the fixed-overhead component.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CommandKind {
    /// Media read.
    Read,
    /// Media write (synchronous: no on-disk write cache).
    Write,
    /// Arm repositioning only — no media transfer.
    Seek,
}

/// Full mechanical parameter set for one drive.
#[derive(Clone, Debug)]
pub struct MechanicalModel {
    /// One spindle revolution (e.g. 11.111 ms at 5400 RPM).
    pub rotation_period: SimDuration,
    /// Seek curve.
    pub seek: SeekModel,
    /// Head-switch / settle time when changing surfaces.
    pub head_switch: SimDuration,
    /// Fixed controller + on-disk processing overhead for reads.
    pub read_overhead: SimDuration,
    /// Fixed controller + on-disk processing overhead for writes.
    pub write_overhead: SimDuration,
    /// Fixed overhead for pure seeks (no transfer).
    pub seek_overhead: SimDuration,
    /// Extra delay charged when a write immediately follows a write (the
    /// paper's "write-after-write command delay").
    pub write_after_write: SimDuration,
    /// Amplitude of the spindle's slow sinusoidal phase wander — "the
    /// deviation in the disk rotation speed" that makes head predictions
    /// "go awry after a long period of disk idle time" (paper §3.1).
    /// Zero (the default profiles) models a perfectly regulated spindle.
    pub spindle_wander: SimDuration,
    /// Period of the wander oscillation (ignored when the amplitude is
    /// zero).
    pub wander_period: SimDuration,
}

impl MechanicalModel {
    /// Angular position of the spindle at `t`, as a fraction of a
    /// revolution in `0.0..1.0`, including any configured wander.
    pub fn phase(&self, t: SimTime) -> f64 {
        let p = self.rotation_period.as_nanos();
        let base = (t.as_nanos() % p) as f64 / p as f64;
        if self.spindle_wander.is_zero() {
            return base;
        }
        let w = self.spindle_wander.as_nanos() as f64
            * (std::f64::consts::TAU * t.as_nanos() as f64 / self.wander_period.as_nanos() as f64)
                .sin();
        (base + w / p as f64).rem_euclid(1.0)
    }

    /// Time needed for one sector to pass under the head on a track with
    /// `spt` sectors.
    pub fn sector_time(&self, spt: u32) -> SimDuration {
        self.rotation_period / u64::from(spt)
    }

    /// Time from `now` until the platter reaches angle `target`
    /// (fraction of a revolution).
    pub fn time_until_angle(&self, now: SimTime, target: f64) -> SimDuration {
        let mut diff = target - self.phase(now);
        if diff < 0.0 {
            diff += 1.0;
        }
        // Guard against f64 dust pushing us a full revolution forward.
        if diff >= 1.0 {
            diff -= 1.0;
        }
        self.rotation_period.mul_f64(diff)
    }

    /// Fixed overhead for a command of `kind`, given whether the previous
    /// command on this disk was a write.
    pub fn overhead(&self, kind: CommandKind, prev_was_write: bool) -> SimDuration {
        match kind {
            CommandKind::Read => self.read_overhead,
            CommandKind::Seek => self.seek_overhead,
            CommandKind::Write => {
                if prev_was_write {
                    self.write_overhead + self.write_after_write
                } else {
                    self.write_overhead
                }
            }
        }
    }

    /// Plans a media-transfer command (`Read` or `Write`) of `count` sectors
    /// at `lba`, starting at `start` with the arm at `head`.
    ///
    /// Returns `None` if the sector range falls outside the disk.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`CommandKind::Seek`] (use [`plan_seek`]) or
    /// `count` is zero.
    ///
    /// [`plan_seek`]: MechanicalModel::plan_seek
    #[allow(clippy::too_many_arguments)] // a disk command is genuinely this wide
    pub fn plan(
        &self,
        geometry: &DiskGeometry,
        start: SimTime,
        head: HeadPosition,
        kind: CommandKind,
        lba: Lba,
        count: u32,
        prev_was_write: bool,
    ) -> Option<ServicePlan> {
        assert!(
            kind != CommandKind::Seek,
            "plan() is for transfers; use plan_seek()"
        );
        assert!(count > 0, "transfer must cover at least one sector");
        let runs = geometry.track_runs(lba, count)?;
        let mut breakdown = ServiceBreakdown {
            overhead: self.overhead(kind, prev_was_write),
            ..ServiceBreakdown::default()
        };
        let mut t = start + breakdown.overhead;
        let mut pos = head;
        let mut sector_done = Vec::with_capacity(count as usize);
        for run in &runs {
            let (cyl, hd) = geometry.track_to_cyl_head(run.track);
            let mut move_t = SimDuration::ZERO;
            if cyl != pos.cylinder {
                move_t = self.seek.seek_time(cyl.abs_diff(pos.cylinder));
            }
            if hd != pos.head {
                // Head switch settles concurrently with the tail of the arm
                // move; the slower of the two dominates.
                move_t = move_t.max(self.head_switch);
            }
            breakdown.seek += move_t;
            t += move_t;
            let angle = geometry.sector_angle(run.track, run.first_sector);
            let rot = self.time_until_angle(t, angle);
            breakdown.rotation += rot;
            t += rot;
            let st = self.sector_time(geometry.spt_of_track(run.track));
            for i in 0..run.len {
                sector_done.push(t + st * u64::from(i + 1));
            }
            let xfer = st * u64::from(run.len);
            breakdown.transfer += xfer;
            t += xfer;
            pos = HeadPosition {
                cylinder: cyl,
                head: hd,
            };
        }
        breakdown.total = t.duration_since(start);
        Some(ServicePlan {
            completion: t,
            sector_done,
            end_head: pos,
            breakdown,
            track_switches: (runs.len() - 1) as u32,
        })
    }

    /// Plans a pure arm move to the track containing `lba`.
    ///
    /// Returns `None` if `lba` is outside the disk.
    pub fn plan_seek(
        &self,
        geometry: &DiskGeometry,
        start: SimTime,
        head: HeadPosition,
        lba: Lba,
    ) -> Option<ServicePlan> {
        let chs = geometry.lba_to_chs(lba)?;
        let mut breakdown = ServiceBreakdown {
            overhead: self.seek_overhead,
            ..ServiceBreakdown::default()
        };
        let mut move_t = SimDuration::ZERO;
        if chs.cylinder != head.cylinder {
            move_t = self.seek.seek_time(chs.cylinder.abs_diff(head.cylinder));
        }
        if chs.head != head.head {
            move_t = move_t.max(self.head_switch);
        }
        breakdown.seek = move_t;
        let t = start + breakdown.overhead + move_t;
        breakdown.total = t.duration_since(start);
        Some(ServicePlan {
            completion: t,
            sector_done: Vec::new(),
            end_head: HeadPosition {
                cylinder: chs.cylinder,
                head: chs.head,
            },
            breakdown,
            track_switches: 0,
        })
    }
}

/// The timing decomposition of one serviced command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceBreakdown {
    /// Fixed controller/command-processing overhead.
    pub overhead: SimDuration,
    /// Arm movement (seek + head switch), summed over track crossings.
    pub seek: SimDuration,
    /// Rotational latency, summed over track crossings.
    pub rotation: SimDuration,
    /// Media transfer time.
    pub transfer: SimDuration,
    /// End-to-end service time (sum of the above).
    pub total: SimDuration,
}

/// The outcome of planning a command: when it completes, when each sector's
/// transfer finishes, where the arm ends up, and the timing breakdown.
#[derive(Clone, Debug)]
pub struct ServicePlan {
    /// Instant at which the command completes (interrupt time).
    pub completion: SimTime,
    /// Per-sector media-transfer completion instants (empty for seeks), in
    /// LBA order.
    pub sector_done: Vec<SimTime>,
    /// Arm position after the command.
    pub end_head: HeadPosition,
    /// Timing decomposition.
    pub breakdown: ServiceBreakdown,
    /// Number of track boundaries the transfer crossed (zero for
    /// single-track transfers and pure seeks).
    pub track_switches: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Zone;

    fn geometry() -> DiskGeometry {
        DiskGeometry::new(
            2,
            vec![Zone {
                cylinders: 100,
                spt: 100,
            }],
            0,
            0,
        )
    }

    fn model() -> MechanicalModel {
        MechanicalModel {
            rotation_period: SimDuration::from_millis(10),
            seek: SeekModel::new(
                SimDuration::from_millis(1),
                SimDuration::from_millis(5),
                SimDuration::from_millis(9),
                100,
            ),
            head_switch: SimDuration::from_micros(800),
            read_overhead: SimDuration::from_micros(400),
            write_overhead: SimDuration::from_micros(1200),
            seek_overhead: SimDuration::from_micros(300),
            write_after_write: SimDuration::from_micros(200),
            spindle_wander: SimDuration::ZERO,
            wander_period: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn seek_curve_endpoints_and_monotonicity() {
        let s = model().seek;
        assert_eq!(s.seek_time(0), SimDuration::ZERO);
        assert_eq!(s.seek_time(1), SimDuration::from_millis(1));
        assert_eq!(s.seek_time(33), SimDuration::from_millis(5));
        assert_eq!(s.seek_time(99), SimDuration::from_millis(9));
        assert_eq!(s.seek_time(500), SimDuration::from_millis(9), "clamped");
        let mut prev = SimDuration::ZERO;
        for d in 0..100 {
            let t = s.seek_time(d);
            assert!(t >= prev, "seek curve non-monotone at distance {d}");
            prev = t;
        }
    }

    #[test]
    fn phase_wraps_each_revolution() {
        let m = model();
        assert_eq!(m.phase(SimTime::ZERO), 0.0);
        assert_eq!(m.phase(SimTime::from_nanos(5_000_000)), 0.5);
        assert_eq!(m.phase(SimTime::from_nanos(10_000_000)), 0.0);
        assert_eq!(m.phase(SimTime::from_nanos(12_500_000)), 0.25);
    }

    #[test]
    fn time_until_angle_is_forward_only() {
        let m = model();
        let now = SimTime::from_nanos(2_500_000); // phase 0.25
        assert_eq!(m.time_until_angle(now, 0.5).as_nanos(), 2_500_000);
        assert_eq!(m.time_until_angle(now, 0.25).as_nanos(), 0);
        // Going "backwards" costs most of a revolution.
        assert_eq!(m.time_until_angle(now, 0.0).as_nanos(), 7_500_000);
    }

    #[test]
    fn overhead_depends_on_kind_and_history() {
        let m = model();
        assert_eq!(m.overhead(CommandKind::Read, true), m.read_overhead);
        assert_eq!(m.overhead(CommandKind::Write, false), m.write_overhead);
        assert_eq!(
            m.overhead(CommandKind::Write, true),
            m.write_overhead + m.write_after_write
        );
        assert_eq!(m.overhead(CommandKind::Seek, true), m.seek_overhead);
    }

    #[test]
    fn plan_single_sector_at_head_position() {
        let g = geometry();
        let m = model();
        // Head on cylinder 0, surface 0; write sector 0 at time 0: the
        // platter is exactly at sector 0's start after overhead has elapsed?
        // Overhead is 1.2 ms = 12% of a revolution, so sector 12 starts
        // exactly then. Target sector 12 to observe zero rotational wait.
        let plan = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Write,
                12,
                1,
                false,
            )
            .expect("in range");
        assert_eq!(plan.breakdown.seek, SimDuration::ZERO);
        assert_eq!(plan.breakdown.rotation.as_nanos(), 0);
        assert_eq!(plan.breakdown.transfer, SimDuration::from_micros(100));
        assert_eq!(
            plan.completion,
            SimTime::ZERO + SimDuration::from_micros(1300)
        );
        assert_eq!(plan.sector_done, vec![plan.completion]);
    }

    #[test]
    fn plan_pays_full_rotation_when_just_missed() {
        let g = geometry();
        let m = model();
        // Target sector 11: its start (11% of rev = 1.1 ms) has just passed
        // when overhead (1.2 ms) completes, so we wait almost a full turn.
        let plan = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Write,
                11,
                1,
                false,
            )
            .unwrap();
        assert_eq!(plan.breakdown.rotation, SimDuration::from_micros(9900));
    }

    #[test]
    fn plan_includes_seek_for_remote_cylinder() {
        let g = geometry();
        let m = model();
        let lba = g
            .chs_to_lba(crate::geometry::Chs {
                cylinder: 50,
                head: 1,
                sector: 0,
            })
            .unwrap();
        let plan = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Read,
                lba,
                1,
                false,
            )
            .unwrap();
        assert_eq!(plan.breakdown.seek, m.seek.seek_time(50));
        assert_eq!(plan.end_head.cylinder, 50);
        assert_eq!(plan.end_head.head, 1);
        assert_eq!(
            plan.breakdown.total,
            plan.breakdown.overhead
                + plan.breakdown.seek
                + plan.breakdown.rotation
                + plan.breakdown.transfer
        );
    }

    #[test]
    fn multi_track_transfer_crosses_boundary() {
        let g = geometry();
        let m = model();
        // 150 sectors from LBA 50: 50 on track 0, 100 on track 1.
        let plan = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Read,
                50,
                150,
                false,
            )
            .unwrap();
        assert_eq!(plan.sector_done.len(), 150);
        assert_eq!(plan.breakdown.transfer, SimDuration::from_micros(15_000));
        // With zero skew the head switch always costs rotation too.
        assert!(plan.breakdown.seek >= m.head_switch);
        assert!(
            plan.sector_done.windows(2).all(|w| w[0] <= w[1]),
            "sector completions must be ordered"
        );
        assert_eq!(plan.completion, *plan.sector_done.last().unwrap());
    }

    #[test]
    fn skewed_geometry_hides_head_switch() {
        // Track skew of 10 sectors = 1 ms of angle at 10 ms/rev with
        // spt 100; head switch is 0.8 ms, so a sequential cross-track
        // transfer waits only 10 sectors of skew minus nothing — the
        // rotational wait after the switch must be strictly less than one
        // revolution minus the switch time.
        let g = DiskGeometry::new(
            2,
            vec![Zone {
                cylinders: 4,
                spt: 100,
            }],
            10,
            5,
        );
        let m = model();
        let plan = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Read,
                0,
                200,
                false,
            )
            .unwrap();
        // Rotation paid: initial alignment + post-switch alignment. The
        // post-switch wait is skew (1 ms) - head_switch (0.8 ms) = 0.2 ms.
        let expected_post_switch = SimDuration::from_micros(200);
        let initial = m.time_until_angle(SimTime::ZERO + m.read_overhead, g.sector_angle(0, 0));
        assert_eq!(plan.breakdown.rotation, initial + expected_post_switch);
    }

    #[test]
    fn plan_rejects_out_of_range() {
        let g = geometry();
        let m = model();
        assert!(m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Read,
                g.total_sectors(),
                1,
                false
            )
            .is_none());
    }

    #[test]
    fn plan_seek_moves_arm_without_transfer() {
        let g = geometry();
        let m = model();
        let lba = g.track_first_lba(21); // cylinder 10, head 1
        let plan = m
            .plan_seek(&g, SimTime::ZERO, HeadPosition::default(), lba)
            .unwrap();
        assert!(plan.sector_done.is_empty());
        assert_eq!(plan.end_head.cylinder, 10);
        assert_eq!(plan.end_head.head, 1);
        assert_eq!(plan.breakdown.transfer, SimDuration::ZERO);
        assert_eq!(plan.breakdown.rotation, SimDuration::ZERO);
        assert_eq!(plan.breakdown.seek, m.seek.seek_time(10).max(m.head_switch));
    }

    #[test]
    fn write_after_write_penalty_applies() {
        let g = geometry();
        let m = model();
        let a = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Write,
                12,
                1,
                false,
            )
            .unwrap();
        let b = m
            .plan(
                &g,
                SimTime::ZERO,
                HeadPosition::default(),
                CommandKind::Write,
                12,
                1,
                true,
            )
            .unwrap();
        assert_eq!(
            b.breakdown.overhead - a.breakdown.overhead,
            m.write_after_write
        );
    }
}
