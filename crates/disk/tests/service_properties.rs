//! Property tests over the mechanical service model: physical sanity must
//! hold for arbitrary commands on arbitrary geometries.

use proptest::prelude::*;
use trail_disk::{CommandKind, DiskGeometry, HeadPosition, MechanicalModel, SeekModel, Zone};
use trail_sim::{SimDuration, SimTime};

fn arb_geometry() -> impl Strategy<Value = DiskGeometry> {
    (
        1u32..6,
        proptest::collection::vec((2u32..30, 8u32..150), 1..4),
        0u32..20,
        0u32..20,
    )
        .prop_map(|(heads, zones, ts, cs)| {
            DiskGeometry::new(
                heads,
                zones
                    .into_iter()
                    .map(|(cylinders, spt)| Zone { cylinders, spt })
                    .collect(),
                ts,
                cs,
            )
        })
}

fn arb_model(geometry: &DiskGeometry) -> impl Strategy<Value = MechanicalModel> {
    let cyls = geometry.cylinders().max(2);
    (
        5_000_000u64..20_000_000, // rotation 5-20 ms
        100u64..2_000,            // t2t µs
        1u64..5,                  // avg multiplier
        200u64..1_500,            // head switch µs
        100u64..1_500,            // overheads µs
    )
        .prop_map(move |(rot, t2t, mult, hs, ov)| {
            let t2t = SimDuration::from_micros(t2t);
            let avg = t2t * mult + SimDuration::from_micros(500);
            let full = avg * 2;
            MechanicalModel {
                rotation_period: SimDuration::from_nanos(rot),
                seek: SeekModel::new(t2t, avg, full, cyls),
                head_switch: SimDuration::from_micros(hs),
                read_overhead: SimDuration::from_micros(ov),
                write_overhead: SimDuration::from_micros(ov + 300),
                seek_overhead: SimDuration::from_micros(ov / 2 + 1),
                write_after_write: SimDuration::from_micros(100),
                spindle_wander: SimDuration::ZERO,
                wander_period: SimDuration::from_secs(1),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn service_plan_is_physically_sane(
        (geometry, model, start_ns, head_frac, lba_frac, count, kind, prev_write) in
            arb_geometry().prop_flat_map(|g| {
                let gm = g.clone();
                (Just(g), arb_model(&gm)).prop_flat_map(|(g, m)| {
                    (
                        Just(g),
                        Just(m),
                        0u64..100_000_000,
                        0.0f64..1.0,
                        0.0f64..1.0,
                        1u32..64,
                        prop_oneof![Just(CommandKind::Read), Just(CommandKind::Write)],
                        any::<bool>(),
                    )
                })
            })
    ) {
        let total = geometry.total_sectors();
        let lba = ((total - 1) as f64 * lba_frac) as u64;
        let count = count.min((total - lba) as u32).max(1);
        let head_track = ((geometry.total_tracks() - 1) as f64 * head_frac) as u64;
        let (cylinder, head) = geometry.track_to_cyl_head(head_track);
        let start = SimTime::from_nanos(start_ns);
        let plan = model
            .plan(
                &geometry,
                start,
                HeadPosition { cylinder, head },
                kind,
                lba,
                count,
                prev_write,
            )
            .expect("range validated");

        // The breakdown sums to the total; every component is bounded.
        prop_assert_eq!(
            plan.breakdown.total,
            plan.breakdown.overhead
                + plan.breakdown.seek
                + plan.breakdown.rotation
                + plan.breakdown.transfer
        );
        prop_assert_eq!(plan.completion, start + plan.breakdown.total);
        // Rotation per track crossing is under one revolution; the range
        // spans at most `runs` crossings.
        let runs = geometry.track_runs(lba, count).expect("in range").len() as u64;
        prop_assert!(
            plan.breakdown.rotation.as_nanos()
                < runs * model.rotation_period.as_nanos(),
            "rotation {} over {} runs", plan.breakdown.rotation, runs
        );
        // Transfer is rotation-locked: at least count sector times of the
        // slowest zone touched, at most of the fastest.
        prop_assert_eq!(plan.sector_done.len(), count as usize);
        prop_assert!(plan.sector_done.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*plan.sector_done.last().expect("nonempty"), plan.completion);
        // The head ends on the last sector's track.
        let end_chs = geometry
            .lba_to_chs(lba + u64::from(count) - 1)
            .expect("in range");
        prop_assert_eq!(plan.end_head.cylinder, end_chs.cylinder);
        prop_assert_eq!(plan.end_head.head, end_chs.head);
    }

    #[test]
    fn seek_curve_is_monotone_everywhere(
        (t2t_us, avg_extra_us, full_extra_us, cyls) in
            (100u64..3_000, 1u64..20_000, 1u64..30_000, 2u32..30_000)
    ) {
        let t2t = SimDuration::from_micros(t2t_us);
        let avg = t2t + SimDuration::from_micros(avg_extra_us);
        let full = avg + SimDuration::from_micros(full_extra_us);
        let s = SeekModel::new(t2t, avg, full, cyls);
        let mut prev = SimDuration::ZERO;
        // Sample the curve densely enough to catch knee glitches.
        let step = (cyls / 64).max(1);
        let mut d = 0;
        while d < cyls {
            let t = s.seek_time(d);
            prop_assert!(t >= prev, "seek({d}) = {t} < seek({}) = {prev}", d.saturating_sub(step));
            prev = t;
            d += step;
        }
        prop_assert!(s.seek_time(cyls * 2) <= full);
    }

    #[test]
    fn time_until_angle_is_bounded_and_consistent(
        (rot_ns, now_ns, target) in (1_000_000u64..50_000_000, 0u64..10_000_000_000, 0.0f64..1.0)
    ) {
        let model = MechanicalModel {
            rotation_period: SimDuration::from_nanos(rot_ns),
            seek: SeekModel::new(
                SimDuration::from_micros(1000),
                SimDuration::from_micros(5000),
                SimDuration::from_micros(9000),
                100,
            ),
            head_switch: SimDuration::from_micros(800),
            read_overhead: SimDuration::from_micros(300),
            write_overhead: SimDuration::from_micros(900),
            seek_overhead: SimDuration::from_micros(200),
            write_after_write: SimDuration::from_micros(100),
            spindle_wander: SimDuration::ZERO,
            wander_period: SimDuration::from_secs(1),
        };
        let now = SimTime::from_nanos(now_ns);
        let wait = model.time_until_angle(now, target);
        prop_assert!(wait < model.rotation_period, "wait {wait} >= period");
        // After waiting, the platter is (within rounding) at the target.
        let then = now + wait;
        let phase = model.phase(then);
        let diff = (phase - target).abs().min(1.0 - (phase - target).abs());
        prop_assert!(diff < 1e-6, "phase {phase} vs target {target}");
    }
}
