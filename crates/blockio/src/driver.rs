//! The standard disk-subsystem driver — the paper's baseline.
//!
//! [`StandardDriver`] models the conventional kernel block layer the paper
//! compares Trail against: requests queue in the driver, a scheduling
//! policy (C-LOOK by default) picks the next one whenever the disk goes
//! idle, and a synchronous write is durable exactly when its completion
//! callback fires — after paying full seek + rotational latency at the
//! *target* address. It is also the building block Trail itself uses for
//! its data disks (with [`Priority::ReadsFirst`]).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use trail_disk::{Disk, DiskCommand, DiskError, DiskResult, SECTOR_SIZE};
use trail_sim::{Completion, Delivered, LatencySummary, SimTime, Simulator};
use trail_telemetry::{Layer, LifecycleEmitter, RecorderHandle, RequestBreakdown};

use crate::request::{IoDone, IoKind, IoRequest, RequestId};
use crate::sched::{Clook, Priority, QueuedIo, Scheduler};
use crate::tap::TapHandle;

/// Aggregate driver measurements.
#[derive(Clone, Debug, Default)]
pub struct DriverStats {
    /// End-to-end read latencies (queueing + service).
    pub read_latency: LatencySummary,
    /// End-to-end write latencies (queueing + service).
    pub write_latency: LatencySummary,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Largest queue depth observed at submission time.
    pub max_queue_depth: usize,
}

struct Queued {
    id: RequestId,
    issued: SimTime,
    req: IoRequest,
    done: Completion<IoDone>,
}

struct Inner {
    disk: Disk,
    scheduler: Box<dyn Scheduler>,
    priority: Priority,
    // Queued requests keyed by arrival seq; the scheduler indexes the
    // same seqs, so a dispatch is one O(log n) pop + one O(log n)
    // removal here — no linear scans at any depth.
    queue: BTreeMap<u64, Queued>,
    in_flight: bool,
    // Dropped tokens of transient-rejected commands whose Err(Cancelled)
    // delivery is still in flight. The dispatch slot those commands held
    // was freed (and likely re-used) at rejection time, so their late
    // cancellations must NOT clear `in_flight` for whatever command now
    // owns the disk.
    transient_cancels_pending: u32,
    next_id: u64,
    next_seq: u64,
    stats: DriverStats,
    // The driver's name for trace purposes is its disk's name.
    lifecycle: LifecycleEmitter,
    // Workload-capture tap plus the stack-level device index it reports.
    tap: Option<(TapHandle, u32)>,
}

/// A queueing block driver over one [`Disk`]. Clones share the driver.
///
/// # Examples
///
/// ```
/// use trail_sim::Simulator;
/// use trail_disk::{profiles, Disk, SECTOR_SIZE};
/// use trail_blockio::{IoRequest, StandardDriver};
///
/// let mut sim = Simulator::new();
/// let disk = Disk::new("data", profiles::wd_caviar_10gb());
/// let drv = StandardDriver::new(disk);
/// let done = sim.completion(|_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
///     let done = d.expect("delivered");
///     assert!(done.latency().as_millis_f64() > 0.0);
/// });
/// drv.submit(&mut sim, IoRequest::write(0, vec![9; SECTOR_SIZE]), done)?;
/// sim.run();
/// # Ok::<(), trail_disk::DiskError>(())
/// ```
#[derive(Clone)]
pub struct StandardDriver {
    inner: Rc<RefCell<Inner>>,
}

impl StandardDriver {
    /// Creates a driver with the default C-LOOK scheduler and no read
    /// priority.
    pub fn new(disk: Disk) -> Self {
        Self::with_policy(disk, Box::new(Clook::default()), Priority::None)
    }

    /// Creates a driver with an explicit scheduler and priority policy.
    pub fn with_policy(disk: Disk, scheduler: Box<dyn Scheduler>, priority: Priority) -> Self {
        let lifecycle = LifecycleEmitter::new(Layer::BlockIo, disk.name());
        StandardDriver {
            inner: Rc::new(RefCell::new(Inner {
                disk,
                scheduler,
                priority,
                queue: BTreeMap::new(),
                in_flight: false,
                transient_cancels_pending: 0,
                next_id: 0,
                next_seq: 0,
                stats: DriverStats::default(),
                lifecycle,
                tap: None,
            })),
        }
    }

    /// Attaches a telemetry recorder to this driver *and* its disk, so
    /// one call wires the whole request path: `Enqueue`/`Dispatch`/
    /// `Complete` here, mechanical phase events below.
    pub fn set_recorder(&self, recorder: RecorderHandle) {
        let mut d = self.inner.borrow_mut();
        d.disk.set_recorder(Rc::clone(&recorder));
        d.lifecycle.set_recorder(recorder);
    }

    /// Installs a workload-capture tap reporting this driver's requests
    /// under stack-level device index `dev`. See [`crate::SubmitTap`].
    pub fn set_tap(&self, tap: TapHandle, dev: u32) {
        self.inner.borrow_mut().tap = Some((tap, dev));
    }

    /// The underlying disk.
    pub fn disk(&self) -> Disk {
        self.inner.borrow().disk.clone()
    }

    /// Current queue depth (excluding the in-flight request).
    pub fn queue_depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Whether a request is being serviced by the disk right now.
    pub fn is_busy(&self) -> bool {
        self.inner.borrow().in_flight
    }

    /// Runs `f` against the accumulated statistics.
    pub fn with_stats<R>(&self, f: impl FnOnce(&DriverStats) -> R) -> R {
        f(&self.inner.borrow().stats)
    }

    /// Submits a request; `done` is delivered when it is durable (writes)
    /// or the data is available (reads). The handler runs as its own
    /// simulator event, so it may submit new I/O into this driver freely.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] or [`DiskError::BadDataLength`]
    /// without queueing anything if the request is malformed; `done` is
    /// then cancelled (delivered `Err(Cancelled)` on the next step).
    pub fn submit(
        &self,
        sim: &mut Simulator,
        req: IoRequest,
        done: Completion<IoDone>,
    ) -> Result<RequestId, DiskError> {
        let id = {
            let mut d = self.inner.borrow_mut();
            if d.disk.is_failed() {
                return Err(DiskError::Failed);
            }
            let total = d.disk.geometry().total_sectors();
            let sectors = req.kind.sectors();
            match &req.kind {
                IoKind::Read { count } if *count == 0 => return Err(DiskError::OutOfRange),
                IoKind::Write { data } if data.is_empty() || data.len() % SECTOR_SIZE != 0 => {
                    return Err(DiskError::BadDataLength)
                }
                _ => {}
            }
            if req.lba + u64::from(sectors) > total {
                return Err(DiskError::OutOfRange);
            }
            if let Some((tap, dev)) = &d.tap {
                tap.on_submit(
                    sim.now(),
                    *dev,
                    req.lba,
                    sectors,
                    req.kind.is_read(),
                    req.stream,
                );
            }
            let id = RequestId(d.next_id);
            d.next_id += 1;
            let seq = d.next_seq;
            d.next_seq += 1;
            let geometry = d.disk.geometry();
            d.scheduler.insert(
                QueuedIo {
                    lba: req.lba,
                    is_read: req.kind.is_read(),
                    seq,
                },
                &geometry,
            );
            d.queue.insert(
                seq,
                Queued {
                    id,
                    issued: sim.now(),
                    req,
                    done,
                },
            );
            d.stats.submitted += 1;
            let depth = d.queue.len();
            if depth > d.stats.max_queue_depth {
                d.stats.max_queue_depth = depth;
            }
            d.lifecycle.enqueue(sim.now(), id.0, depth as u32);
            id
        };
        self.dispatch(sim);
        Ok(id)
    }

    /// If the disk is idle and requests are queued, dispatches the next one
    /// according to the priority policy and scheduler.
    fn dispatch(&self, sim: &mut Simulator) {
        let (disk, cmd, queued) = {
            let mut d = self.inner.borrow_mut();
            if d.in_flight || d.queue.is_empty() {
                return;
            }
            let depth = d.queue.len() as u32;
            let reads_only = d.priority == Priority::ReadsFirst && d.scheduler.queued_reads() > 0;
            let head = d.disk.head_position();
            let seq = d.scheduler.pop(head, reads_only);
            let mut queued = d
                .queue
                .remove(&seq)
                .expect("scheduler popped a seq the queue does not hold");
            // Move the write payload into the command instead of cloning:
            // nothing reads it from the queue entry after dispatch, and a
            // power-cut cancellation only needs `queued.done`'s drop.
            let cmd = match &mut queued.req.kind {
                IoKind::Read { count } => DiskCommand::Read {
                    lba: queued.req.lba,
                    count: *count,
                },
                IoKind::Write { data } => DiskCommand::Write {
                    lba: queued.req.lba,
                    data: std::mem::take(data),
                },
            };
            d.in_flight = true;
            d.lifecycle.dispatch(sim.now(), queued.id.0, depth);
            (d.disk.clone(), cmd, queued)
        };
        let driver = self.clone();
        let disk_done = sim.completion(move |sim: &mut Simulator, res: Delivered<DiskResult>| {
            let res = match res {
                Ok(res) => res,
                // The disk lost power or failed with this command in
                // flight. Clear the dispatch slot and drop `queued`, which
                // cascades the cancellation to the request's own
                // `Completion`. A failed member also drains the queue —
                // nothing behind this command can ever be serviced.
                Err(_) => {
                    let mut d = driver.inner.borrow_mut();
                    if d.transient_cancels_pending > 0 {
                        // The dropped token of a transient-rejected
                        // command: its slot was freed and re-dispatched
                        // at rejection time, and `in_flight` now
                        // describes a *different* command — leave it.
                        d.transient_cancels_pending -= 1;
                        return;
                    }
                    d.in_flight = false;
                    if d.disk.is_failed() {
                        d.queue.clear();
                        d.scheduler.clear();
                    }
                    return;
                }
            };
            let done = IoDone {
                id: queued.id,
                lba: res.lba,
                kind: res.kind,
                data: res.data,
                issued: queued.issued,
                completed: res.completed,
                breakdown: res.breakdown,
            };
            {
                let mut d = driver.inner.borrow_mut();
                d.in_flight = false;
                d.stats.completed += 1;
                let lat = done.latency();
                if done.kind == trail_disk::CommandKind::Read {
                    d.stats.read_latency.record(lat);
                } else {
                    d.stats.write_latency.record(lat);
                }
                // The queue wait is the end-to-end latency minus the
                // mechanical service time; both are integer-nanosecond
                // differences of the same virtual clock, so the five
                // components sum *exactly* to the end-to-end latency.
                d.lifecycle.complete(
                    done.issued,
                    done.id.0,
                    RequestBreakdown {
                        queue: lat - done.breakdown.total,
                        overhead: done.breakdown.overhead,
                        seek: done.breakdown.seek,
                        rotation: done.breakdown.rotation,
                        transfer: done.breakdown.transfer,
                        total: lat,
                    },
                );
            }
            queued.done.complete(sim, done);
            driver.dispatch(sim);
        });
        let submit_result = disk.submit(sim, cmd, disk_done);
        // The request was validated at submission and the disk was idle, so
        // the only legitimate rejection is a power loss that raced the
        // dispatch. The disk consumed our token, whose handler drops the
        // request's `Completion` — the submitter hears `Err(Cancelled)` on
        // the next step instead of waiting forever.
        match submit_result {
            Ok(()) => {}
            Err(DiskError::PoweredOff) => {
                self.inner.borrow_mut().in_flight = false;
            }
            Err(DiskError::Failed) => {
                // The member failed between queueing and dispatch. Every
                // queued request is undeliverable; drop them all so their
                // completions cancel-cascade instead of hanging.
                let mut d = self.inner.borrow_mut();
                d.in_flight = false;
                d.queue.clear();
                d.scheduler.clear();
            }
            Err(DiskError::Transient) => {
                // An injected transient error consumed only this command
                // (its completion cancel-cascades); everything still
                // queued remains serviceable, so free the slot and keep
                // dispatching. Record the pending cancellation so its
                // later delivery doesn't clear `in_flight` out from
                // under the command dispatched next.
                {
                    let mut d = self.inner.borrow_mut();
                    d.in_flight = false;
                    d.transient_cancels_pending += 1;
                }
                self.dispatch(sim);
            }
            Err(e) => panic!("validated request rejected by idle disk: {e}"),
        }
    }
}

impl fmt::Debug for StandardDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.borrow();
        f.debug_struct("StandardDriver")
            .field("disk", &d.disk.name())
            .field("queued", &d.queue.len())
            .field("in_flight", &d.in_flight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;
    use std::rc::Rc as StdRc;
    use trail_disk::profiles;
    use trail_sim::SimDuration;

    fn setup() -> (Simulator, StandardDriver) {
        let disk = Disk::new("t", profiles::tiny_test_disk());
        (Simulator::new(), StandardDriver::new(disk))
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut sim, drv) = setup();
        let seen = StdRc::new(StdRefCell::new(None));
        let drv2 = drv.clone();
        let seen2 = StdRc::clone(&seen);
        let write_done = sim.completion(move |sim, d| {
            d.expect("write delivered");
            // Re-entrant submit from a completion handler: safe, because
            // delivery is a fresh simulator event.
            let read_done = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
                *seen2.borrow_mut() = d.expect("read delivered").data
            });
            drv2.submit(sim, IoRequest::read(11, 1), read_done).unwrap();
        });
        drv.submit(
            &mut sim,
            IoRequest::write(11, vec![0xC3; SECTOR_SIZE]),
            write_done,
        )
        .unwrap();
        sim.run();
        assert_eq!(seen.borrow().as_deref().unwrap()[0], 0xC3);
    }

    #[test]
    fn queued_requests_all_complete() {
        let (mut sim, drv) = setup();
        let done = StdRc::new(StdRefCell::new(0u32));
        for i in 0..20u64 {
            let done = StdRc::clone(&done);
            let c = sim.completion(move |_, d| {
                d.expect("delivered");
                *done.borrow_mut() += 1;
            });
            drv.submit(
                &mut sim,
                IoRequest::write(i * 97 % 1000, vec![i as u8; SECTOR_SIZE]),
                c,
            )
            .unwrap();
        }
        assert!(
            drv.queue_depth() > 0,
            "requests should queue behind the first"
        );
        sim.run();
        assert_eq!(*done.borrow(), 20);
        assert_eq!(drv.queue_depth(), 0);
        assert!(!drv.is_busy());
        drv.with_stats(|s| {
            assert_eq!(s.submitted, 20);
            assert_eq!(s.completed, 20);
            assert_eq!(s.write_latency.count(), 20);
            assert!(s.max_queue_depth >= 19);
        });
    }

    #[test]
    fn queueing_inflates_latency() {
        let (mut sim, drv) = setup();
        let lats = StdRc::new(StdRefCell::new(Vec::new()));
        for i in 0..5u64 {
            let lats = StdRc::clone(&lats);
            let c = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
                lats.borrow_mut().push(d.expect("done").latency())
            });
            drv.submit(&mut sim, IoRequest::write(i * 500, vec![0; SECTOR_SIZE]), c)
                .unwrap();
        }
        sim.run();
        let lats = lats.borrow();
        assert_eq!(lats.len(), 5);
        let max = lats.iter().copied().max().unwrap();
        let min = lats.iter().copied().min().unwrap();
        assert!(
            max > min + SimDuration::from_millis(1),
            "later requests should see queueing delay: min {min}, max {max}"
        );
    }

    #[test]
    fn reads_first_priority_overtakes_writes() {
        let disk = Disk::new("t", profiles::tiny_test_disk());
        let drv =
            StandardDriver::with_policy(disk, Box::new(Clook::default()), Priority::ReadsFirst);
        let mut sim = Simulator::new();
        let order = StdRc::new(StdRefCell::new(Vec::new()));
        // First write occupies the disk; then queue 2 writes and 1 read.
        for i in 0..3u64 {
            let order = StdRc::clone(&order);
            let c = sim.completion(move |_, d| {
                d.expect("delivered");
                order.borrow_mut().push(format!("w{i}"));
            });
            drv.submit(&mut sim, IoRequest::write(100 + i, vec![0; SECTOR_SIZE]), c)
                .unwrap();
        }
        let order2 = StdRc::clone(&order);
        let c = sim.completion(move |_, d| {
            d.expect("delivered");
            order2.borrow_mut().push("r".into());
        });
        drv.submit(&mut sim, IoRequest::read(2000, 1), c).unwrap();
        sim.run();
        // The read arrived last but must complete right after the in-flight
        // write (w0), ahead of the two queued writes.
        assert_eq!(order.borrow()[0], "w0");
        assert_eq!(order.borrow()[1], "r");
    }

    #[test]
    fn rejects_malformed_requests() {
        let (mut sim, drv) = setup();
        let total = drv.disk().geometry().total_sectors();
        let cancelled = StdRc::new(StdRefCell::new(0u32));
        let mint = |sim: &Simulator| {
            let cancelled = StdRc::clone(&cancelled);
            sim.completion(move |_, d| {
                assert!(d.is_err(), "rejected request must cancel its completion");
                *cancelled.borrow_mut() += 1;
            })
        };
        let c = mint(&sim);
        assert!(matches!(
            drv.submit(&mut sim, IoRequest::read(total, 1), c),
            Err(DiskError::OutOfRange)
        ));
        let c = mint(&sim);
        assert!(matches!(
            drv.submit(&mut sim, IoRequest::read(0, 0), c),
            Err(DiskError::OutOfRange)
        ));
        let c = mint(&sim);
        assert!(matches!(
            drv.submit(&mut sim, IoRequest::write(0, vec![1]), c),
            Err(DiskError::BadDataLength)
        ));
        sim.run();
        assert_eq!(*cancelled.borrow(), 3);
    }

    #[test]
    fn member_failure_cancels_queued_requests() {
        let (mut sim, drv) = setup();
        let outcomes = StdRc::new(StdRefCell::new(Vec::new()));
        for i in 0..6u64 {
            let outcomes = StdRc::clone(&outcomes);
            let c = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
                outcomes.borrow_mut().push(d.is_ok());
            });
            drv.submit(&mut sim, IoRequest::write(i * 300, vec![0; SECTOR_SIZE]), c)
                .unwrap();
        }
        // Fail the member while the first request is in flight: everything
        // queued behind it must cancel instead of hanging the simulation.
        let clock = trail_sim::FaultClock::new();
        clock.register(drv.disk().fault_sink(trail_disk::DiskRole::Data(0)));
        clock.arm(
            &mut sim,
            &trail_sim::FaultPlan::new().with(trail_sim::Fault {
                at: SimDuration::from_nanos(50),
                target: trail_sim::FaultTarget::Data(0),
                kind: trail_sim::FaultKind::Fail,
            }),
        );
        sim.run();
        assert_eq!(outcomes.borrow().len(), 6, "every completion delivered");
        assert!(outcomes.borrow().iter().all(|ok| !ok), "all cancelled");
        assert_eq!(drv.queue_depth(), 0);
        assert!(!drv.is_busy());
        // New submissions are rejected synchronously.
        let c = sim.completion(|_, d: trail_sim::Delivered<IoDone>| assert!(d.is_err()));
        assert!(matches!(
            drv.submit(&mut sim, IoRequest::read(0, 1), c),
            Err(DiskError::Failed)
        ));
        sim.run();
    }

    #[test]
    fn transient_error_cancels_one_request_and_queue_drains() {
        let (mut sim, drv) = setup();
        // Two charges: the first two dispatches are consumed, the rest of
        // the queue must still drain to completion.
        drv.disk().inject_transient_errors(2);
        let outcomes = StdRc::new(StdRefCell::new(Vec::new()));
        for i in 0..6u64 {
            let outcomes = StdRc::clone(&outcomes);
            let c = sim.completion(move |_, d: trail_sim::Delivered<IoDone>| {
                outcomes.borrow_mut().push(d.is_ok());
            });
            drv.submit(&mut sim, IoRequest::write(i * 300, vec![7; SECTOR_SIZE]), c)
                .unwrap();
        }
        sim.run();
        let outcomes = outcomes.borrow();
        assert_eq!(outcomes.len(), 6, "every completion delivered");
        assert_eq!(outcomes.iter().filter(|ok| !**ok).count(), 2);
        assert_eq!(drv.queue_depth(), 0);
        assert!(!drv.is_busy());
        drv.with_stats(|s| assert_eq!(s.completed, 4));
    }

    #[test]
    fn telemetry_breakdown_sums_exactly_to_latency() {
        use trail_telemetry::{EventKind, MemoryRecorder};

        let (mut sim, drv) = setup();
        let rec = MemoryRecorder::shared();
        drv.set_recorder(rec.clone());
        // Queue several writes so later ones see real queueing delay.
        for i in 0..6u64 {
            let c = sim.completion(|_, _| {});
            drv.submit(&mut sim, IoRequest::write(i * 700, vec![0; SECTOR_SIZE]), c)
                .unwrap();
        }
        sim.run();
        assert_eq!(rec.count_kind("Enqueue"), 6);
        assert_eq!(rec.count_kind("Dispatch"), 6);
        assert_eq!(rec.count_kind("Complete"), 6);
        // Disk-layer phases rode along via the shared recorder.
        assert!(rec.count_kind("RotWait") >= 6);
        let mut saw_queueing = false;
        for e in rec.snapshot() {
            if let EventKind::Complete { breakdown } = e.kind {
                assert!(
                    breakdown.is_exact(),
                    "residual {} ns at req {:?}",
                    breakdown.residual_nanos(),
                    e.req
                );
                saw_queueing |= !breakdown.queue.is_zero();
            }
        }
        assert!(saw_queueing, "some request must have waited in queue");
    }

    #[test]
    fn clook_reduces_total_seek_versus_fifo() {
        // Same interleaved workload under FIFO and C-LOOK; the elevator
        // must finish sooner in total.
        let run = |sched: Box<dyn Scheduler>| -> f64 {
            let disk = Disk::new("t", profiles::tiny_test_disk());
            let drv = StandardDriver::with_policy(disk.clone(), sched, Priority::None);
            let mut sim = Simulator::new();
            let lbas = [0u64, 4000, 100, 4100, 200, 4200, 300, 4300];
            for &lba in &lbas {
                let c = sim.completion(|_, _| {});
                drv.submit(&mut sim, IoRequest::read(lba, 1), c).unwrap();
            }
            sim.run();
            disk.with_stats(|s| s.total_seek.as_millis_f64())
        };
        let fifo = run(Box::<crate::sched::Fifo>::default());
        let clook = run(Box::<Clook>::default());
        assert!(
            clook < fifo,
            "C-LOOK total seek {clook} ms should beat FIFO {fifo} ms"
        );
    }
}
