//! Request-queue scheduling policies.
//!
//! The baseline "standard disk subsystem" (the paper's comparison point)
//! uses a one-way elevator (C-LOOK), which is what Linux's block layer of
//! the era effectively provided; FIFO is available for experiments that
//! need strict arrival order. A separate [`Priority`] policy lets Trail's
//! data-disk scheduling give reads precedence over write-backs (paper §4.3).
//!
//! # Incremental dispatch
//!
//! A [`Scheduler`] is an *index over the queue*, not a function over it:
//! the driver calls [`Scheduler::insert`] once per arrival and
//! [`Scheduler::pop`] once per dispatch. Both built-in policies keep their
//! requests in sorted sets ([`std::collections::BTreeSet`]), so a dispatch
//! costs `O(log n)` instead of the linear scan the original formulation
//! paid — under a deep open-loop backlog the old scan made dispatch
//! quadratic in queue depth (the ROADMAP's C-LOOK note). The dispatch
//! *order* is unchanged: a property test drives both policies against a
//! reference linear-scan implementation and asserts seq-for-seq equality.

use std::collections::BTreeSet;

use trail_disk::{DiskGeometry, HeadPosition, Lba};

/// A scheduler's read-only view of one queued request.
#[derive(Clone, Copy, Debug)]
pub struct QueuedIo {
    /// First sector addressed.
    pub lba: Lba,
    /// Whether the request is a read.
    pub is_read: bool,
    /// Arrival order (lower arrived earlier).
    pub seq: u64,
}

/// Chooses which queued request a driver dispatches next.
///
/// The driver mirrors its queue into the scheduler: every queued request
/// is [`insert`]ed exactly once and leaves via exactly one [`pop`] (or a
/// [`clear`] when the device fails). Implementations may keep any internal
/// index they like; both built-ins use sorted sets for `O(log n)` picks.
///
/// [`insert`]: Scheduler::insert
/// [`pop`]: Scheduler::pop
/// [`clear`]: Scheduler::clear
pub trait Scheduler: std::fmt::Debug {
    /// Indexes a newly queued request. `geometry` maps its LBA onto disk
    /// coordinates for position-aware policies.
    fn insert(&mut self, q: QueuedIo, geometry: &DiskGeometry);

    /// Removes and returns the `seq` of the request to dispatch next.
    /// When `reads_only` is set, only reads are candidates (the caller
    /// guarantees at least one read is queued).
    ///
    /// # Panics
    ///
    /// Implementations may panic when invoked with nothing queued (or
    /// with `reads_only` and no read queued).
    fn pop(&mut self, head: HeadPosition, reads_only: bool) -> u64;

    /// Number of indexed reads.
    fn queued_reads(&self) -> usize;

    /// Total indexed requests.
    fn len(&self) -> usize;

    /// Whether nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every indexed request (device failure drains the queue).
    fn clear(&mut self);
}

/// Picks the smaller of two optional candidates.
fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

/// First-in, first-out dispatch.
#[derive(Clone, Debug, Default)]
pub struct Fifo {
    reads: BTreeSet<u64>,
    writes: BTreeSet<u64>,
}

impl Scheduler for Fifo {
    fn insert(&mut self, q: QueuedIo, _geometry: &DiskGeometry) {
        if q.is_read {
            self.reads.insert(q.seq);
        } else {
            self.writes.insert(q.seq);
        }
    }

    fn pop(&mut self, _head: HeadPosition, reads_only: bool) -> u64 {
        let r = self.reads.first().copied();
        let w = (!reads_only)
            .then(|| self.writes.first().copied())
            .flatten();
        let seq = min_opt(r, w).expect("scheduler invoked with empty queue");
        if !self.reads.remove(&seq) {
            self.writes.remove(&seq);
        }
        seq
    }

    fn queued_reads(&self) -> usize {
        self.reads.len()
    }

    fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }
}

/// Circular one-way elevator (C-LOOK): service the nearest request at or
/// beyond the sweep position; when none remain ahead, wrap back to the
/// lowest-cylinder request.
///
/// The sweep position advances *strictly past* each serviced cylinder.
/// Filtering on the head's cylinder alone would let a sustained stream of
/// arrivals to one hot cylinder capture the arm indefinitely — every new
/// arrival is "at or beyond" a head that never leaves — starving requests
/// farther out. Advancing the boundary guarantees each pending cylinder is
/// visited at most one full sweep after its request arrives.
///
/// Requests are indexed by `(cylinder, seq)` in sorted sets, so each pick
/// is two range lookups (`O(log n)`), not a scan of the queue.
#[derive(Clone, Debug, Default)]
pub struct Clook {
    /// Lowest cylinder the current sweep may still visit.
    sweep_from: u32,
    reads: BTreeSet<(u32, u64)>,
    writes: BTreeSet<(u32, u64)>,
}

impl Clook {
    fn first_at_or_beyond(&self, bound: u32, reads_only: bool) -> Option<(u32, u64)> {
        let r = self.reads.range((bound, 0)..).next().copied();
        let w = (!reads_only)
            .then(|| self.writes.range((bound, 0)..).next().copied())
            .flatten();
        min_opt(r, w)
    }
}

impl Scheduler for Clook {
    fn insert(&mut self, q: QueuedIo, geometry: &DiskGeometry) {
        let cyl = geometry
            .lba_to_chs(q.lba)
            .map(|chs| chs.cylinder)
            .unwrap_or(u32::MAX);
        if q.is_read {
            self.reads.insert((cyl, q.seq));
        } else {
            self.writes.insert((cyl, q.seq));
        }
    }

    fn pop(&mut self, head: HeadPosition, reads_only: bool) -> u64 {
        // The arm may have been moved under us (e.g. by another dispatch
        // path), so the sweep never lags behind the physical head.
        let from = self.sweep_from.max(head.cylinder);
        let (cyl, seq) = self
            .first_at_or_beyond(from, reads_only)
            .or_else(|| self.first_at_or_beyond(0, reads_only))
            .expect("scheduler invoked with empty queue");
        self.sweep_from = cyl.saturating_add(1);
        if !self.reads.remove(&(cyl, seq)) {
            self.writes.remove(&(cyl, seq));
        }
        seq
    }

    fn queued_reads(&self) -> usize {
        self.reads.len()
    }

    fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }
}

/// Whether reads preempt queued writes at dispatch time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Reads and writes compete equally.
    #[default]
    None,
    /// If any read is queued, only reads are candidates (paper §4.3: "data
    /// disk reads are given higher priority than data disk writes").
    ReadsFirst,
}

/// Applies a priority policy, returning the indices (into `queue`) of the
/// candidate requests, ordered by arrival. No queue entries are copied;
/// callers index back into their own slice.
///
/// The driver's hot path now filters inside [`Scheduler::pop`]; this
/// survives as the reference formulation the equivalence property test
/// (and any linear-scan scheduler) builds on.
pub fn apply_priority(queue: &[QueuedIo], priority: Priority) -> Vec<usize> {
    let mut candidates: Vec<usize> = match priority {
        Priority::None => (0..queue.len()).collect(),
        Priority::ReadsFirst => {
            let reads: Vec<usize> = queue
                .iter()
                .enumerate()
                .filter(|(_, q)| q.is_read)
                .map(|(i, _)| i)
                .collect();
            if reads.is_empty() {
                (0..queue.len()).collect()
            } else {
                reads
            }
        }
    };
    candidates.sort_by_key(|&i| queue[i].seq);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;

    fn q(lba: Lba, is_read: bool, seq: u64) -> QueuedIo {
        QueuedIo { lba, is_read, seq }
    }

    fn load(s: &mut dyn Scheduler, g: &DiskGeometry, queue: &[QueuedIo]) {
        for &item in queue {
            s.insert(item, g);
        }
    }

    #[test]
    fn fifo_picks_earliest_arrival() {
        let g = profiles::tiny_test_disk().geometry;
        let queue = vec![q(500, false, 2), q(10, true, 0), q(90, false, 1)];
        let mut s = Fifo::default();
        load(&mut s, &g, &queue);
        assert_eq!(s.pop(HeadPosition::default(), false), 0);
        assert_eq!(s.pop(HeadPosition::default(), false), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clook_services_ahead_of_head_first() {
        let g = profiles::tiny_test_disk().geometry;
        // Tiny disk zone 0: 40 spt, 2 heads => 80 sectors/cylinder.
        // Head at cylinder 4; requests at cylinders 1, 5, 10.
        let queue = vec![q(80, false, 0), q(400, false, 1), q(800, false, 2)];
        let head = HeadPosition {
            cylinder: 4,
            head: 0,
        };
        let mut s = Clook::default();
        load(&mut s, &g, &queue);
        assert_eq!(s.pop(head, false), 1, "cylinder 5 is nearest ahead");
        // Head beyond all requests: wrap to the lowest cylinder.
        let head = HeadPosition {
            cylinder: 20,
            head: 0,
        };
        assert_eq!(s.pop(head, false), 0);
    }

    #[test]
    fn clook_breaks_ties_by_arrival() {
        let g = profiles::tiny_test_disk().geometry;
        let mut s = Clook::default();
        load(&mut s, &g, &[q(81, false, 5), q(80, false, 3)]);
        // Same cylinder (1): earlier arrival wins.
        assert_eq!(s.pop(HeadPosition::default(), false), 3);
    }

    #[test]
    fn reads_only_pop_skips_writes() {
        let g = profiles::tiny_test_disk().geometry;
        let mut s = Clook::default();
        load(&mut s, &g, &[q(1, false, 0), q(2000, true, 1)]);
        assert_eq!(s.queued_reads(), 1);
        assert_eq!(s.pop(HeadPosition::default(), true), 1);
        assert_eq!(s.queued_reads(), 0);
        assert_eq!(s.pop(HeadPosition::default(), false), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn clear_empties_the_index() {
        let g = profiles::tiny_test_disk().geometry;
        let mut s = Fifo::default();
        load(&mut s, &g, &[q(1, false, 0), q(2, true, 1)]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.queued_reads(), 0);
    }

    #[test]
    fn priority_restricts_to_reads_when_present() {
        let queue = vec![q(1, false, 0), q(2, true, 1), q(3, true, 2)];
        let cands = apply_priority(&queue, Priority::ReadsFirst);
        assert_eq!(cands, vec![1, 2]);
        assert!(cands.iter().all(|&i| queue[i].is_read));
        // With no reads queued, writes flow through.
        let wqueue = vec![q(1, false, 0), q(2, false, 1)];
        assert_eq!(apply_priority(&wqueue, Priority::ReadsFirst).len(), 2);
        // Priority::None keeps everything.
        assert_eq!(apply_priority(&queue, Priority::None).len(), 3);
    }
}
