//! Request-queue scheduling policies.
//!
//! The baseline "standard disk subsystem" (the paper's comparison point)
//! uses a one-way elevator (C-LOOK), which is what Linux's block layer of
//! the era effectively provided; FIFO is available for experiments that
//! need strict arrival order. A separate [`Priority`] policy lets Trail's
//! data-disk scheduling give reads precedence over write-backs (paper §4.3).

use trail_disk::{DiskGeometry, HeadPosition, Lba};

/// A scheduler's read-only view of one queued request.
#[derive(Clone, Copy, Debug)]
pub struct QueuedIo {
    /// First sector addressed.
    pub lba: Lba,
    /// Whether the request is a read.
    pub is_read: bool,
    /// Arrival order (lower arrived earlier).
    pub seq: u64,
}

/// Chooses which queued request a driver dispatches next.
pub trait Scheduler: std::fmt::Debug {
    /// Returns the index (into `queue`) of the request to dispatch.
    ///
    /// `queue` is never empty. Implementations must return a valid index.
    fn pick(&mut self, queue: &[QueuedIo], head: HeadPosition, geometry: &DiskGeometry) -> usize;
}

/// First-in, first-out dispatch.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn pick(&mut self, queue: &[QueuedIo], _head: HeadPosition, _geometry: &DiskGeometry) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| q.seq)
            .map(|(i, _)| i)
            .expect("scheduler invoked with empty queue")
    }
}

/// Circular one-way elevator (C-LOOK): service the nearest request at or
/// beyond the sweep position; when none remain ahead, wrap back to the
/// lowest-cylinder request.
///
/// The sweep position advances *strictly past* each serviced cylinder.
/// Filtering on the head's cylinder alone would let a sustained stream of
/// arrivals to one hot cylinder capture the arm indefinitely — every new
/// arrival is "at or beyond" a head that never leaves — starving requests
/// farther out. Advancing the boundary guarantees each pending cylinder is
/// visited at most one full sweep after its request arrives.
#[derive(Clone, Copy, Debug, Default)]
pub struct Clook {
    /// Lowest cylinder the current sweep may still visit.
    sweep_from: u32,
}

impl Scheduler for Clook {
    fn pick(&mut self, queue: &[QueuedIo], head: HeadPosition, geometry: &DiskGeometry) -> usize {
        let key = |q: &QueuedIo| {
            geometry
                .lba_to_chs(q.lba)
                .map(|chs| chs.cylinder)
                .unwrap_or(u32::MAX)
        };
        // The arm may have been moved under us (e.g. by another dispatch
        // path), so the sweep never lags behind the physical head.
        let from = self.sweep_from.max(head.cylinder);
        let nearest_from = |bound: u32| {
            queue
                .iter()
                .enumerate()
                .filter(|(_, q)| key(q) >= bound)
                .min_by_key(|(_, q)| (key(q), q.seq))
        };
        let (i, q) = nearest_from(from)
            .or_else(|| nearest_from(0))
            .expect("scheduler invoked with empty queue");
        self.sweep_from = key(q).saturating_add(1);
        i
    }
}

/// Whether reads preempt queued writes at dispatch time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Reads and writes compete equally.
    #[default]
    None,
    /// If any read is queued, only reads are candidates (paper §4.3: "data
    /// disk reads are given higher priority than data disk writes").
    ReadsFirst,
}

/// Applies a priority policy, returning the indices (into `queue`) of the
/// candidate requests, ordered by arrival. No queue entries are copied;
/// callers index back into their own slice.
pub fn apply_priority(queue: &[QueuedIo], priority: Priority) -> Vec<usize> {
    let mut candidates: Vec<usize> = match priority {
        Priority::None => (0..queue.len()).collect(),
        Priority::ReadsFirst => {
            let reads: Vec<usize> = queue
                .iter()
                .enumerate()
                .filter(|(_, q)| q.is_read)
                .map(|(i, _)| i)
                .collect();
            if reads.is_empty() {
                (0..queue.len()).collect()
            } else {
                reads
            }
        }
    };
    candidates.sort_by_key(|&i| queue[i].seq);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_disk::profiles;

    fn q(lba: Lba, is_read: bool, seq: u64) -> QueuedIo {
        QueuedIo { lba, is_read, seq }
    }

    #[test]
    fn fifo_picks_earliest_arrival() {
        let g = profiles::tiny_test_disk().geometry;
        let queue = vec![q(500, false, 2), q(10, true, 0), q(90, false, 1)];
        let mut s = Fifo;
        assert_eq!(s.pick(&queue, HeadPosition::default(), &g), 1);
    }

    #[test]
    fn clook_services_ahead_of_head_first() {
        let g = profiles::tiny_test_disk().geometry;
        // Tiny disk zone 0: 40 spt, 2 heads => 80 sectors/cylinder.
        // Head at cylinder 4; requests at cylinders 1, 5, 10.
        let queue = vec![q(80, false, 0), q(400, false, 1), q(800, false, 2)];
        let head = HeadPosition {
            cylinder: 4,
            head: 0,
        };
        let mut s = Clook::default();
        assert_eq!(s.pick(&queue, head, &g), 1, "cylinder 5 is nearest ahead");
        // Head beyond all requests: wrap to the lowest cylinder.
        let head = HeadPosition {
            cylinder: 20,
            head: 0,
        };
        assert_eq!(s.pick(&queue, head, &g), 0);
    }

    #[test]
    fn clook_breaks_ties_by_arrival() {
        let g = profiles::tiny_test_disk().geometry;
        let queue = vec![q(81, false, 5), q(80, false, 3)];
        let mut s = Clook::default();
        // Same cylinder (1): earlier arrival wins.
        assert_eq!(s.pick(&queue, HeadPosition::default(), &g), 1);
    }

    #[test]
    fn priority_restricts_to_reads_when_present() {
        let queue = vec![q(1, false, 0), q(2, true, 1), q(3, true, 2)];
        let cands = apply_priority(&queue, Priority::ReadsFirst);
        assert_eq!(cands, vec![1, 2]);
        assert!(cands.iter().all(|&i| queue[i].is_read));
        // With no reads queued, writes flow through.
        let wqueue = vec![q(1, false, 0), q(2, false, 1)];
        assert_eq!(apply_priority(&wqueue, Priority::ReadsFirst).len(), 2);
        // Priority::None keeps everything.
        assert_eq!(apply_priority(&queue, Priority::None).len(), 3);
    }
}
