//! Block-level request and completion types shared by all drivers.

use trail_disk::{CommandKind, Lba, ServiceBreakdown, SECTOR_SIZE};
use trail_sim::SimTime;
use trail_telemetry::StreamId;

/// Identifies a submitted request within one driver.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// The payload side of a block request.
#[derive(Clone, Debug)]
pub enum IoKind {
    /// Read `count` sectors.
    Read {
        /// Number of sectors to read (must be positive).
        count: u32,
    },
    /// Write a sector-aligned payload.
    Write {
        /// The data to write; length must be a positive multiple of
        /// [`SECTOR_SIZE`].
        data: Vec<u8>,
    },
}

impl IoKind {
    /// The number of sectors this request covers.
    pub fn sectors(&self) -> u32 {
        match self {
            IoKind::Read { count } => *count,
            IoKind::Write { data } => (data.len() / SECTOR_SIZE) as u32,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, IoKind::Read { .. })
    }
}

/// A block request: an address, a payload direction, and the stream it
/// belongs to.
///
/// # Examples
///
/// ```
/// use trail_blockio::{IoRequest, StreamId};
///
/// let r = IoRequest::read(9, 4);
/// assert_eq!(r.kind.sectors(), 4);
/// assert!(r.stream.is_untagged());
/// assert_eq!(r.tagged(StreamId(3)).stream, StreamId(3));
/// ```
#[derive(Clone, Debug)]
pub struct IoRequest {
    /// First sector addressed.
    pub lba: Lba,
    /// Direction and payload.
    pub kind: IoKind,
    /// The request stream this belongs to;
    /// [`StreamId::UNTAGGED`] when the submitter does not distinguish
    /// streams. Drivers carry the tag through to submission taps and
    /// routing decisions but never alter semantics based on it.
    pub stream: StreamId,
}

impl IoRequest {
    /// An untagged read of `count` sectors at `lba`.
    #[must_use]
    pub fn read(lba: Lba, count: u32) -> IoRequest {
        IoRequest {
            lba,
            kind: IoKind::Read { count },
            stream: StreamId::UNTAGGED,
        }
    }

    /// An untagged write of `data` at `lba`.
    #[must_use]
    pub fn write(lba: Lba, data: Vec<u8>) -> IoRequest {
        IoRequest {
            lba,
            kind: IoKind::Write { data },
            stream: StreamId::UNTAGGED,
        }
    }

    /// The same request tagged with `stream`.
    #[must_use]
    pub fn tagged(mut self, stream: StreamId) -> IoRequest {
        self.stream = stream;
        self
    }
}

/// Completion record delivered to the submitter's callback.
#[derive(Clone, Debug)]
pub struct IoDone {
    /// The identifier returned at submission.
    pub id: RequestId,
    /// First sector addressed.
    pub lba: Lba,
    /// Read or write.
    pub kind: CommandKind,
    /// Data read (reads only).
    pub data: Option<Vec<u8>>,
    /// Submission time.
    pub issued: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// Mechanical breakdown of the final disk command that serviced this
    /// request.
    pub breakdown: ServiceBreakdown,
}

impl IoDone {
    /// End-to-end latency (queueing + service).
    pub fn latency(&self) -> trail_sim::SimDuration {
        self.completed.duration_since(self.issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_counts() {
        assert_eq!(IoKind::Read { count: 3 }.sectors(), 3);
        assert_eq!(
            IoKind::Write {
                data: vec![0; 2 * SECTOR_SIZE]
            }
            .sectors(),
            2
        );
        assert!(IoKind::Read { count: 1 }.is_read());
        assert!(!IoKind::Write { data: vec![] }.is_read());
    }

    #[test]
    fn latency_is_completed_minus_issued() {
        let done = IoDone {
            id: RequestId(1),
            lba: 0,
            kind: CommandKind::Read,
            data: None,
            issued: SimTime::from_nanos(10),
            completed: SimTime::from_nanos(25),
            breakdown: ServiceBreakdown::default(),
        };
        assert_eq!(done.latency().as_nanos(), 15);
    }
}
