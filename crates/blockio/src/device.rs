//! The block-device abstraction layered drivers program against.
//!
//! [`BlockDevice`] is the object-safe face of "something that services
//! [`IoRequest`]s": a queueing driver over one disk
//! ([`crate::StandardDriver`]), or a whole RAID volume composing several
//! (`trail-volume`). Layers above — Trail's write-back path, the storage
//! stacks — accept `Rc<dyn BlockDevice>`, so a data "disk" can be swapped
//! for an array without the layer knowing.

use std::rc::Rc;

use trail_disk::DiskError;
use trail_sim::{Completion, Simulator};
use trail_telemetry::RecorderHandle;

use crate::request::{IoDone, IoRequest, RequestId};
use crate::tap::TapHandle;

/// An addressable, asynchronous block target.
///
/// Implementations are cheaply cloneable handles (interior mutability),
/// which is why every method takes `&self`.
pub trait BlockDevice: std::fmt::Debug {
    /// Submits a request; `done` is delivered when it is durable (writes)
    /// or the data is available (reads).
    ///
    /// # Errors
    ///
    /// Synchronous rejections ([`DiskError::OutOfRange`],
    /// [`DiskError::BadDataLength`], [`DiskError::Failed`], …) return
    /// without queueing anything; `done` is then cancelled (delivered
    /// `Err(Cancelled)` on the next step).
    fn submit(
        &self,
        sim: &mut Simulator,
        req: IoRequest,
        done: Completion<IoDone>,
    ) -> Result<RequestId, DiskError>;

    /// Addressable capacity in sectors.
    fn capacity_sectors(&self) -> u64;

    /// Requests accepted but not yet completed (queued + in service).
    fn pending(&self) -> usize;

    /// Attaches a telemetry recorder to this device and everything under
    /// it.
    fn set_recorder(&self, recorder: RecorderHandle);

    /// Installs a workload-capture tap reporting this device's requests
    /// under stack-level device index `dev`.
    fn set_tap(&self, tap: TapHandle, dev: u32);
}

/// A shared handle to any block target.
pub type SharedBlockDevice = Rc<dyn BlockDevice>;

impl BlockDevice for crate::StandardDriver {
    fn submit(
        &self,
        sim: &mut Simulator,
        req: IoRequest,
        done: Completion<IoDone>,
    ) -> Result<RequestId, DiskError> {
        // Resolves to the inherent method, not this trait impl.
        crate::StandardDriver::submit(self, sim, req, done)
    }

    fn capacity_sectors(&self) -> u64 {
        self.disk().geometry().total_sectors()
    }

    fn pending(&self) -> usize {
        self.queue_depth() + usize::from(self.is_busy())
    }

    fn set_recorder(&self, recorder: RecorderHandle) {
        crate::StandardDriver::set_recorder(self, recorder);
    }

    fn set_tap(&self, tap: TapHandle, dev: u32) {
        crate::StandardDriver::set_tap(self, tap, dev);
    }
}
