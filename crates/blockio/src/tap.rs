//! Submission taps: observation hooks on the request submission path.
//!
//! A [`SubmitTap`] sees every request the moment a driver accepts it —
//! arrival instant, device, address, length, direction — which is exactly
//! the information a workload trace needs. The tap sits on the *submission*
//! side (not completion), so what it records is the offered load, not the
//! serviced load: replaying a captured stream open-loop reproduces the
//! original arrival process even on a slower stack.
//!
//! Like telemetry recorders, taps default to absent and cost nothing when
//! uninstalled. Unlike recorders, a tap carries the full request address
//! vocabulary, so it lives here in `trail-blockio` where that vocabulary
//! is defined, and every driver above (the baseline driver here, the Trail
//! driver in `trail-core`, the stacks in `trail-db`) forwards to it.

use std::rc::Rc;

use trail_disk::Lba;
use trail_sim::SimTime;
use trail_telemetry::StreamId;

/// Observes accepted request submissions.
///
/// Implementors must not submit I/O from inside the hook: it is called
/// with the driver's internals borrowed. Recording into owned state (a
/// `RefCell<Vec<_>>`) is the intended use.
pub trait SubmitTap {
    /// Called once per accepted request, at submission time.
    ///
    /// `dev` is the stack-level device index the submitter addressed (a
    /// single-disk driver reports the index it was installed with),
    /// `sectors` the request length, `is_read` the direction, and
    /// `stream` the submitter's stream tag
    /// ([`StreamId::UNTAGGED`] when the submitter does not distinguish
    /// streams).
    fn on_submit(
        &self,
        at: SimTime,
        dev: u32,
        lba: Lba,
        sectors: u32,
        is_read: bool,
        stream: StreamId,
    );
}

/// Shared handle to a tap, as stored by instrumented drivers.
pub type TapHandle = Rc<dyn SubmitTap>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[derive(Default)]
    struct CountingTap {
        seen: RefCell<Vec<(u64, u32, bool, StreamId)>>,
    }

    impl SubmitTap for CountingTap {
        fn on_submit(
            &self,
            _at: SimTime,
            _dev: u32,
            lba: Lba,
            sectors: u32,
            is_read: bool,
            stream: StreamId,
        ) {
            self.seen.borrow_mut().push((lba, sectors, is_read, stream));
        }
    }

    #[test]
    fn standard_driver_reports_accepted_submissions_only() {
        use crate::{IoRequest, StandardDriver};
        use trail_disk::{profiles, Disk, SECTOR_SIZE};
        use trail_sim::Simulator;

        let mut sim = Simulator::new();
        let drv = StandardDriver::new(Disk::new("t", profiles::tiny_test_disk()));
        let tap = Rc::new(CountingTap::default());
        drv.set_tap(Rc::clone(&tap) as TapHandle, 3);
        let c = sim.completion(|_, _| {});
        drv.submit(
            &mut sim,
            IoRequest::write(5, vec![1; 2 * SECTOR_SIZE]).tagged(StreamId(7)),
            c,
        )
        .unwrap();
        let c = sim.completion(|_, d| assert!(d.is_err()));
        // Rejected requests must not reach the tap.
        assert!(drv.submit(&mut sim, IoRequest::read(0, 0), c).is_err());
        sim.run();
        assert_eq!(&*tap.seen.borrow(), &[(5, 2, false, StreamId(7))]);
    }
}
