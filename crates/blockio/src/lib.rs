//! # trail-blockio: request queues, schedulers, and the baseline driver
//!
//! The kernel block layer of the Trail reproduction (Chiueh & Huang,
//! *Track-Based Disk Logging*, DSN 2002). The paper evaluates Trail against
//! "Linux's disk subsystem": a queueing driver that services synchronous
//! writes in place, paying full seek and rotational latency. This crate
//! provides that baseline ([`StandardDriver`]) plus the scheduling policies
//! both systems share:
//!
//! - [`Fifo`] and [`Clook`] queue schedulers;
//! - [`Priority::ReadsFirst`], the read-over-write-back policy Trail uses
//!   on its data disks (paper §4.3);
//! - the request/completion vocabulary ([`IoRequest`], [`IoDone`]) used by
//!   every layer above.
//!
//! # Examples
//!
//! ```
//! use trail_sim::Simulator;
//! use trail_disk::{profiles, Disk, SECTOR_SIZE};
//! use trail_blockio::{IoRequest, StandardDriver};
//!
//! let mut sim = Simulator::new();
//! let drv = StandardDriver::new(Disk::new("data", profiles::wd_caviar_10gb()));
//! let done = sim.completion(|_, d: trail_sim::Delivered<trail_blockio::IoDone>| {
//!     // A synchronous write on the baseline pays seek + rotation.
//!     let done = d.expect("delivered");
//!     assert!(done.breakdown.rotation.as_millis_f64() >= 0.0);
//! });
//! drv.submit(&mut sim, IoRequest::write(4096, vec![0u8; SECTOR_SIZE]), done)?;
//! sim.run();
//! # Ok::<(), trail_disk::DiskError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod driver;
mod request;
mod sched;
mod tap;

pub use device::{BlockDevice, SharedBlockDevice};
pub use driver::{DriverStats, StandardDriver};
pub use request::{IoDone, IoKind, IoRequest, RequestId};
pub use sched::{apply_priority, Clook, Fifo, Priority, QueuedIo, Scheduler};
pub use tap::{SubmitTap, TapHandle};
pub use trail_telemetry::StreamId;
