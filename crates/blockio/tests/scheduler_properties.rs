//! Property tests of the block layer: under arbitrary workloads, every
//! request completes exactly once, reads return the last write, and the
//! elevator never loses to FIFO on total seek distance by more than noise.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use trail_blockio::{
    apply_priority, Clook, Fifo, IoDone, IoKind, IoRequest, Priority, QueuedIo, Scheduler,
    StandardDriver, StreamId,
};
use trail_disk::{profiles, Disk, DiskGeometry, HeadPosition, SECTOR_SIZE};
use trail_sim::{SimDuration, Simulator};

/// One generated request: arrival offset, target, read/write, tag.
#[derive(Clone, Debug)]
struct GenReq {
    at_us: u64,
    lba: u64,
    is_read: bool,
    tag: u8,
}

fn arb_workload() -> impl Strategy<Value = Vec<GenReq>> {
    proptest::collection::vec((0u64..60_000, 0u64..4_000, any::<bool>(), 1u8..255), 1..60).prop_map(
        |v| {
            v.into_iter()
                .map(|(at_us, lba, is_read, tag)| GenReq {
                    at_us,
                    lba,
                    is_read,
                    tag,
                })
                .collect()
        },
    )
}

fn run_workload(
    reqs: &[GenReq],
    scheduler: fn() -> Box<dyn trail_blockio::Scheduler>,
    priority: Priority,
) -> (u64, HashMap<u64, u8>, f64) {
    let mut sim = Simulator::new();
    let disk = Disk::new("t", profiles::tiny_test_disk());
    let driver = StandardDriver::with_policy(disk.clone(), scheduler(), priority);
    let completions = Rc::new(RefCell::new(0u64));
    // Model of the medium: last write to each lba, in *completion* order.
    let final_writes: Rc<RefCell<HashMap<u64, u8>>> = Rc::new(RefCell::new(HashMap::new()));
    for r in reqs {
        let r = r.clone();
        let driver = driver.clone();
        let completions = Rc::clone(&completions);
        let final_writes = Rc::clone(&final_writes);
        sim.schedule_in(SimDuration::from_micros(r.at_us), move |sim| {
            let kind = if r.is_read {
                IoKind::Read { count: 1 }
            } else {
                IoKind::Write {
                    data: vec![r.tag; SECTOR_SIZE],
                }
            };
            let c2 = Rc::clone(&completions);
            let fw = Rc::clone(&final_writes);
            let lba = r.lba;
            let tag = r.tag;
            let is_read = r.is_read;
            let done = sim.completion(move |_, d| {
                let done: IoDone = d.expect("delivered");
                *c2.borrow_mut() += 1;
                if is_read {
                    // A read must observe the tag of the last
                    // *completed* write to this lba (or zero).
                    let expect = fw.borrow().get(&lba).copied().unwrap_or(0);
                    assert_eq!(
                        done.data.expect("read data")[0],
                        expect,
                        "read at lba {lba} saw stale data"
                    );
                } else {
                    fw.borrow_mut().insert(lba, tag);
                }
            });
            driver
                .submit(
                    sim,
                    IoRequest {
                        lba,
                        kind,
                        stream: StreamId::UNTAGGED,
                    },
                    done,
                )
                .expect("valid request");
        });
    }
    sim.run();
    let total_seek = disk.with_stats(|s| s.total_seek.as_millis_f64());
    let done = *completions.borrow();
    let writes = final_writes.borrow().clone();
    (done, writes, total_seek)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request completes exactly once; reads are consistent with
    /// completed writes; the medium ends at the last completed write.
    #[test]
    fn all_requests_complete_and_reads_are_fresh(reqs in arb_workload()) {
        for (sched, prio) in [
            (boxed_fifo as fn() -> Box<dyn trail_blockio::Scheduler>, Priority::None),
            (boxed_clook, Priority::None),
            (boxed_clook, Priority::ReadsFirst),
        ] {
            let (done, _, _) = run_workload(&reqs, sched, prio);
            prop_assert_eq!(done, reqs.len() as u64);
        }
    }

    /// C-LOOK's total arm movement never exceeds FIFO's by more than a
    /// modest factor (it exists to reduce it). The slack absorbs
    /// adversarial arrival orders — a stream that happens to arrive
    /// nearly sorted makes FIFO close to optimal while C-LOOK pays one
    /// extra wrap per sweep — without letting a pathological scheduler
    /// regression (multiples of FIFO's movement) slip through.
    #[test]
    fn clook_does_not_explode_seek_distance(reqs in arb_workload()) {
        let (_, _, fifo_seek) = run_workload(&reqs, boxed_fifo, Priority::None);
        let (_, _, clook_seek) = run_workload(&reqs, boxed_clook, Priority::None);
        prop_assert!(
            clook_seek <= fifo_seek * 1.5 + 5.0,
            "C-LOOK seek {clook_seek} ms vs FIFO {fifo_seek} ms"
        );
    }

    /// C-LOOK must not starve a far-edge request under a sustained
    /// hot-cylinder write stream — the classic elevator-starvation
    /// scenario. Once the far request is queued, the ascending sweep
    /// leaves the hot band and services it within (roughly) one sweep,
    /// so the number of hot completions between its submission and its
    /// completion is bounded by the backlog at submission plus one
    /// sweep's worth of new arrivals — never the whole remaining stream.
    #[test]
    fn clook_far_edge_request_is_not_starved(
        hot_count in 150usize..300,
        gap_us in 150u64..400,
        far_after in 20usize..60,
    ) {
        let mut sim = Simulator::new();
        let disk = Disk::new("t", profiles::tiny_test_disk());
        let driver = StandardDriver::with_policy(disk.clone(), Box::new(Clook::default()), Priority::None);
        let hot_done = Rc::new(RefCell::new(0usize));
        let far_done_after: Rc<RefCell<Option<usize>>> = Rc::new(RefCell::new(None));
        for i in 0..hot_count {
            // The hot cylinder: a 32-LBA band at the low edge of the disk.
            let lba = (i % 32) as u64;
            let driver = driver.clone();
            let hot_done = Rc::clone(&hot_done);
            sim.schedule_in(
                SimDuration::from_micros(i as u64 * gap_us),
                move |sim| {
                    let hot_done = Rc::clone(&hot_done);
                    let done = sim.completion(move |_, d| {
                        d.expect("delivered");
                        *hot_done.borrow_mut() += 1;
                    });
                    driver
                        .submit(sim, IoRequest::write(lba, vec![1; SECTOR_SIZE]), done)
                        .expect("valid hot write");
                },
            );
        }
        {
            // One write at the far edge, submitted mid-stream.
            let driver = driver.clone();
            let hot_done = Rc::clone(&hot_done);
            let far_done_after = Rc::clone(&far_done_after);
            sim.schedule_in(
                SimDuration::from_micros(far_after as u64 * gap_us + 1),
                move |sim| {
                    let hot_done = Rc::clone(&hot_done);
                    let far_done_after = Rc::clone(&far_done_after);
                    let done = sim.completion(move |_, d| {
                        d.expect("delivered");
                        *far_done_after.borrow_mut() = Some(*hot_done.borrow());
                    });
                    driver
                        .submit(sim, IoRequest::write(3_999, vec![2; SECTOR_SIZE]), done)
                        .expect("valid far write");
                },
            );
        }
        sim.run();
        prop_assert_eq!(*hot_done.borrow(), hot_count);
        let done_after = far_done_after.borrow().expect("far request completed");
        prop_assert!(
            done_after <= far_after + 64,
            "far-edge request starved: {done_after} hot completions before it \
             (submitted after {far_after} arrivals, {hot_count} total)"
        );
    }
}

/// The pre-index linear-scan schedulers, kept verbatim as the reference
/// the sorted-set implementations are proved order-equivalent against.
mod reference {
    use super::*;

    pub fn fifo_pick(queue: &[QueuedIo]) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| q.seq)
            .map(|(i, _)| i)
            .expect("pick on empty queue")
    }

    pub fn clook_pick(
        queue: &[QueuedIo],
        sweep_from: &mut u32,
        head: HeadPosition,
        g: &DiskGeometry,
    ) -> usize {
        let key = |q: &QueuedIo| {
            g.lba_to_chs(q.lba)
                .map(|chs| chs.cylinder)
                .unwrap_or(u32::MAX)
        };
        let from = (*sweep_from).max(head.cylinder);
        let nearest_from = |bound: u32| {
            queue
                .iter()
                .enumerate()
                .filter(|(_, q)| key(q) >= bound)
                .min_by_key(|(_, q)| (key(q), q.seq))
        };
        let (i, q) = nearest_from(from)
            .or_else(|| nearest_from(0))
            .expect("pick on empty queue");
        *sweep_from = key(q).saturating_add(1);
        i
    }
}

/// One step of the equivalence model: enqueue a request or dispatch one.
#[derive(Clone, Debug)]
enum SchedOp {
    Insert { lba: u64, is_read: bool },
    Pop { head_cyl: u32 },
}

fn arb_sched_ops() -> impl Strategy<Value = Vec<SchedOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..4_000, any::<bool>())
                .prop_map(|(lba, is_read)| SchedOp::Insert { lba, is_read }),
            (0u32..60).prop_map(|head_cyl| SchedOp::Pop { head_cyl }),
        ],
        1..120,
    )
}

/// Drives a sorted-set scheduler and its linear-scan reference through the
/// same insert/pop interleaving (shallow depth, ≤ ~60 queued) and asserts
/// they dispatch the exact same request every time.
fn assert_order_equivalent(
    ops: &[SchedOp],
    mut indexed: Box<dyn Scheduler>,
    mut ref_pick: impl FnMut(&[QueuedIo], HeadPosition) -> usize,
    priority: Priority,
) -> Result<(), TestCaseError> {
    let g = profiles::tiny_test_disk().geometry;
    let mut model: Vec<QueuedIo> = Vec::new();
    let mut next_seq = 0u64;
    for op in ops {
        match *op {
            SchedOp::Insert { lba, is_read } => {
                let q = QueuedIo {
                    lba,
                    is_read,
                    seq: next_seq,
                };
                next_seq += 1;
                model.push(q);
                indexed.insert(q, &g);
            }
            SchedOp::Pop { head_cyl } => {
                if model.is_empty() {
                    continue;
                }
                let head = HeadPosition {
                    cylinder: head_cyl,
                    head: 0,
                };
                // Reference formulation: priority filter, then scan.
                let candidates = apply_priority(&model, priority);
                let cand_views: Vec<QueuedIo> = candidates.iter().map(|&i| model[i]).collect();
                let expected = cand_views[ref_pick(&cand_views, head)].seq;
                // Indexed formulation: filtered range queries.
                let reads_only = priority == Priority::ReadsFirst && indexed.queued_reads() > 0;
                let got = indexed.pop(head, reads_only);
                prop_assert_eq!(got, expected);
                model.retain(|q| q.seq != expected);
            }
        }
    }
    prop_assert_eq!(indexed.len(), model.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sorted-set C-LOOK dispatches seq-for-seq identically to the
    /// original linear-scan C-LOOK, under both priority policies.
    #[test]
    fn indexed_clook_matches_linear_reference(ops in arb_sched_ops()) {
        for priority in [Priority::None, Priority::ReadsFirst] {
            let g = profiles::tiny_test_disk().geometry;
            let mut sweep_from = 0u32;
            assert_order_equivalent(
                &ops,
                Box::new(Clook::default()),
                |queue, head| reference::clook_pick(queue, &mut sweep_from, head, &g),
                priority,
            )?;
        }
    }

    /// Same for FIFO.
    #[test]
    fn indexed_fifo_matches_linear_reference(ops in arb_sched_ops()) {
        for priority in [Priority::None, Priority::ReadsFirst] {
            assert_order_equivalent(
                &ops,
                Box::new(Fifo::default()),
                |queue, _| reference::fifo_pick(queue),
                priority,
            )?;
        }
    }
}

fn boxed_fifo() -> Box<dyn trail_blockio::Scheduler> {
    Box::new(Fifo::default())
}

fn boxed_clook() -> Box<dyn trail_blockio::Scheduler> {
    Box::new(Clook::default())
}
