//! The fault plane is not a new failure semantics — a power cut
//! delivered through an armed [`FaultPlan`] must leave the medium
//! byte-identical to calling [`Disk::power_cut`] directly at the same
//! instant, for arbitrary in-flight write schedules.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use trail_blockio::{IoDone, IoRequest, StandardDriver};
use trail_disk::{profiles, Disk, DiskRole, SECTOR_SIZE};
use trail_sim::{Delivered, FaultClock, FaultPlan, SimDuration, Simulator};

/// One write in the schedule: submit offset, sector address, length.
#[derive(Clone, Debug)]
struct Planned {
    at_us: u64,
    lba: u64,
    sectors: u8,
}

fn arb_schedule() -> impl Strategy<Value = Vec<Planned>> {
    proptest::collection::vec(
        (0u64..40_000, 0u64..900, 1u8..5).prop_map(|(at_us, lba, sectors)| Planned {
            at_us,
            lba,
            sectors,
        }),
        1..24,
    )
}

/// Runs the schedule against a fresh tiny disk, cutting power at
/// `cut_ns`; `through_plan` picks the fault-plane path or the direct
/// call. Returns the medium bytes of every addressed sector plus the
/// per-write outcomes.
fn run(schedule: &[Planned], cut_ns: u64, through_plan: bool) -> (Vec<Vec<u8>>, Vec<bool>) {
    let mut sim = Simulator::new();
    let disk = Disk::new("t", profiles::tiny_test_disk());
    let drv = StandardDriver::new(disk.clone());
    let cut = SimDuration::from_nanos(cut_ns);
    if through_plan {
        let clock = FaultClock::new();
        clock.register(disk.fault_sink(DiskRole::Data(0)));
        clock.arm(&mut sim, &FaultPlan::power_cut_at(cut));
    }
    let outcomes: Rc<RefCell<Vec<Option<bool>>>> =
        Rc::new(RefCell::new(vec![None; schedule.len()]));
    let start = sim.now();
    for (i, w) in schedule.iter().enumerate() {
        let drv2 = drv.clone();
        let fill = (i as u8).wrapping_mul(37) ^ 0x5A;
        let (lba, sectors) = (w.lba, u32::from(w.sectors));
        let outcomes = Rc::clone(&outcomes);
        sim.schedule_at(start + SimDuration::from_micros(w.at_us), move |sim| {
            let out = Rc::clone(&outcomes);
            let c = sim.completion(move |_, d: Delivered<IoDone>| {
                out.borrow_mut()[i] = Some(d.is_ok());
            });
            let data = vec![fill; sectors as usize * SECTOR_SIZE];
            // A submit refused by the unpowered disk drops the token,
            // which cancels it — the handler records the failure.
            let _ = drv2.submit(sim, IoRequest::write(lba, data), c);
        });
    }
    if through_plan {
        sim.run();
    } else {
        // The imperative path the plan replaces: advance to the cut
        // instant, pull the plug by hand, then drain.
        sim.run_until(start + cut);
        disk.power_cut(sim.now());
        sim.run();
    }
    let medium: Vec<Vec<u8>> = schedule
        .iter()
        .flat_map(|w| w.lba..w.lba + u64::from(w.sectors))
        .map(|lba| disk.peek_sector(lba).to_vec())
        .collect();
    let outcomes = outcomes
        .borrow()
        .iter()
        .map(|o| o.unwrap_or(false))
        .collect();
    (medium, outcomes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn planned_power_cut_equals_direct_power_cut(
        schedule in arb_schedule(),
        cut_frac in 0.05f64..0.95,
    ) {
        // An off-grid instant: never exactly a submit time, so the
        // direct path's run_until/cut split is unambiguous.
        let cut_ns = (40_000_000f64 * cut_frac) as u64 * 2 + 13;
        let (medium_plan, acks_plan) = run(&schedule, cut_ns, true);
        let (medium_direct, acks_direct) = run(&schedule, cut_ns, false);
        prop_assert_eq!(acks_plan, acks_direct);
        prop_assert_eq!(medium_plan, medium_direct);
    }
}
