//! Behavior of both file systems over a simulated stack.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use trail_db::StandardStack;
use trail_disk::{profiles, Disk};
use trail_fs::{ExtFs, FileSystem, FsError, Lfs, LfsConfig};
use trail_sim::{Delivered, Simulator};

const BLK: usize = 4096;

fn stack() -> (Simulator, Rc<StandardStack>, Disk) {
    let sim = Simulator::new();
    let disk = Disk::new("fsdev", profiles::wd_caviar_10gb());
    let stack = Rc::new(StandardStack::new(vec![disk.clone()]));
    (sim, stack, disk)
}

/// Runs one write to completion.
fn write_all(
    sim: &mut Simulator,
    fs: &dyn FileSystem,
    file: trail_fs::FileHandle,
    offset: u64,
    data: Vec<u8>,
    sync: bool,
) {
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let token = sim.completion(move |_, del: Delivered<Result<(), FsError>>| {
        del.expect("delivered").expect("write succeeds");
        d.set(true);
    });
    fs.write(sim, file, offset, data, sync, token)
        .expect("accepted");
    sim.run();
    assert!(done.get(), "write completed");
}

fn read_all(
    sim: &mut Simulator,
    fs: &dyn FileSystem,
    file: trail_fs::FileHandle,
    offset: u64,
    len: usize,
) -> Vec<u8> {
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    let token = sim.completion(move |_, del: Delivered<Result<Vec<u8>, FsError>>| {
        *o.borrow_mut() = Some(del.expect("delivered").expect("read succeeds"));
    });
    fs.read(sim, file, offset, len, token).expect("accepted");
    sim.run();
    let data = out.borrow_mut().take();
    data.expect("read completed")
}

// ---------------------------------------------------------------- ExtFs

#[test]
fn extfs_write_read_round_trip() {
    let (mut sim, stack, _) = stack();
    let fs = ExtFs::format(&mut sim, stack, 0, 10_000).unwrap();
    let f = fs.create("notes.txt").unwrap();
    let payload: Vec<u8> = (0..3 * BLK + 500).map(|i| (i % 251) as u8).collect();
    write_all(&mut sim, &fs, f, 0, payload.clone(), true);
    assert_eq!(fs.file_size(f).unwrap(), payload.len() as u64);
    let back = read_all(&mut sim, &fs, f, 0, payload.len());
    assert_eq!(back, payload);
    // Block-aligned partial read.
    let mid = read_all(&mut sim, &fs, f, BLK as u64, BLK);
    assert_eq!(mid, &payload[BLK..2 * BLK]);
}

#[test]
fn extfs_namespace_rules() {
    let (mut sim, stack, _) = stack();
    let fs = ExtFs::format(&mut sim, stack, 0, 10_000).unwrap();
    let f = fs.create("a").unwrap();
    assert_eq!(fs.create("a").unwrap_err(), FsError::FileExists);
    assert_eq!(fs.open("a").unwrap(), f);
    assert_eq!(fs.open("b").unwrap_err(), FsError::NoSuchFile);
    assert_eq!(
        fs.create("this-name-is-way-too-long-to-fit").unwrap_err(),
        FsError::InvalidArgument
    );
    fs.delete("a").unwrap();
    assert_eq!(fs.open("a").unwrap_err(), FsError::NoSuchFile);
    assert_eq!(fs.delete("a").unwrap_err(), FsError::NoSuchFile);
}

#[test]
fn extfs_grows_into_indirect_blocks() {
    let (mut sim, stack, _) = stack();
    let fs = ExtFs::format(&mut sim, stack, 0, 10_000).unwrap();
    let f = fs.create("big").unwrap();
    // 15 blocks: 10 direct + 5 through the indirect block.
    let payload: Vec<u8> = (0..15 * BLK).map(|i| (i % 249) as u8).collect();
    write_all(&mut sim, &fs, f, 0, payload.clone(), true);
    let back = read_all(&mut sim, &fs, f, 0, payload.len());
    assert_eq!(back, payload);
    // Indirect allocation shows up as extra metadata writes.
    assert!(fs.stats().meta_writes >= 2);
}

#[test]
fn extfs_persists_across_remount() {
    let (mut sim, stack, _) = stack();
    let payload: Vec<u8> = (0..12 * BLK).map(|i| (i % 247) as u8).collect();
    {
        let fs = ExtFs::format(&mut sim, Rc::clone(&stack) as _, 0, 10_000).unwrap();
        let f = fs.create("persist").unwrap();
        write_all(&mut sim, &fs, f, 0, payload.clone(), true);
        fs.flush_meta(&mut sim).unwrap();
    }
    let fs = ExtFs::mount(&mut sim, stack as _, 0, 10_000).unwrap();
    let f = fs.open("persist").unwrap();
    assert_eq!(fs.file_size(f).unwrap(), payload.len() as u64);
    let back = read_all(&mut sim, &fs, f, 0, payload.len());
    assert_eq!(back, payload);
}

#[test]
fn extfs_sync_write_costs_metadata_io() {
    let (mut sim, stack, disk) = stack();
    let fs = ExtFs::format(&mut sim, stack, 0, 10_000).unwrap();
    let f = fs.create("log").unwrap();
    disk.reset_stats();
    write_all(&mut sim, &fs, f, 0, vec![7u8; BLK], true);
    // One O_SYNC block append = data block + inode + (dirty directory):
    // at least three separate disk writes.
    let writes = disk.with_stats(|s| s.writes);
    assert!(writes >= 3, "expected >=3 sync writes, saw {writes}");
}

#[test]
fn extfs_rejects_unaligned_io() {
    let (mut sim, stack, _) = stack();
    let fs = ExtFs::format(&mut sim, stack, 0, 10_000).unwrap();
    let f = fs.create("x").unwrap();
    let t = sim.completion(|_, _: Delivered<Result<(), FsError>>| {});
    assert_eq!(
        fs.write(&mut sim, f, 17, vec![1], true, t).unwrap_err(),
        FsError::InvalidArgument
    );
    write_all(&mut sim, &fs, f, 0, vec![1u8; BLK], true);
    let t = sim.completion(|_, _: Delivered<Result<Vec<u8>, FsError>>| {});
    assert_eq!(
        fs.read(&mut sim, f, 17, 10, t).unwrap_err(),
        FsError::InvalidArgument
    );
    let t = sim.completion(|_, _: Delivered<Result<Vec<u8>, FsError>>| {});
    assert_eq!(
        fs.read(&mut sim, f, BLK as u64 * 10, 10, t).unwrap_err(),
        FsError::InvalidArgument,
        "reading past EOF errors"
    );
}

#[test]
fn extfs_in_place_overwrite_skips_indirect_rewrite() {
    // A preallocated file (the DBMS log layout) must pay only data +
    // inode per in-place O_SYNC write — no indirect-block rewrite.
    let (mut sim, stack, disk) = stack();
    let fs = ExtFs::format(&mut sim, stack, 0, 10_000).unwrap();
    let f = fs.create("prealloc").unwrap();
    write_all(&mut sim, &fs, f, 0, vec![0u8; 20 * BLK], true);
    let meta_after_alloc = fs.stats().meta_writes;
    disk.reset_stats();
    // Overwrite a block deep in the indirect range.
    write_all(&mut sim, &fs, f, 15 * BLK as u64, vec![9u8; BLK], true);
    assert_eq!(
        fs.stats().meta_writes,
        meta_after_alloc + 1,
        "overwrite must write only the inode, not the indirect block"
    );
    assert_eq!(disk.with_stats(|s| s.writes), 2, "data + inode only");
}

#[test]
fn extfs_device_loss_cancels_pending_write_completions() {
    // Regression: a device teardown mid-chain used to leak the submitter's
    // callback (it never fired and the pending count never drained). With
    // completion tokens the chain cancels the token instead, so the
    // submitter always hears back.
    let (mut sim, stack, disk) = stack();
    let fs = ExtFs::format(&mut sim, Rc::clone(&stack) as _, 0, 10_000).unwrap();
    let f = fs.create("doomed").unwrap();
    let outcome = Rc::new(RefCell::new(None));
    let o = Rc::clone(&outcome);
    let token = sim.completion(move |_, del: Delivered<Result<(), FsError>>| {
        *o.borrow_mut() = Some(del.is_err());
    });
    fs.write(&mut sim, f, 0, vec![3u8; 4 * BLK], true, token)
        .expect("accepted");
    // Let the first piece land, then cut power before the chain finishes.
    while disk.with_stats(|s| s.writes) == 0 {
        assert!(sim.step(), "chain must make progress");
    }
    disk.power_cut(sim.now());
    sim.run();
    assert_eq!(
        *outcome.borrow(),
        Some(true),
        "host token must be delivered as cancelled, not leaked"
    );
    assert_eq!(sim.completions().orphan_count(), 0, "orphans drained");
}

// ------------------------------------------------------------------ Lfs

#[test]
fn lfs_write_read_round_trip_buffered_and_flushed() {
    let (mut sim, stack, _) = stack();
    let fs = Lfs::new(stack, 0, LfsConfig::default());
    let f = fs.create("seq").unwrap();
    let payload: Vec<u8> = (0..5 * BLK).map(|i| (i % 251) as u8).collect();
    // Async write: still readable (from the segment buffer).
    write_all(&mut sim, &fs, f, 0, payload.clone(), false);
    assert_eq!(read_all(&mut sim, &fs, f, 0, payload.len()), payload);
    // Sync write forces the segment; data still correct from disk.
    write_all(&mut sim, &fs, f, 5 * BLK as u64, payload.clone(), true);
    assert_eq!(
        read_all(&mut sim, &fs, f, 0, 10 * BLK),
        [payload.clone(), payload.clone()].concat()
    );
    assert!(fs.lfs_stats().sync_partial_flushes >= 1);
}

#[test]
fn lfs_async_writes_batch_into_segments() {
    let (mut sim, stack, disk) = stack();
    let fs = Lfs::new(
        stack,
        0,
        LfsConfig {
            segment_blocks: 8,
            segments: 64,
        },
    );
    let f = fs.create("batch").unwrap();
    disk.reset_stats();
    // 32 async block writes = 4 full segments, far fewer disk commands.
    for i in 0..32u64 {
        write_all(&mut sim, &fs, f, i * BLK as u64, vec![i as u8; BLK], false);
    }
    sim.run();
    let disk_writes = disk.with_stats(|s| s.writes);
    assert!(
        disk_writes <= 5,
        "32 async writes should become ~4 segment writes, saw {disk_writes}"
    );
    assert!(fs.lfs_stats().segments_written >= 3);
}

#[test]
fn lfs_overwrites_leave_dead_blocks_and_cleaner_reclaims() {
    let (mut sim, stack, _) = stack();
    let fs = Lfs::new(
        stack,
        0,
        LfsConfig {
            segment_blocks: 8,
            segments: 16,
        },
    );
    let f = fs.create("hot").unwrap();
    // Write 16 blocks, then overwrite all of them: the first two segments
    // become fully dead.
    for round in 0..2 {
        for i in 0..16u64 {
            write_all(
                &mut sim,
                &fs,
                f,
                i * BLK as u64,
                vec![round * 100 + i as u8 + 1; BLK],
                false,
            );
        }
    }
    // Force the tail out.
    write_all(&mut sim, &fs, f, 16 * BLK as u64, vec![0xEE; BLK], true);
    let occupied_before = fs.segment_occupancy();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let token = sim.completion(move |_, del: Delivered<Result<(), FsError>>| {
        del.expect("delivered").expect("clean succeeds");
        d.set(true);
    });
    fs.clean(&mut sim, 4, token);
    sim.run();
    assert!(done.get());
    let stats = fs.lfs_stats();
    assert!(
        stats.segments_cleaned >= 2,
        "cleaned {}",
        stats.segments_cleaned
    );
    // Fully-dead segments cost no I/O; partially-live ones cost read +
    // rewrite — both counters are exercised by this layout.
    assert!(fs.segment_occupancy() <= occupied_before);
    // Data intact after cleaning.
    let back = read_all(&mut sim, &fs, f, 0, 16 * BLK);
    for i in 0..16usize {
        assert_eq!(back[i * BLK], 100 + i as u8 + 1, "block {i}");
    }
}

#[test]
fn lfs_cleaner_costs_io_that_trail_does_not_pay() {
    // The paper's §2 claim, measured: cleaning live data costs a disk read
    // and a re-append per segment.
    let (mut sim, stack, disk) = stack();
    let fs = Lfs::new(
        stack,
        0,
        LfsConfig {
            segment_blocks: 8,
            segments: 16,
        },
    );
    let f = fs.create("live").unwrap();
    for i in 0..16u64 {
        write_all(
            &mut sim,
            &fs,
            f,
            i * BLK as u64,
            vec![i as u8 + 1; BLK],
            false,
        );
    }
    // Overwrite every *other* block: each segment is half dead, so the
    // cleaner must move the live half.
    for i in (0..16u64).step_by(2) {
        write_all(&mut sim, &fs, f, i * BLK as u64, vec![0xAA; BLK], false);
    }
    write_all(&mut sim, &fs, f, 16 * BLK as u64, vec![1u8; BLK], true);
    disk.reset_stats();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let token = sim.completion(move |_, del: Delivered<Result<(), FsError>>| {
        del.expect("delivered").expect("clean succeeds");
        d.set(true);
    });
    fs.clean(&mut sim, 2, token);
    sim.run();
    assert!(done.get());
    let stats = fs.lfs_stats();
    assert!(stats.cleaner_read_bytes > 0, "cleaner must read segments");
    assert!(
        stats.cleaner_rewritten_bytes > 0,
        "cleaner must rewrite live blocks"
    );
    assert!(disk.with_stats(|s| s.reads) > 0);
}

#[test]
fn lfs_delete_frees_segments_without_io() {
    let (mut sim, stack, disk) = stack();
    let fs = Lfs::new(
        stack,
        0,
        LfsConfig {
            segment_blocks: 8,
            segments: 16,
        },
    );
    let f = fs.create("gone").unwrap();
    for i in 0..8u64 {
        write_all(&mut sim, &fs, f, i * BLK as u64, vec![9u8; BLK], false);
    }
    sim.run();
    fs.delete("gone").unwrap();
    disk.reset_stats();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let token = sim.completion(move |_, _: Delivered<Result<(), FsError>>| d.set(true));
    fs.clean(&mut sim, 4, token);
    sim.run();
    assert!(done.get());
    assert_eq!(
        disk.with_stats(|s| s.reads),
        0,
        "fully-dead segments reclaim for free"
    );
}
