//! A log-structured file system (Rosenblum & Ousterhout), scoped to what
//! the paper's §2 comparison needs:
//!
//! - asynchronous writes accumulate in an in-memory **segment buffer** and
//!   reach the disk as large sequential segment writes — LFS's strength;
//! - a synchronous write cannot batch: it forces the partial segment out
//!   immediately and still pays rotational latency at the segment's disk
//!   position — "LFS cannot support synchronous writes well";
//! - overwritten and deleted blocks leave dead space in old segments; the
//!   [`clean`](Lfs::clean) pass reads the live blocks back and re-appends
//!   them — "LFS needs a disk read and a disk write to clean a disk
//!   segment", the GC cost Trail's FIFO track reclamation avoids.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_db::BlockStack;
use trail_sim::{Completion, Delivered, Simulator};

use crate::vfs::{FileHandle, FileSystem, FsError, FsStats, FS_BLOCK_SIZE};

const SECTORS_PER_BLOCK: u64 = (FS_BLOCK_SIZE / 512) as u64;

/// LFS tuning.
#[derive(Clone, Copy, Debug)]
pub struct LfsConfig {
    /// Segment size in file-system blocks (Sprite LFS used 256 KB–1 MB
    /// segments; 64 × 4 KiB = 256 KB).
    pub segment_blocks: u32,
    /// Number of segments on the device.
    pub segments: u32,
}

impl Default for LfsConfig {
    fn default() -> Self {
        LfsConfig {
            segment_blocks: 64,
            segments: 256,
        }
    }
}

/// LFS-specific counters (the cleaner costs the paper talks about).
#[derive(Clone, Copy, Debug, Default)]
pub struct LfsStats {
    /// Full segments written.
    pub segments_written: u64,
    /// Partial-segment forces caused by synchronous writes.
    pub sync_partial_flushes: u64,
    /// Bytes the cleaner read back from the disk.
    pub cleaner_read_bytes: u64,
    /// Bytes the cleaner re-appended to the log.
    pub cleaner_rewritten_bytes: u64,
    /// Segments reclaimed by the cleaner.
    pub segments_cleaned: u64,
}

/// Where a file block currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockAddr {
    Hole,
    /// In the in-memory segment buffer at this block offset.
    Buffered(u32),
    /// On disk: segment and block offset within it.
    OnDisk {
        seg: u32,
        off: u32,
    },
}

#[derive(Clone, Default)]
struct File {
    size: u64,
    map: Vec<BlockAddr>,
}

struct Segment {
    /// Live file blocks: (file, block index) per occupied slot, `None`
    /// when dead.
    slots: Vec<Option<(u32, usize)>>,
}

struct Inner {
    stack: Rc<dyn BlockStack>,
    dev: usize,
    config: LfsConfig,
    dir: HashMap<String, u32>,
    files: Vec<Option<File>>,
    /// The in-memory segment buffer: (file, block index, data) per block.
    buffer: Vec<(u32, usize, Vec<u8>)>,
    /// The segment the buffer will be written to.
    current_seg: u32,
    /// Per-segment liveness (None = free).
    segments: Vec<Option<Segment>>,
    flush_in_flight: bool,
    pending: usize,
    stats: FsStats,
    lfs_stats: LfsStats,
}

/// The log-structured file system. Clones share the mount.
///
/// Metadata (directory, block maps) is kept in memory; this module exists
/// to measure LFS's I/O pattern against Trail's, not to re-derive Sprite
/// LFS's checkpointing (see `DESIGN.md`).
#[derive(Clone)]
pub struct Lfs {
    inner: Rc<RefCell<Inner>>,
}

impl Lfs {
    /// Creates an empty LFS over device `dev`.
    ///
    /// # Panics
    ///
    /// Panics if the configured segments exceed the device.
    pub fn new(stack: Rc<dyn BlockStack>, dev: usize, config: LfsConfig) -> Lfs {
        let segments = (0..config.segments).map(|_| None).collect();
        Lfs {
            inner: Rc::new(RefCell::new(Inner {
                stack,
                dev,
                config,
                dir: HashMap::new(),
                files: Vec::new(),
                buffer: Vec::new(),
                current_seg: 0,
                segments,
                flush_in_flight: false,
                pending: 0,
                stats: FsStats::default(),
                lfs_stats: LfsStats::default(),
            })),
        }
    }

    /// LFS counters.
    pub fn lfs_stats(&self) -> LfsStats {
        self.inner.borrow().lfs_stats
    }

    /// Fraction of segments that hold any data (free-space pressure).
    pub fn segment_occupancy(&self) -> f64 {
        let d = self.inner.borrow();
        d.segments.iter().filter(|s| s.is_some()).count() as f64 / d.segments.len() as f64
    }

    fn first_free_segment(d: &Inner) -> Option<u32> {
        d.segments
            .iter()
            .enumerate()
            .find(|(i, s)| s.is_none() && *i as u32 != d.current_seg)
            .map(|(i, _)| i as u32)
    }

    /// Flushes the segment buffer to `current_seg` as one sequential
    /// write; `on_done` is delivered at completion (or cancelled if the
    /// device dies mid-flush).
    fn flush_segment(
        &self,
        sim: &mut Simulator,
        partial: bool,
        on_done: Completion<Result<(), FsError>>,
    ) {
        let (stack, dev, lba, bytes, seg, entries) = {
            let mut d = self.inner.borrow_mut();
            if d.buffer.is_empty() || d.flush_in_flight {
                // Nothing to write (or a flush is already running; callers
                // serialize forces behind pending_work instead).
                drop(d);
                on_done.complete(sim, Ok(()));
                return;
            }
            d.flush_in_flight = true;
            let seg = d.current_seg;
            let entries: Vec<(u32, usize)> = d.buffer.iter().map(|(f, b, _)| (*f, *b)).collect();
            let mut bytes = Vec::with_capacity(d.buffer.len() * FS_BLOCK_SIZE);
            for (_, _, data) in &d.buffer {
                bytes.extend_from_slice(data);
            }
            let lba = u64::from(seg) * u64::from(d.config.segment_blocks) * SECTORS_PER_BLOCK;
            if partial {
                d.lfs_stats.sync_partial_flushes += 1;
            } else {
                d.lfs_stats.segments_written += 1;
            }
            d.pending += 1;
            (Rc::clone(&d.stack), d.dev, lba, bytes, seg, entries)
        };
        let fs = self.clone();
        let io_done = sim.completion(move |sim: &mut Simulator, del: Delivered<IoDone>| {
            if del.is_err() {
                // The device died mid-flush: release the flush slot and
                // cancel the host's token instead of leaking it. The
                // buffered blocks stay buffered (they were never durable).
                {
                    let mut d = fs.inner.borrow_mut();
                    d.flush_in_flight = false;
                    d.pending -= 1;
                }
                on_done.cancel(sim);
                return;
            }
            {
                let mut d = fs.inner.borrow_mut();
                // Record slot liveness and repoint the block maps.
                let mut slots = Vec::with_capacity(entries.len());
                for (off, &(file, block)) in entries.iter().enumerate() {
                    let live = d.files[file as usize]
                        .as_ref()
                        .map(|f| f.map.get(block) == Some(&BlockAddr::Buffered(off as u32)))
                        .unwrap_or(false);
                    if live {
                        d.files[file as usize].as_mut().expect("checked live").map[block] =
                            BlockAddr::OnDisk {
                                seg,
                                off: off as u32,
                            };
                        slots.push(Some((file, block)));
                    } else {
                        slots.push(None);
                    }
                }
                d.segments[seg as usize] = Some(Segment { slots });
                d.buffer.drain(..entries.len());
                // Re-point any blocks still buffered (written while the
                // flush was in flight).
                let remap: Vec<(u32, usize, u32)> = d
                    .buffer
                    .iter()
                    .enumerate()
                    .map(|(i, (f, b, _))| (*f, *b, i as u32))
                    .collect();
                for (f, b, i) in remap {
                    if let Some(file) = d.files[f as usize].as_mut() {
                        if matches!(file.map.get(b), Some(BlockAddr::Buffered(_))) {
                            file.map[b] = BlockAddr::Buffered(i);
                        }
                    }
                }
                // Advance to a free segment.
                if let Some(next) = Self::first_free_segment(&d) {
                    d.current_seg = next;
                }
                d.flush_in_flight = false;
                d.pending -= 1;
            }
            on_done.complete(sim, Ok(()));
        });
        // A rejected submission (power loss) cancels `io_done`; the
        // handler above then releases the flush slot and cancels the
        // host's token — no leak either way.
        let _ = stack.write(sim, dev, lba, bytes, io_done);
    }

    /// Cleans up to `max_segments` of the deadest segments: reads their
    /// live blocks, re-appends them to the log, and frees the segments.
    /// `done` is delivered when the pass (including the forced re-append
    /// flush) completes, or cancelled on device teardown.
    pub fn clean(
        &self,
        sim: &mut Simulator,
        max_segments: u32,
        done: Completion<Result<(), FsError>>,
    ) {
        // Pick victims by live ratio.
        let victims: Vec<u32> = {
            let d = self.inner.borrow();
            let mut scored: Vec<(usize, usize)> = d
                .segments
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    if i as u32 == d.current_seg {
                        return None;
                    }
                    s.as_ref()
                        .map(|seg| (i, seg.slots.iter().filter(|x| x.is_some()).count()))
                })
                .collect();
            scored.sort_by_key(|&(_, live)| live);
            scored
                .into_iter()
                .take(max_segments as usize)
                .map(|(i, _)| i as u32)
                .collect()
        };
        self.clean_next(sim, victims, 0, done);
    }

    fn clean_next(
        &self,
        sim: &mut Simulator,
        victims: Vec<u32>,
        next: usize,
        done: Completion<Result<(), FsError>>,
    ) {
        if next >= victims.len() {
            // Force the re-appended blocks out so the pass's I/O is fully
            // accounted.
            self.flush_segment(sim, true, done);
            return;
        }
        let seg = victims[next];
        let (stack, dev, lba, nblocks, live) = {
            let mut d = self.inner.borrow_mut();
            let Some(segment) = d.segments[seg as usize].take() else {
                drop(d);
                self.clean_next(sim, victims, next + 1, done);
                return;
            };
            let live: Vec<(u32, (u32, usize))> = segment
                .slots
                .iter()
                .enumerate()
                .filter_map(|(off, s)| s.map(|fb| (off as u32, fb)))
                .collect();
            if live.is_empty() {
                // Nothing live: the segment is free without any I/O.
                d.lfs_stats.segments_cleaned += 1;
                drop(d);
                self.clean_next(sim, victims, next + 1, done);
                return;
            }
            let nblocks = segment.slots.len() as u32;
            let lba = u64::from(seg) * u64::from(d.config.segment_blocks) * SECTORS_PER_BLOCK;
            d.lfs_stats.segments_cleaned += 1;
            d.lfs_stats.cleaner_read_bytes += u64::from(nblocks) * FS_BLOCK_SIZE as u64;
            d.pending += 1;
            (Rc::clone(&d.stack), d.dev, lba, nblocks, live)
        };
        let fs = self.clone();
        let io_done = sim.completion(move |sim: &mut Simulator, del: Delivered<IoDone>| {
            let Ok(res) = del else {
                // Device teardown mid-clean: release the pending slot and
                // cancel the pass's token.
                fs.inner.borrow_mut().pending -= 1;
                done.cancel(sim);
                return;
            };
            let data = res.data.expect("segment read");
            {
                let mut d = fs.inner.borrow_mut();
                for &(off, (file, block)) in &live {
                    // Only re-append if the block still points here
                    // (it may have been overwritten meanwhile).
                    let still = d.files[file as usize]
                        .as_ref()
                        .map(|f| f.map.get(block) == Some(&BlockAddr::OnDisk { seg, off }))
                        .unwrap_or(false);
                    if !still {
                        continue;
                    }
                    let from = off as usize * FS_BLOCK_SIZE;
                    let bytes = data[from..from + FS_BLOCK_SIZE].to_vec();
                    let idx = d.buffer.len() as u32;
                    d.buffer.push((file, block, bytes));
                    d.files[file as usize].as_mut().expect("checked live").map[block] =
                        BlockAddr::Buffered(idx);
                    d.lfs_stats.cleaner_rewritten_bytes += FS_BLOCK_SIZE as u64;
                }
                d.pending -= 1;
            }
            fs.clean_next(sim, victims, next + 1, done);
        });
        let _ = stack.read(sim, dev, lba, nblocks * SECTORS_PER_BLOCK as u32, io_done);
    }
}

impl FileSystem for Lfs {
    fn create(&self, name: &str) -> Result<FileHandle, FsError> {
        let mut d = self.inner.borrow_mut();
        if name.is_empty() || name.len() > 64 {
            return Err(FsError::InvalidArgument);
        }
        if d.dir.contains_key(name) {
            return Err(FsError::FileExists);
        }
        let ino = match d.files.iter().position(Option::is_none) {
            Some(i) => {
                d.files[i] = Some(File::default());
                i as u32
            }
            None => {
                d.files.push(Some(File::default()));
                (d.files.len() - 1) as u32
            }
        };
        d.dir.insert(name.to_string(), ino);
        Ok(FileHandle(ino))
    }

    fn open(&self, name: &str) -> Result<FileHandle, FsError> {
        let d = self.inner.borrow();
        d.dir
            .get(name)
            .map(|&i| FileHandle(i))
            .ok_or(FsError::NoSuchFile)
    }

    fn delete(&self, name: &str) -> Result<(), FsError> {
        let mut d = self.inner.borrow_mut();
        let ino = *d.dir.get(name).ok_or(FsError::NoSuchFile)?;
        d.dir.remove(name);
        let file = d.files[ino as usize].take().ok_or(FsError::BadHandle)?;
        // Kill the segment slots the file occupied.
        for (block, addr) in file.map.iter().enumerate() {
            if let BlockAddr::OnDisk { seg, off } = addr {
                if let Some(s) = d.segments[*seg as usize].as_mut() {
                    s.slots[*off as usize] = None;
                }
                let _ = block;
            }
        }
        Ok(())
    }

    fn file_size(&self, file: FileHandle) -> Result<u64, FsError> {
        let d = self.inner.borrow();
        d.files
            .get(file.0 as usize)
            .and_then(Option::as_ref)
            .map(|f| f.size)
            .ok_or(FsError::BadHandle)
    }

    fn write(
        &self,
        sim: &mut Simulator,
        file: FileHandle,
        offset: u64,
        data: Vec<u8>,
        sync: bool,
        done: Completion<Result<(), FsError>>,
    ) -> Result<(), FsError> {
        let buffer_full = {
            let mut d = self.inner.borrow_mut();
            if data.is_empty() || !offset.is_multiple_of(FS_BLOCK_SIZE as u64) {
                return Err(FsError::InvalidArgument);
            }
            if d.files
                .get(file.0 as usize)
                .and_then(Option::as_ref)
                .is_none()
            {
                return Err(FsError::BadHandle);
            }
            let first = (offset / FS_BLOCK_SIZE as u64) as usize;
            let nblocks = data.len().div_ceil(FS_BLOCK_SIZE);
            for i in 0..nblocks {
                let from = i * FS_BLOCK_SIZE;
                let to = ((i + 1) * FS_BLOCK_SIZE).min(data.len());
                let mut bytes = data[from..to].to_vec();
                bytes.resize(FS_BLOCK_SIZE, 0);
                // Kill the previous location.
                let prev = {
                    let f = d.files[file.0 as usize].as_mut().expect("checked");
                    while f.map.len() <= first + i {
                        f.map.push(BlockAddr::Hole);
                    }
                    f.map[first + i]
                };
                if let BlockAddr::OnDisk { seg, off } = prev {
                    if let Some(s) = d.segments[seg as usize].as_mut() {
                        s.slots[off as usize] = None;
                    }
                }
                let idx = d.buffer.len() as u32;
                d.buffer.push((file.0, first + i, bytes));
                d.files[file.0 as usize].as_mut().expect("checked").map[first + i] =
                    BlockAddr::Buffered(idx);
            }
            let end = offset + data.len() as u64;
            let f = d.files[file.0 as usize].as_mut().expect("checked");
            if end > f.size {
                f.size = end;
            }
            if sync {
                d.stats.sync_writes += 1;
            } else {
                d.stats.async_writes += 1;
            }
            d.stats.bytes_written += data.len() as u64;
            d.buffer.len() as u32 >= d.config.segment_blocks
        };
        if sync {
            // A synchronous write cannot batch: force the partial segment.
            self.flush_segment(sim, true, done);
        } else if buffer_full {
            let flush_done = sim.completion(|_, _: Delivered<Result<(), FsError>>| {});
            self.flush_segment(sim, false, flush_done);
            done.complete(sim, Ok(()));
        } else {
            done.complete(sim, Ok(()));
        }
        Ok(())
    }

    fn read(
        &self,
        sim: &mut Simulator,
        file: FileHandle,
        offset: u64,
        len: usize,
        done: Completion<Result<Vec<u8>, FsError>>,
    ) -> Result<(), FsError> {
        let (plan, take) = {
            let mut d = self.inner.borrow_mut();
            if !offset.is_multiple_of(FS_BLOCK_SIZE as u64) || len == 0 {
                return Err(FsError::InvalidArgument);
            }
            let size = d
                .files
                .get(file.0 as usize)
                .and_then(Option::as_ref)
                .map(|f| f.size)
                .ok_or(FsError::BadHandle)?;
            if offset >= size {
                return Err(FsError::InvalidArgument);
            }
            let take = len.min((size - offset) as usize);
            let first = (offset / FS_BLOCK_SIZE as u64) as usize;
            let nblocks = take.div_ceil(FS_BLOCK_SIZE);
            let f = d.files[file.0 as usize].as_ref().expect("checked");
            let plan: Vec<BlockAddr> = (first..first + nblocks)
                .map(|i| f.map.get(i).copied().unwrap_or(BlockAddr::Hole))
                .collect();
            d.stats.reads += 1;
            d.pending += 1;
            (plan, take)
        };
        self.gather(sim, plan, Vec::new(), take, done);
        Ok(())
    }

    fn pending_work(&self) -> usize {
        let d = self.inner.borrow();
        d.pending + d.stack.pending_work()
    }

    fn stats(&self) -> FsStats {
        self.inner.borrow().stats
    }
}

impl Lfs {
    fn gather(
        &self,
        sim: &mut Simulator,
        plan: Vec<BlockAddr>,
        mut acc: Vec<u8>,
        take: usize,
        done: Completion<Result<Vec<u8>, FsError>>,
    ) {
        if acc.len() >= take || acc.len() / FS_BLOCK_SIZE >= plan.len() {
            acc.truncate(take);
            self.inner.borrow_mut().pending -= 1;
            done.complete(sim, Ok(acc));
            return;
        }
        let addr = plan[acc.len() / FS_BLOCK_SIZE];
        match addr {
            BlockAddr::Hole => {
                acc.extend_from_slice(&[0u8; FS_BLOCK_SIZE]);
                self.gather(sim, plan, acc, take, done);
            }
            BlockAddr::Buffered(idx) => {
                let bytes = self.inner.borrow().buffer[idx as usize].2.clone();
                acc.extend_from_slice(&bytes);
                self.gather(sim, plan, acc, take, done);
            }
            BlockAddr::OnDisk { seg, off } => {
                let (stack, dev, lba) = {
                    let d = self.inner.borrow();
                    let lba = (u64::from(seg) * u64::from(d.config.segment_blocks)
                        + u64::from(off))
                        * SECTORS_PER_BLOCK;
                    (Rc::clone(&d.stack), d.dev, lba)
                };
                let fs = self.clone();
                let io_done = sim.completion(move |sim: &mut Simulator, del: Delivered<IoDone>| {
                    let Ok(res) = del else {
                        fs.inner.borrow_mut().pending -= 1;
                        done.cancel(sim);
                        return;
                    };
                    let data = res.data.expect("read data");
                    let mut acc = acc;
                    if acc.is_empty() {
                        // First block: adopt the device's buffer outright.
                        acc = data;
                    } else {
                        acc.extend_from_slice(&data);
                    }
                    fs.gather(sim, plan, acc, take, done);
                });
                let _ = stack.read(sim, dev, lba, SECTORS_PER_BLOCK as u32, io_done);
            }
        }
    }
}
