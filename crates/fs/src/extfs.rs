//! An ext2-like file system: inode table, direct + single-indirect block
//! pointers, and a flat root directory.
//!
//! The point of this module is the **synchronous-write cost structure**:
//! an `O_SYNC` write issues the data block(s), then the inode sector, then
//! any touched indirect block, then a dirty directory block — each a
//! separate synchronous write, each paying seek + rotation on the standard
//! stack and almost nothing on Trail. That is the "EXT2" vs "EXT2+Trail"
//! difference of the paper's Table 2, produced structurally.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use trail_blockio::IoDone;
use trail_db::BlockStack;
use trail_sim::{Completion, Delivered, Simulator};

use crate::vfs::{FileHandle, FileSystem, FsError, FsStats, FS_BLOCK_SIZE};

const MAGIC: u32 = 0x4558_5446; // "EXTF"
const SECTORS_PER_BLOCK: u64 = (FS_BLOCK_SIZE / 512) as u64;
/// Maximum files.
const N_INODES: usize = 64;
/// Directory entry: 24-byte name + u32 inode + used flag.
const NAME_LEN: usize = 24;
const DIRECT: usize = 10;
/// Pointers per indirect block.
const PER_INDIRECT: usize = FS_BLOCK_SIZE / 4;
/// Inode table starts at sector 8 (after the superblock block).
const INODE_START_SECTOR: u64 = SECTORS_PER_BLOCK;
/// First data block, leaving room for superblock + inode table.
const DATA_START_BLOCK: u32 = 16;

#[derive(Clone, Default)]
struct Inode {
    used: bool,
    size: u64,
    direct: [u32; DIRECT],
    indirect: u32,
    /// Cached indirect pointers (loaded at mount / built at allocation).
    indirect_map: Vec<u32>,
}

impl Inode {
    fn encode(&self) -> [u8; 512] {
        let mut b = [0u8; 512];
        b[0] = u8::from(self.used);
        b[1..9].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            b[9 + i * 4..13 + i * 4].copy_from_slice(&d.to_le_bytes());
        }
        b[9 + DIRECT * 4..13 + DIRECT * 4].copy_from_slice(&self.indirect.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Inode {
        let mut direct = [0u32; DIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u32::from_le_bytes(b[9 + i * 4..13 + i * 4].try_into().expect("len"));
        }
        Inode {
            used: b[0] != 0,
            size: u64::from_le_bytes(b[1..9].try_into().expect("len")),
            direct,
            indirect: u32::from_le_bytes(
                b[9 + DIRECT * 4..13 + DIRECT * 4].try_into().expect("len"),
            ),
            indirect_map: Vec::new(),
        }
    }

    /// The data block holding file block index `i`, or 0 if unallocated.
    fn block_at(&self, i: usize) -> u32 {
        if i < DIRECT {
            self.direct[i]
        } else {
            self.indirect_map.get(i - DIRECT).copied().unwrap_or(0)
        }
    }
}

struct Inner {
    stack: Rc<dyn BlockStack>,
    dev: usize,
    dir: HashMap<String, u32>,
    inodes: Vec<Inode>,
    next_block: u32,
    free_blocks: Vec<u32>,
    capacity_blocks: u32,
    dir_dirty: bool,
    pending: usize,
    stats: FsStats,
}

/// The ext2-like file system. Clones share the mount.
///
/// # Examples
///
/// See the `filesystem` integration tests and the `fs_compare` bench; a
/// mount needs a simulated stack, which makes inline examples long.
#[derive(Clone)]
pub struct ExtFs {
    inner: Rc<RefCell<Inner>>,
}

fn write_blocking(
    sim: &mut Simulator,
    stack: &dyn BlockStack,
    dev: usize,
    lba: u64,
    data: Vec<u8>,
) -> Result<(), FsError> {
    let done = Rc::new(std::cell::Cell::new(false));
    let d2 = Rc::clone(&done);
    let token = sim.completion(move |_, d: Delivered<IoDone>| {
        if d.is_ok() {
            d2.set(true);
        }
    });
    stack
        .write(sim, dev, lba, data, token)
        .map_err(FsError::Storage)?;
    sim.run();
    assert!(done.get(), "blocking write did not complete");
    Ok(())
}

impl ExtFs {
    /// Formats device `dev` (writes an empty superblock) and mounts it.
    ///
    /// Runs as an offline tool (drains the event queue).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn format(
        sim: &mut Simulator,
        stack: Rc<dyn BlockStack>,
        dev: usize,
        capacity_blocks: u32,
    ) -> Result<ExtFs, FsError> {
        let fs = ExtFs {
            inner: Rc::new(RefCell::new(Inner {
                stack: Rc::clone(&stack),
                dev,
                dir: HashMap::new(),
                inodes: vec![Inode::default(); N_INODES],
                next_block: DATA_START_BLOCK,
                free_blocks: Vec::new(),
                capacity_blocks,
                dir_dirty: false,
                pending: 0,
                stats: FsStats::default(),
            })),
        };
        let dir_block = fs.encode_directory();
        write_blocking(sim, stack.as_ref(), dev, 0, dir_block)?;
        Ok(fs)
    }

    /// Mounts a previously formatted device: reads the superblock, the
    /// directory, and the inode table (blocking).
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidArgument`] if the superblock is not an ExtFs one.
    pub fn mount(
        sim: &mut Simulator,
        stack: Rc<dyn BlockStack>,
        dev: usize,
        capacity_blocks: u32,
    ) -> Result<ExtFs, FsError> {
        let sb = trail_db::read_blocking(sim, stack.as_ref(), dev, 0, SECTORS_PER_BLOCK as u32)
            .map_err(FsError::Storage)?;
        if u32::from_le_bytes(sb[0..4].try_into().expect("len")) != MAGIC {
            return Err(FsError::InvalidArgument);
        }
        let mut dir = HashMap::new();
        for e in 0..N_INODES {
            let off = 8 + e * (NAME_LEN + 8);
            if sb[off] == 0 {
                continue;
            }
            let name_end = sb[off + 1..off + 1 + NAME_LEN]
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(NAME_LEN);
            let name = String::from_utf8_lossy(&sb[off + 1..off + 1 + name_end]).into_owned();
            let ino = u32::from_le_bytes(
                sb[off + 1 + NAME_LEN..off + 5 + NAME_LEN]
                    .try_into()
                    .expect("len"),
            );
            dir.insert(name, ino);
        }
        // Inode table.
        let itable = trail_db::read_blocking(
            sim,
            stack.as_ref(),
            dev,
            INODE_START_SECTOR,
            N_INODES as u32,
        )
        .map_err(FsError::Storage)?;
        let mut inodes: Vec<Inode> = itable.chunks_exact(512).map(Inode::decode).collect();
        // Load indirect maps and rebuild the allocation frontier.
        let mut max_block = DATA_START_BLOCK - 1;
        for ino in inodes.iter_mut() {
            if !ino.used {
                continue;
            }
            if ino.indirect != 0 {
                max_block = max_block.max(ino.indirect);
                let raw = trail_db::read_blocking(
                    sim,
                    stack.as_ref(),
                    dev,
                    u64::from(ino.indirect) * SECTORS_PER_BLOCK,
                    SECTORS_PER_BLOCK as u32,
                )
                .map_err(FsError::Storage)?;
                ino.indirect_map = raw
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("len")))
                    .take_while(|&b| b != 0)
                    .collect();
            }
            for i in 0.. {
                let b = ino.block_at(i);
                if b == 0 {
                    break;
                }
                max_block = max_block.max(b);
            }
        }
        Ok(ExtFs {
            inner: Rc::new(RefCell::new(Inner {
                stack,
                dev,
                dir,
                inodes,
                next_block: max_block + 1,
                free_blocks: Vec::new(),
                capacity_blocks,
                dir_dirty: false,
                pending: 0,
                stats: FsStats::default(),
            })),
        })
    }

    /// Persists the directory and every inode (blocking; used at clean
    /// unmount and in tests before remounting).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn flush_meta(&self, sim: &mut Simulator) -> Result<(), FsError> {
        let (stack, dev, dir_block, inode_writes) = {
            let mut d = self.inner.borrow_mut();
            let dir_block = self_encode_directory(&d);
            let inode_writes: Vec<(u64, Vec<u8>)> = d
                .inodes
                .iter()
                .enumerate()
                .map(|(i, ino)| (INODE_START_SECTOR + i as u64, ino.encode().to_vec()))
                .collect();
            d.dir_dirty = false;
            (Rc::clone(&d.stack), d.dev, dir_block, inode_writes)
        };
        write_blocking(sim, stack.as_ref(), dev, 0, dir_block)?;
        for (lba, bytes) in inode_writes {
            write_blocking(sim, stack.as_ref(), dev, lba, bytes)?;
        }
        // Indirect blocks.
        let indirect_writes: Vec<(u64, Vec<u8>)> = {
            let d = self.inner.borrow();
            d.inodes
                .iter()
                .filter(|i| i.used && i.indirect != 0)
                .map(|i| {
                    (
                        u64::from(i.indirect) * SECTORS_PER_BLOCK,
                        encode_indirect(&i.indirect_map),
                    )
                })
                .collect()
        };
        for (lba, bytes) in indirect_writes {
            write_blocking(sim, stack.as_ref(), dev, lba, bytes)?;
        }
        Ok(())
    }

    fn encode_directory(&self) -> Vec<u8> {
        let d = self.inner.borrow();
        let mut b = vec![0u8; FS_BLOCK_SIZE];
        b[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        b[4..8].copy_from_slice(&(N_INODES as u32).to_le_bytes());
        for (slot, (name, &ino)) in d.dir.iter().enumerate() {
            let off = 8 + slot * (NAME_LEN + 8);
            b[off] = 1;
            let n = name.as_bytes();
            b[off + 1..off + 1 + n.len()].copy_from_slice(n);
            b[off + 1 + NAME_LEN..off + 5 + NAME_LEN].copy_from_slice(&ino.to_le_bytes());
        }
        b
    }

    /// Allocates one data block.
    fn alloc_block(d: &mut Inner) -> Result<u32, FsError> {
        if let Some(b) = d.free_blocks.pop() {
            return Ok(b);
        }
        if d.next_block >= d.capacity_blocks {
            return Err(FsError::NoSpace);
        }
        let b = d.next_block;
        d.next_block += 1;
        Ok(b)
    }
}

fn encode_indirect(map: &[u32]) -> Vec<u8> {
    let mut b = vec![0u8; FS_BLOCK_SIZE];
    for (i, &blk) in map.iter().enumerate().take(PER_INDIRECT) {
        b[i * 4..i * 4 + 4].copy_from_slice(&blk.to_le_bytes());
    }
    b
}

impl FileSystem for ExtFs {
    fn create(&self, name: &str) -> Result<FileHandle, FsError> {
        let mut d = self.inner.borrow_mut();
        if name.is_empty() || name.len() > NAME_LEN {
            return Err(FsError::InvalidArgument);
        }
        if d.dir.contains_key(name) {
            return Err(FsError::FileExists);
        }
        if d.dir.len() >= N_INODES {
            return Err(FsError::NoSpace);
        }
        let ino = d
            .inodes
            .iter()
            .position(|i| !i.used)
            .ok_or(FsError::NoSpace)? as u32;
        d.inodes[ino as usize] = Inode {
            used: true,
            ..Inode::default()
        };
        d.dir.insert(name.to_string(), ino);
        d.dir_dirty = true;
        Ok(FileHandle(ino))
    }

    fn open(&self, name: &str) -> Result<FileHandle, FsError> {
        let d = self.inner.borrow();
        d.dir
            .get(name)
            .map(|&i| FileHandle(i))
            .ok_or(FsError::NoSuchFile)
    }

    fn delete(&self, name: &str) -> Result<(), FsError> {
        let mut d = self.inner.borrow_mut();
        let ino = *d.dir.get(name).ok_or(FsError::NoSuchFile)?;
        d.dir.remove(name);
        let inode = std::mem::take(&mut d.inodes[ino as usize]);
        for i in 0.. {
            let b = inode.block_at(i);
            if b == 0 {
                break;
            }
            d.free_blocks.push(b);
        }
        if inode.indirect != 0 {
            let ind = inode.indirect;
            d.free_blocks.push(ind);
        }
        d.dir_dirty = true;
        Ok(())
    }

    fn file_size(&self, file: FileHandle) -> Result<u64, FsError> {
        let d = self.inner.borrow();
        let ino = d
            .inodes
            .get(file.0 as usize)
            .filter(|i| i.used)
            .ok_or(FsError::BadHandle)?;
        Ok(ino.size)
    }

    fn write(
        &self,
        sim: &mut Simulator,
        file: FileHandle,
        offset: u64,
        data: Vec<u8>,
        _sync: bool,
        done: Completion<Result<(), FsError>>,
    ) -> Result<(), FsError> {
        // ExtFs treats every write as O_SYNC, the paper's configuration.
        let (stack, dev, writes) = {
            let mut d = self.inner.borrow_mut();
            if data.is_empty() || !offset.is_multiple_of(FS_BLOCK_SIZE as u64) {
                return Err(FsError::InvalidArgument);
            }
            if d.inodes.get(file.0 as usize).filter(|i| i.used).is_none() {
                return Err(FsError::BadHandle);
            }
            let first = (offset / FS_BLOCK_SIZE as u64) as usize;
            let nblocks = data.len().div_ceil(FS_BLOCK_SIZE);
            if first + nblocks > DIRECT + PER_INDIRECT {
                return Err(FsError::NoSpace);
            }
            // Allocate missing blocks (and the indirect block on first
            // spill past the direct pointers). The indirect block is only
            // rewritten when a pointer in it actually changed — an
            // in-place overwrite of an allocated block does not touch it.
            let mut indirect_touched = false;
            for i in first..first + nblocks {
                if d.inodes[file.0 as usize].block_at(i) != 0 {
                    continue;
                }
                let b = Self::alloc_block(&mut d)?;
                let ino = &mut d.inodes[file.0 as usize];
                if i < DIRECT {
                    ino.direct[i] = b;
                } else {
                    indirect_touched = true;
                    while ino.indirect_map.len() < i - DIRECT {
                        ino.indirect_map.push(0);
                    }
                    ino.indirect_map.push(b);
                }
            }
            if indirect_touched && d.inodes[file.0 as usize].indirect == 0 {
                let b = Self::alloc_block(&mut d)?;
                d.inodes[file.0 as usize].indirect = b;
            }
            let end = offset + data.len() as u64;
            let ino = &mut d.inodes[file.0 as usize];
            if end > ino.size {
                ino.size = end;
            }
            // Assemble the synchronous write chain: data runs, then the
            // inode, then the indirect block, then a dirty directory.
            let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut i = 0usize;
            while i < nblocks {
                let start_blk = d.inodes[file.0 as usize].block_at(first + i);
                let mut run = 1usize;
                while i + run < nblocks
                    && d.inodes[file.0 as usize].block_at(first + i + run) == start_blk + run as u32
                {
                    run += 1;
                }
                let from = i * FS_BLOCK_SIZE;
                let to = ((i + run) * FS_BLOCK_SIZE).min(data.len());
                let mut bytes = data[from..to].to_vec();
                let pad = (FS_BLOCK_SIZE - bytes.len() % FS_BLOCK_SIZE) % FS_BLOCK_SIZE;
                bytes.resize(bytes.len() + pad, 0);
                writes.push((u64::from(start_blk) * SECTORS_PER_BLOCK, bytes));
                i += run;
            }
            let inode_sector = d.inodes[file.0 as usize].encode().to_vec();
            let indirect_write = if indirect_touched {
                let ino = &d.inodes[file.0 as usize];
                Some((
                    u64::from(ino.indirect) * SECTORS_PER_BLOCK,
                    encode_indirect(&ino.indirect_map),
                ))
            } else {
                None
            };
            writes.push((INODE_START_SECTOR + u64::from(file.0), inode_sector));
            d.stats.meta_writes += 1;
            if let Some(w) = indirect_write {
                writes.push(w);
                d.stats.meta_writes += 1;
            }
            if d.dir_dirty {
                writes.push((0, self_encode_directory(&d)));
                d.dir_dirty = false;
                d.stats.meta_writes += 1;
            }
            d.stats.sync_writes += 1;
            d.stats.bytes_written += data.len() as u64;
            d.pending += 1;
            (Rc::clone(&d.stack), d.dev, writes)
        };
        self.chain_writes(sim, stack, dev, writes, 0, done);
        Ok(())
    }

    fn read(
        &self,
        sim: &mut Simulator,
        file: FileHandle,
        offset: u64,
        len: usize,
        done: Completion<Result<Vec<u8>, FsError>>,
    ) -> Result<(), FsError> {
        let (stack, dev, reads, take) = {
            let mut d = self.inner.borrow_mut();
            if !offset.is_multiple_of(FS_BLOCK_SIZE as u64) || len == 0 {
                return Err(FsError::InvalidArgument);
            }
            let size = d
                .inodes
                .get(file.0 as usize)
                .filter(|i| i.used)
                .ok_or(FsError::BadHandle)?
                .size;
            if offset >= size {
                return Err(FsError::InvalidArgument);
            }
            let take = len.min((size - offset) as usize);
            let first = (offset / FS_BLOCK_SIZE as u64) as usize;
            let nblocks = take.div_ceil(FS_BLOCK_SIZE);
            let ino = &d.inodes[file.0 as usize];
            let reads: Vec<u32> = (first..first + nblocks).map(|i| ino.block_at(i)).collect();
            d.stats.reads += 1;
            d.pending += 1;
            (Rc::clone(&d.stack), d.dev, reads, take)
        };
        self.gather_reads(sim, stack, dev, reads, Vec::new(), take, done);
        Ok(())
    }

    fn pending_work(&self) -> usize {
        let d = self.inner.borrow();
        d.pending + d.stack.pending_work()
    }

    fn stats(&self) -> FsStats {
        self.inner.borrow().stats
    }
}

/// `encode_directory` without double-borrowing `self`.
fn self_encode_directory(d: &Inner) -> Vec<u8> {
    let mut b = vec![0u8; FS_BLOCK_SIZE];
    b[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    b[4..8].copy_from_slice(&(N_INODES as u32).to_le_bytes());
    for (slot, (name, &ino)) in d.dir.iter().enumerate() {
        let off = 8 + slot * (NAME_LEN + 8);
        b[off] = 1;
        let n = name.as_bytes();
        b[off + 1..off + 1 + n.len()].copy_from_slice(n);
        b[off + 1 + NAME_LEN..off + 5 + NAME_LEN].copy_from_slice(&ino.to_le_bytes());
    }
    b
}

impl ExtFs {
    /// Issues the synchronous write chain one piece at a time (each piece
    /// is a separate O_SYNC block write, as ext2 performs them).
    ///
    /// If a piece is rejected or dies in flight (device power loss), the
    /// host's token is **cancelled** — delivered as `Err(Cancelled)` —
    /// instead of silently leaking, and the pending count is released.
    fn chain_writes(
        &self,
        sim: &mut Simulator,
        stack: Rc<dyn BlockStack>,
        dev: usize,
        writes: Vec<(u64, Vec<u8>)>,
        next: usize,
        done: Completion<Result<(), FsError>>,
    ) {
        if next >= writes.len() {
            self.inner.borrow_mut().pending -= 1;
            done.complete(sim, Ok(()));
            return;
        }
        let (lba, bytes) = writes[next].clone();
        let fs = self.clone();
        let stack2 = Rc::clone(&stack);
        let io_done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            if d.is_ok() {
                fs.chain_writes(sim, stack2, dev, writes, next + 1, done);
            } else {
                fs.inner.borrow_mut().pending -= 1;
                done.cancel(sim);
            }
        });
        // A rejected submission (the device lost power mid-chain) cancels
        // `io_done`, which the handler above turns into a cancelled host
        // token — the error path and the in-flight-cancel path converge.
        let _ = stack.write(sim, dev, lba, bytes, io_done);
    }

    #[allow(clippy::too_many_arguments)] // a scatter-read carries its whole plan
    fn gather_reads(
        &self,
        sim: &mut Simulator,
        stack: Rc<dyn BlockStack>,
        dev: usize,
        blocks: Vec<u32>,
        mut acc: Vec<u8>,
        take: usize,
        done: Completion<Result<Vec<u8>, FsError>>,
    ) {
        if acc.len() >= take || blocks.is_empty() {
            acc.truncate(take);
            self.inner.borrow_mut().pending -= 1;
            done.complete(sim, Ok(acc));
            return;
        }
        let blk = blocks[acc.len() / FS_BLOCK_SIZE];
        if blk == 0 {
            // Hole: zero-filled without I/O.
            acc.extend_from_slice(&[0u8; FS_BLOCK_SIZE]);
            self.gather_reads(sim, stack, dev, blocks, acc, take, done);
            return;
        }
        let fs = self.clone();
        let stack2 = Rc::clone(&stack);
        let io_done = sim.completion(move |sim: &mut Simulator, d: Delivered<IoDone>| {
            if let Ok(res) = d {
                let data = res.data.expect("read data");
                let mut acc = acc;
                if acc.is_empty() {
                    // First block: adopt the device's buffer outright.
                    acc = data;
                } else {
                    acc.extend_from_slice(&data);
                }
                fs.gather_reads(sim, stack2, dev, blocks, acc, take, done);
            } else {
                fs.inner.borrow_mut().pending -= 1;
                done.cancel(sim);
            }
        });
        // See chain_writes: a rejected submission converges on the
        // cancellation path through the handler.
        let _ = stack.read(
            sim,
            dev,
            u64::from(blk) * SECTORS_PER_BLOCK,
            SECTORS_PER_BLOCK as u32,
            io_done,
        );
    }
}
