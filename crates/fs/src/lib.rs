//! # trail-fs: the file systems above the block layer
//!
//! The paper positions Trail *under* a file system (Figure 2) and argues
//! against alternatives at the file-system level (§2): the Log-structured
//! File System batches asynchronous writes beautifully but "cannot support
//! synchronous writes well because of the inability to batch, and all disk
//! writes still incur rotational latency", and it pays disk reads and
//! writes to clean segments, whereas Trail's FIFO track reclamation is
//! free. This crate makes those comparisons *structural* instead of
//! rhetorical:
//!
//! - [`ExtFs`] — an ext2-like file system (superblock, inode table, block
//!   bitmap, direct + single-indirect blocks). A synchronous write pays
//!   real metadata I/O: the data block(s), the inode sector, and any
//!   touched indirect block are separate synchronous writes — exactly the
//!   `O_SYNC`-on-ext2 cost the paper's `EXT2` rows measure. Mounted over
//!   [`trail_db::TrailStack`], every one of those writes is absorbed by
//!   the log disk ("EXT2+Trail").
//! - [`Lfs`] — a log-structured file system: writes accumulate in a
//!   segment buffer and go to disk as large sequential segment writes; a
//!   synchronous write forces a *partial* segment out immediately; a
//!   [`cleaner`](Lfs::clean) reads live blocks out of cold segments and
//!   rewrites them — the garbage-collection I/O Trail avoids.
//!
//! Both implement [`FileSystem`] over any [`trail_db::BlockStack`], so the
//! same workload drives `EXT2`, `EXT2+Trail`, and `LFS` (the `fs_compare`
//! bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extfs;
mod lfs;
mod vfs;

pub use extfs::ExtFs;
pub use lfs::{Lfs, LfsConfig, LfsStats};
pub use vfs::{FileHandle, FileSystem, FsError, FsStats, FS_BLOCK_SIZE};
