//! The file-system interface shared by [`ExtFs`](crate::ExtFs) and
//! [`Lfs`](crate::Lfs).

use std::fmt;

use trail_core::TrailError;
use trail_sim::{Completion, Simulator};

/// File-system block size: 4 KiB, the common ext2 configuration of the
/// paper's era (eight 512-byte sectors).
pub const FS_BLOCK_SIZE: usize = 4096;

/// An open file, identified by its inode number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileHandle(pub u32);

/// File-system errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// No file by that name.
    NoSuchFile,
    /// A file by that name already exists.
    FileExists,
    /// The directory or the device is full.
    NoSpace,
    /// Offsets must be block-aligned; names must fit the directory entry.
    InvalidArgument,
    /// The handle does not name a live file.
    BadHandle,
    /// The underlying storage stack rejected a request.
    Storage(TrailError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSuchFile => write!(f, "no such file"),
            FsError::FileExists => write!(f, "file already exists"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::InvalidArgument => {
                write!(f, "offset must be block-aligned and the name must fit")
            }
            FsError::BadHandle => write!(f, "stale or invalid file handle"),
            FsError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TrailError> for FsError {
    fn from(e: TrailError) -> Self {
        FsError::Storage(e)
    }
}

/// Aggregate file-system counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsStats {
    /// Synchronous writes completed.
    pub sync_writes: u64,
    /// Asynchronous (buffered) writes accepted.
    pub async_writes: u64,
    /// Reads completed.
    pub reads: u64,
    /// Metadata block writes issued (inodes, directory, indirect blocks,
    /// checkpoints).
    pub meta_writes: u64,
    /// Data bytes written through the file system.
    pub bytes_written: u64,
}

/// A minimal file system over a block stack.
///
/// Offsets must be multiples of [`FS_BLOCK_SIZE`]; the final block of a
/// write may be partial (the remainder of the block is zero-filled).
pub trait FileSystem {
    /// Creates an empty file, returning its handle.
    ///
    /// # Errors
    ///
    /// [`FsError::FileExists`], [`FsError::NoSpace`], or
    /// [`FsError::InvalidArgument`] for an oversized name.
    fn create(&self, name: &str) -> Result<FileHandle, FsError>;

    /// Opens an existing file.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSuchFile`].
    fn open(&self, name: &str) -> Result<FileHandle, FsError>;

    /// Deletes a file, freeing its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSuchFile`].
    fn delete(&self, name: &str) -> Result<(), FsError>;

    /// The file's current size in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::BadHandle`].
    fn file_size(&self, file: FileHandle) -> Result<u64, FsError>;

    /// Writes `data` at `offset`. With `sync`, `done` is delivered when
    /// the data (and the metadata the file system deems part of the
    /// synchronous contract) is durable; without, the file system may
    /// buffer and `done` is delivered when the write is accepted. If the
    /// device dies mid-operation the token is cancelled rather than
    /// leaked, so the submitter always hears back.
    ///
    /// # Errors
    ///
    /// [`FsError::BadHandle`], [`FsError::InvalidArgument`] for an
    /// unaligned offset or empty data, [`FsError::NoSpace`].
    fn write(
        &self,
        sim: &mut Simulator,
        file: FileHandle,
        offset: u64,
        data: Vec<u8>,
        sync: bool,
        done: Completion<Result<(), FsError>>,
    ) -> Result<(), FsError>;

    /// Reads `len` bytes at `offset` (zero-filled beyond end of file for
    /// allocated blocks; reading entirely past the end errors). `done` is
    /// delivered with the bytes, or cancelled on device teardown.
    ///
    /// # Errors
    ///
    /// [`FsError::BadHandle`], [`FsError::InvalidArgument`].
    fn read(
        &self,
        sim: &mut Simulator,
        file: FileHandle,
        offset: u64,
        len: usize,
        done: Completion<Result<Vec<u8>, FsError>>,
    ) -> Result<(), FsError>;

    /// Outstanding I/O inside the file system and the stack below.
    fn pending_work(&self) -> usize;

    /// Counters so far.
    fn stats(&self) -> FsStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        use std::error::Error;
        assert!(!FsError::NoSuchFile.to_string().is_empty());
        let e = FsError::Storage(TrailError::BadDevice);
        assert!(e.source().is_some());
        let from: FsError = TrailError::OutOfRange.into();
        assert_eq!(from, FsError::Storage(TrailError::OutOfRange));
    }
}
