//! End-to-end engine tests over both storage stacks, including the layered
//! crash-recovery story (Trail block recovery + WAL redo).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use trail_core::{format_log_disk, FormatOptions, TrailConfig, TrailDriver};
use trail_db::{
    Database, DbConfig, FlushPolicy, Op, StandardStack, TrailStack, TxnResult, TxnSpec,
};
use trail_disk::{profiles, Disk};
use trail_sim::{Delivered, SimDuration, Simulator};

const LOG_DEV: usize = 0;
const TABLE_DEV: usize = 1;
const LOG_REGION_START: u64 = 64;
const LOG_REGION_SECTORS: u64 = 2_000;

fn db_config(policy: FlushPolicy) -> DbConfig {
    DbConfig {
        cache_pages: 64,
        flush_policy: policy,
        log_dev: LOG_DEV,
        log_region_start: LOG_REGION_START,
        log_region_sectors: LOG_REGION_SECTORS,
        flush_write_bytes: 8 * 1024,
        table_devices: vec![TABLE_DEV],
        dirty_high_watermark: 16,
        flush_batch: 8,
        log_before_images: false,
        single_cpu: false,
    }
}

fn standard_setup(policy: FlushPolicy) -> (Simulator, Database, StandardStack) {
    let sim = Simulator::new();
    let stack = StandardStack::new(vec![
        Disk::new("logfile", profiles::tiny_test_disk()),
        Disk::new("tables", profiles::tiny_test_disk()),
    ]);
    let db = Database::new(Rc::new(stack.clone()), db_config(policy));
    (sim, db, stack)
}

fn trail_setup(policy: FlushPolicy) -> (Simulator, Database, TrailDriver, Vec<Disk>) {
    let mut sim = Simulator::new();
    let log = Disk::new("trail-log", profiles::tiny_test_disk());
    let data: Vec<Disk> = vec![
        Disk::new("logfile", profiles::tiny_test_disk()),
        Disk::new("tables", profiles::tiny_test_disk()),
    ];
    format_log_disk(&mut sim, &log, FormatOptions::default()).unwrap();
    let (drv, _) =
        TrailDriver::start(&mut sim, log.clone(), data.clone(), TrailConfig::default()).unwrap();
    let stack = TrailStack::new(drv.clone(), 2);
    let db = Database::new(Rc::new(stack), db_config(policy));
    let mut disks = data;
    disks.push(log);
    (sim, db, drv, disks)
}

fn put_txn(table: u8, key: u64, tag: u8, len: usize) -> TxnSpec {
    TxnSpec {
        cpu: SimDuration::from_micros(100),
        ops: vec![Op::Write(table, key, vec![tag; len])],
    }
}

#[test]
fn commit_is_durable_and_readable_on_standard_stack() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
    let durable = Rc::new(Cell::new(false));
    let d = Rc::clone(&durable);
    let ctrl = sim.completion(|_, _| {});
    let dur = sim.completion(move |_, del: Delivered<TxnResult>| {
        let res = del.expect("durable");
        assert!(res.response().as_millis_f64() > 0.0);
        d.set(true);
    });
    db.execute(&mut sim, put_txn(0, 42, 0xAA, 100), ctrl, dur)
        .unwrap();
    db.run_until_quiescent(&mut sim);
    assert!(durable.get());
    assert_eq!(db.peek_row(0, 42), Some(vec![0xAA; 100]));
    assert_eq!(db.wal_stats().flushes, 1);
    assert_eq!(db.with_stats(|s| s.committed), 1);
}

#[test]
fn every_commit_forces_once_per_serial_transaction() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
    // Serial closed loop: chain the next txn in the durability callback.
    fn chain(db: Database, sim: &mut Simulator, i: u64, n: u64) {
        if i == n {
            return;
        }
        let db2 = db.clone();
        let ctrl = sim.completion(|_, _| {});
        let dur = sim.completion(move |sim: &mut Simulator, del: Delivered<TxnResult>| {
            if del.is_ok() {
                chain(db2, sim, i + 1, n);
            }
        });
        db.execute(sim, put_txn(0, i, i as u8, 64), ctrl, dur)
            .unwrap();
    }
    chain(db.clone(), &mut sim, 0, 10);
    db.run_until_quiescent(&mut sim);
    assert_eq!(db.with_stats(|s| s.committed), 10);
    assert_eq!(db.wal_stats().flushes, 10, "no group commit: 1 force/txn");
}

#[test]
fn group_commit_batches_forces() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::GroupCommit { buffer_bytes: 2048 });
    // Closed loop on *control* (group commit lets the client continue).
    fn chain(db: Database, sim: &mut Simulator, i: u64, n: u64) {
        if i == n {
            return;
        }
        let db2 = db.clone();
        let ctrl = sim.completion(move |sim: &mut Simulator, del: Delivered<()>| {
            if del.is_ok() {
                chain(db2, sim, i + 1, n);
            }
        });
        let dur = sim.completion(|_, _| {});
        db.execute(sim, put_txn(0, i, i as u8, 100), ctrl, dur)
            .unwrap();
    }
    chain(db.clone(), &mut sim, 0, 30);
    db.run_until_quiescent(&mut sim);
    assert_eq!(db.with_stats(|s| s.committed), 30);
    let flushes = db.wal_stats().flushes;
    assert!(
        flushes < 10,
        "expected aggressive batching, got {flushes} forces for 30 txns"
    );
    assert!(flushes >= 2);
}

#[test]
fn group_commit_delays_durability_but_not_control() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::GroupCommit { buffer_bytes: 8192 });
    let control_at = Rc::new(RefCell::new(Vec::new()));
    let durable_at = Rc::new(RefCell::new(Vec::new()));
    for i in 0..4u64 {
        let c = Rc::clone(&control_at);
        let du = Rc::clone(&durable_at);
        let ctrl = sim.completion(move |sim: &mut Simulator, _: Delivered<()>| {
            c.borrow_mut().push(sim.now());
        });
        let dur = sim.completion(move |sim: &mut Simulator, _: Delivered<TxnResult>| {
            du.borrow_mut().push(sim.now());
        });
        db.execute(&mut sim, put_txn(0, i, 1, 50), ctrl, dur)
            .unwrap();
    }
    db.run_until_quiescent(&mut sim);
    assert_eq!(control_at.borrow().len(), 4);
    assert_eq!(durable_at.borrow().len(), 4);
    // Control returns before the (single, final) force makes them durable.
    let last_control = *control_at.borrow().iter().max().unwrap();
    let first_durable = *durable_at.borrow().iter().min().unwrap();
    assert!(last_control < first_durable);
    assert_eq!(db.wal_stats().flushes, 1, "all four fit one group");
}

#[test]
fn cache_misses_suspend_and_resume_transactions() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
    // Load 2000 rows of 256 bytes: ~143 pages, far beyond the 64-page
    // cache.
    let images = db.load(0, (0..2000u64).map(|k| (k, vec![(k % 251) as u8; 256])));
    assert!(images.len() > 100);
    // Place the images on the table device.
    let stack = StandardStack::new(vec![
        Disk::new("x", profiles::tiny_test_disk()),
        Disk::new("y", profiles::tiny_test_disk()),
    ]);
    let _ = stack; // images are placed below via the db's own stack
                   // (Re-create: the standard_setup stack is private, so run reads that
                   // miss; the disk holds zeros, but the index points at real pages —
                   // what we check here is the suspension machinery, not byte equality.)
    let done = Rc::new(Cell::new(0u32));
    for k in (0..2000u64).step_by(23) {
        let done = Rc::clone(&done);
        let ctrl = sim.completion(|_, _| {});
        let dur = sim.completion(move |_, _: Delivered<TxnResult>| done.set(done.get() + 1));
        db.execute(
            &mut sim,
            TxnSpec {
                cpu: SimDuration::from_micros(50),
                ops: vec![Op::Read(0, k), Op::Write(0, k, vec![9u8; 256])],
            },
            ctrl,
            dur,
        )
        .unwrap();
    }
    db.run_until_quiescent(&mut sim);
    assert_eq!(done.get(), 87);
    assert!(
        db.with_stats(|s| s.page_reads) > 0,
        "spread reads must miss the cache"
    );
    let cs = db.cache_stats();
    assert!(cs.misses > 0 && cs.evictions > 0);
}

#[test]
fn growing_update_moves_the_row() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
    let ctrl = sim.completion(|_, _| {});
    let dur = sim.completion(|_, _| {});
    db.execute(&mut sim, put_txn(0, 5, 0x11, 16), ctrl, dur)
        .unwrap();
    db.run_until_quiescent(&mut sim);
    let ctrl = sim.completion(|_, _| {});
    let dur = sim.completion(|_, _| {});
    db.execute(&mut sim, put_txn(0, 5, 0x22, 400), ctrl, dur)
        .unwrap();
    db.run_until_quiescent(&mut sim);
    assert_eq!(db.peek_row(0, 5), Some(vec![0x22; 400]));
}

#[test]
fn delete_removes_the_row() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
    let ctrl = sim.completion(|_, _| {});
    let dur = sim.completion(|_, _| {});
    db.execute(&mut sim, put_txn(0, 5, 0x11, 16), ctrl, dur)
        .unwrap();
    db.run_until_quiescent(&mut sim);
    let ctrl = sim.completion(|_, _| {});
    let dur = sim.completion(|_, _| {});
    db.execute(
        &mut sim,
        TxnSpec {
            cpu: SimDuration::ZERO,
            ops: vec![Op::Delete(0, 5)],
        },
        ctrl,
        dur,
    )
    .unwrap();
    db.run_until_quiescent(&mut sim);
    assert_eq!(db.peek_row(0, 5), None);
    assert_eq!(db.row_count(), 0);
}

#[test]
fn trail_stack_commits_much_faster_than_standard() {
    // The miniature Table 2: same serial workload, response time on Trail
    // must be a small fraction of the baseline's.
    fn run(mk: &dyn Fn() -> (Simulator, Database)) -> f64 {
        let (mut sim, db) = mk();
        fn chain(db: Database, sim: &mut Simulator, i: u64, n: u64) {
            if i == n {
                return;
            }
            let db2 = db.clone();
            let ctrl = sim.completion(|_, _| {});
            let dur = sim.completion(move |sim: &mut Simulator, del: Delivered<TxnResult>| {
                if del.is_ok() {
                    chain(db2, sim, i + 1, n);
                }
            });
            db.execute(sim, put_txn(0, i % 40, i as u8, 200), ctrl, dur)
                .unwrap();
        }
        chain(db.clone(), &mut sim, 0, 40);
        db.run_until_quiescent(&mut sim);
        db.with_stats(|s| s.response.mean().as_millis_f64())
    }
    let standard = run(&|| {
        let (sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
        (sim, db)
    });
    let trail = run(&|| {
        let (sim, db, _drv, _disks) = trail_setup(FlushPolicy::EveryCommit);
        (sim, db)
    });
    assert!(
        trail < standard * 0.6,
        "Trail response {trail} ms vs standard {standard} ms"
    );
}

#[test]
fn full_stack_crash_recovers_committed_transactions() {
    // Run on Trail, crash everything mid-run, recover the block layer,
    // then redo the WAL: every durable transaction must be visible.
    let (mut sim, db, drv, disks) = trail_setup(FlushPolicy::EveryCommit);
    let durable: Rc<RefCell<HashMap<u64, u8>>> = Rc::new(RefCell::new(HashMap::new()));
    let t0 = sim.now();
    for i in 0..60u64 {
        let durable = Rc::clone(&durable);
        let db2 = db.clone();
        sim.schedule_at(t0 + SimDuration::from_millis(i), move |sim| {
            let durable = Rc::clone(&durable);
            let ctrl = sim.completion(|_, _| {});
            let dur = sim.completion(move |_, del: Delivered<TxnResult>| {
                if del.is_ok() {
                    durable.borrow_mut().insert(i, (i % 250) as u8 + 1);
                }
            });
            db2.execute(sim, put_txn(0, i, (i % 250) as u8 + 1, 120), ctrl, dur)
                .unwrap();
        });
    }
    sim.run_until(t0 + SimDuration::from_millis(31));
    for d in &disks {
        d.power_cut(sim.now());
    }
    let durable = durable.borrow().clone();
    assert!(!durable.is_empty(), "some txns must be durable pre-crash");
    assert!(durable.len() < 60, "crash must interrupt the run");
    drop(db);
    drop(drv);

    // Power back on; Trail recovery runs inside TrailDriver::start.
    for d in &disks {
        d.power_on();
    }
    let mut sim2 = Simulator::new();
    let trail_log = disks[2].clone();
    let data = vec![disks[0].clone(), disks[1].clone()];
    let (drv2, boot) =
        TrailDriver::start(&mut sim2, trail_log, data, TrailConfig::default()).unwrap();
    assert!(boot.recovered.is_some(), "dirty Trail disk must recover");
    let stack = TrailStack::new(drv2, 2);
    // WAL redo on top, with the structured report.
    let (image, report) = trail_db::recover_committed(
        &mut sim2,
        &stack,
        LOG_DEV,
        LOG_REGION_START,
        LOG_REGION_SECTORS,
    )
    .unwrap();
    assert!(report.chunks_scanned > 0, "redo must have scanned the log");
    assert!(report.committed_txns >= durable.len());
    assert_eq!(report.rows_applied, image.len());
    assert!(report.scan_time > SimDuration::ZERO, "scan I/O is timed");
    for (&key, &tag) in &durable {
        let got = image
            .get(&(0u8, key))
            .unwrap_or_else(|| panic!("durable txn for key {key} missing after recovery"));
        assert_eq!(
            got.as_deref(),
            Some(&vec![tag; 120][..]),
            "row {key} has wrong contents"
        );
    }
}

#[test]
fn load_and_warm_populate_without_timing() {
    let (mut sim, db, _) = standard_setup(FlushPolicy::EveryCommit);
    let images = db.load(3, (0..100u64).map(|k| (k, vec![k as u8; 64])));
    assert!(db.row_count() == 100);
    for (pid, bytes) in &images {
        db.warm(*pid, bytes);
    }
    // Warm pages mean the reads are all hits.
    let done = Rc::new(Cell::new(false));
    let d2 = Rc::clone(&done);
    let ctrl = sim.completion(|_, _| {});
    let dur = sim.completion(move |_, _: Delivered<TxnResult>| d2.set(true));
    db.execute(
        &mut sim,
        TxnSpec {
            cpu: SimDuration::ZERO,
            ops: (0..100u64)
                .map(|k| Op::Read(3, k))
                .collect::<Vec<_>>()
                .into_iter()
                .chain([Op::Write(3, 0, vec![1u8; 8])])
                .collect(),
        },
        ctrl,
        dur,
    )
    .unwrap();
    db.run_until_quiescent(&mut sim);
    assert!(done.get());
    assert_eq!(db.with_stats(|s| s.page_reads), 0, "all reads warmed");
}
