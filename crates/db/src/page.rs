//! Slotted pages: the engine's on-disk unit.
//!
//! A page is 4 KiB (eight 512-byte sectors — the same block size the
//! paper's Berkeley DB deployment used). Records live in a classic
//! slotted layout: a slot directory grows from the front, record bytes
//! grow from the back, and deleted slots are tombstoned so RIDs stay
//! stable.

use trail_disk::SECTOR_SIZE;

/// Bytes per database page.
pub const PAGE_SIZE: usize = 4096;

/// Sectors per database page.
pub const SECTORS_PER_PAGE: u32 = (PAGE_SIZE / SECTOR_SIZE) as u32;

const HDR_LEN: usize = 4; // n_slots u16, free_ptr u16
const SLOT_LEN: usize = 4; // offset u16, len u16
const TOMBSTONE: u16 = u16::MAX;

/// Identifies a page: a device index and a page number on that device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId {
    /// Device index within the stack.
    pub dev: u8,
    /// Page number; the page starts at sector `page_no * SECTORS_PER_PAGE`.
    pub page_no: u64,
}

impl PageId {
    /// The first sector of this page.
    pub fn first_lba(self) -> u64 {
        self.page_no * u64::from(SECTORS_PER_PAGE)
    }
}

/// A record's address: page plus slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rid {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: u16,
}

/// A 4-KiB slotted page.
///
/// # Examples
///
/// ```
/// use trail_db::Page;
///
/// let mut p = Page::new();
/// let slot = p.insert(b"hello").unwrap();
/// assert_eq!(p.get(slot), Some(&b"hello"[..]));
/// ```
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.n_slots())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// An empty page: record space grows backwards from the end.
    pub fn new() -> Self {
        let mut bytes = Box::new([0u8; PAGE_SIZE]);
        bytes[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { bytes }
    }

    /// Reconstructs a page from raw bytes (e.g. read from disk).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        let mut b = Box::new([0u8; PAGE_SIZE]);
        b.copy_from_slice(bytes);
        Page { bytes: b }
    }

    /// The raw page bytes (what gets written to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..]
    }

    fn n_slots(&self) -> u16 {
        u16::from_le_bytes([self.bytes[0], self.bytes[1]])
    }

    fn set_n_slots(&mut self, n: u16) {
        self.bytes[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_ptr(&self) -> u16 {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]])
    }

    fn set_free_ptr(&mut self, p: u16) {
        self.bytes[2..4].copy_from_slice(&p.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = HDR_LEN + slot as usize * SLOT_LEN;
        (
            u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]]),
            u16::from_le_bytes([self.bytes[off + 2], self.bytes[off + 3]]),
        )
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let off = HDR_LEN + slot as usize * SLOT_LEN;
        self.bytes[off..off + 2].copy_from_slice(&offset.to_le_bytes());
        self.bytes[off + 2..off + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Contiguous bytes available for one more record (including its slot
    /// directory entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HDR_LEN + self.n_slots() as usize * SLOT_LEN;
        (self.free_ptr() as usize).saturating_sub(dir_end)
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_records(&self) -> usize {
        (0..self.n_slots())
            .filter(|&s| self.slot_entry(s).0 != TOMBSTONE)
            .count()
    }

    /// Inserts a record, returning its slot, or `None` if it does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `value` is empty or longer than a page can ever hold.
    pub fn insert(&mut self, value: &[u8]) -> Option<u16> {
        assert!(!value.is_empty(), "record must be nonempty");
        assert!(
            value.len() <= PAGE_SIZE - HDR_LEN - SLOT_LEN,
            "record of {} bytes can never fit a page",
            value.len()
        );
        if self.free_space() < value.len() + SLOT_LEN {
            return None;
        }
        let slot = self.n_slots();
        let new_free = self.free_ptr() as usize - value.len();
        self.bytes[new_free..new_free + value.len()].copy_from_slice(value);
        self.set_free_ptr(new_free as u16);
        self.set_slot_entry(slot, new_free as u16, value.len() as u16);
        self.set_n_slots(slot + 1);
        Some(slot)
    }

    /// Reads the record in `slot`, or `None` if the slot is out of range
    /// or tombstoned.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.bytes[off as usize..off as usize + len as usize])
    }

    /// Overwrites the record in `slot` in place.
    ///
    /// Returns `false` (leaving the page unchanged) if the new value is
    /// longer than the existing record — the caller must delete and
    /// reinsert, obtaining a new RID.
    pub fn update(&mut self, slot: u16, value: &[u8]) -> bool {
        if slot >= self.n_slots() {
            return false;
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE || value.len() > len as usize {
            return false;
        }
        self.bytes[off as usize..off as usize + value.len()].copy_from_slice(value);
        self.set_slot_entry(slot, off, value.len() as u16);
        true
    }

    /// Tombstones the record in `slot`. Space is not reclaimed (no
    /// compaction) but the RID can never be reused.
    ///
    /// Returns `false` if the slot was out of range or already deleted.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.n_slots() {
            return false;
        }
        let (off, _) = self.slot_entry(slot);
        if off == TOMBSTONE {
            return false;
        }
        self.set_slot_entry(slot, TOMBSTONE, 0);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new();
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a), Some(&b"alpha"[..]));
        assert_eq!(p.get(b), Some(&b"beta"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 4096 / (100 + 4) ≈ 39 records.
        assert!((35..=40).contains(&n), "fit {n} records");
        assert!(p.free_space() < rec.len() + SLOT_LEN);
        // Smaller records still fit in the remainder.
        assert!(p.insert(&[1u8; 8]).is_some());
    }

    #[test]
    fn update_in_place_and_shrink() {
        let mut p = Page::new();
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"abcdefghij"));
        assert_eq!(p.get(s), Some(&b"abcdefghij"[..]));
        assert!(p.update(s, b"xyz"), "shrinking update is allowed");
        assert_eq!(p.get(s), Some(&b"xyz"[..]));
        assert!(!p.update(s, b"0123456789"), "cannot grow past original");
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let s = p.insert(b"gone").unwrap();
        assert!(p.delete(s));
        assert_eq!(p.get(s), None);
        assert!(!p.delete(s), "double delete reports false");
        assert_eq!(p.live_records(), 0);
        // Subsequent inserts get fresh slots.
        let s2 = p.insert(b"new").unwrap();
        assert_ne!(s, s2);
    }

    #[test]
    fn bytes_round_trip_through_disk_format() {
        let mut p = Page::new();
        let s1 = p.insert(b"persist me").unwrap();
        let s2 = p.insert(&[0xAB; 64]).unwrap();
        p.delete(s1);
        let q = Page::from_bytes(p.as_bytes());
        assert_eq!(q.get(s1), None);
        assert_eq!(q.get(s2), Some(&[0xAB; 64][..]));
        assert_eq!(q.free_space(), p.free_space());
    }

    #[test]
    fn out_of_range_slot_is_none() {
        let p = Page::new();
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(100), None);
    }

    #[test]
    fn page_id_lba_mapping() {
        let pid = PageId { dev: 1, page_no: 5 };
        assert_eq!(pid.first_lba(), 40);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_record_rejected() {
        Page::new().insert(b"");
    }
}
